package ffi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"qfusor/internal/data"
	"qfusor/internal/obs"
	"qfusor/internal/pylite"
)

// Vectorized VM tier: instead of dispatching each TCall through a
// closure-compiled function (per-call cframe + slot allocation, boxed
// CrossIn with string marshalling), the section's UDFs run as register
// bytecode in windows of one flat register file that lives for the
// whole morsel. Column values load unboxed straight into registers —
// no per-row string clone, no per-call allocation — and a row only
// pays boxing when it genuinely needs the closure tier (a bail).
var (
	mVMPrograms = obs.Default.Counter("qfusor.vm.programs")
	mVMMorsels  = obs.Default.Counter("qfusor.vm.morsels")
	mVMRows     = obs.Default.Counter("qfusor.vm.rows")
	mVMBailRows = obs.Default.Counter("qfusor.vm.bail_rows")
)

// vmBailEvery, when > 0, forces every Nth VM UDF call to bail — the
// fuzz oracle's fourth arm exercises the bailout protocol on rows that
// would otherwise stay on the VM.
var vmBailEvery atomic.Int64
var vmBailTick atomic.Int64

// SetVMBailEvery forces every nth VM call to bail out to the closure
// tier (0 disables; test/fuzz instrumentation only).
func SetVMBailEvery(n int) {
	vmBailEvery.Store(int64(n))
	vmBailTick.Store(0)
}

func forcedBail() bool {
	n := vmBailEvery.Load()
	return n > 0 && vmBailTick.Add(1)%n == 0
}

// VMProgram is a trace lowered onto the bytecode VM: one register
// program per TCall (nil entries are native-Go UDFs invoked directly),
// each executing in its own register window above the trace's own
// registers.
type VMProgram struct {
	// Progs is aligned with Trace.Ops; nil for non-TCall ops and for
	// TCalls served by a native GoFn.
	Progs []*pylite.Program
	// Base is each op's register-window base offset (TCalls with a
	// program only).
	Base []int
	// NumRegs is the full register-file size: the trace's registers
	// followed by every call window.
	NumRegs int
	// Linked, when non-nil, is the whole-row program: every TCall of
	// the trace spliced into one instruction stream (LinkPrograms), so
	// a row costs a single RunVM entry instead of one per call. Only
	// all-TCall traces link; a bail anywhere re-runs the entire row on
	// the closure tier.
	Linked *pylite.Program
}

// bytecodeFor returns the UDF's cached register program, compiling on
// first use. nil means the UDF cannot run on the VM tier (native GoFn
// UDFs also return nil — they need no program).
func bytecodeFor(u *UDF) *pylite.Program {
	if u == nil || u.GoFn != nil || u.Fn.Kind != data.KindObject {
		return nil
	}
	fv, ok := u.Fn.P.(*pylite.FuncValue)
	if !ok {
		return nil
	}
	if p := fv.Bytecode(); p != nil {
		return p
	}
	if fv.BytecodeFailed() {
		return nil
	}
	p, err := pylite.BCCompile(fv)
	if err != nil || p.AlwaysBails() {
		fv.SetBytecode(nil)
		return nil
	}
	fv.SetBytecode(p)
	mVMPrograms.Inc()
	return p
}

// CompileTraceVM lowers a compiled trace onto the VM tier. Aggregating
// traces qualify: grouping and accumulation happen outside the op list
// (in the agg runners' emit step), so the scalar prefix lowers exactly
// like a non-aggregating trace. It returns nil when the trace is
// ineligible: distinct-folding traces keep their closure form (the VM
// row loop has no dedup step), as do expanding traces (generator
// frames) and any TCall whose UDF body is outside the bytecode subset.
// A nil result is permanent for this trace (the caller caches the
// decision on the wrapper).
func CompileTraceVM(t *Trace) *VMProgram {
	if t == nil || len(t.DistinctRegs) > 0 {
		return nil
	}
	vp := &VMProgram{
		Progs:   make([]*pylite.Program, len(t.Ops)),
		Base:    make([]int, len(t.Ops)),
		NumRegs: t.NumRegs,
	}
	calls := 0
	for oi := range t.Ops {
		op := &t.Ops[oi]
		switch op.Kind {
		case TCall:
			calls++
			if op.UDF != nil && op.UDF.GoFn != nil {
				continue // native UDF: direct call, no program needed
			}
			prog := op.Prog
			if prog == nil {
				prog = bytecodeFor(op.UDF)
			}
			if prog == nil {
				return nil
			}
			// The trace calls with exactly len(op.Args) positionals; the
			// program must accept that arity (defaults fill the rest).
			if len(op.Args) < prog.Required || len(op.Args) > prog.NumParams {
				return nil
			}
			vp.Progs[oi] = prog
			vp.Base[oi] = vp.NumRegs
			vp.NumRegs += prog.NumRegs
		case TExpr, TFilter:
			// Pure register ops: same closures run under either tier.
		default:
			return nil // TExpand needs generator frames
		}
	}
	if calls == 0 {
		return nil // nothing to accelerate
	}
	// When the trace is nothing but VM-lowered calls, splice their
	// programs into one whole-row instruction stream: per-call entry
	// overhead (cancellation poll, clear pass, window staging) collapses
	// to one occurrence per row. Traces with interleaved TExpr/TFilter
	// closures or native GoFn calls keep per-call dispatch.
	linkable := true
	for oi := range t.Ops {
		if t.Ops[oi].Kind != TCall || vp.Progs[oi] == nil {
			linkable = false
			break
		}
	}
	if linkable {
		parts := make([]pylite.LinkPart, len(t.Ops))
		for oi := range t.Ops {
			op := &t.Ops[oi]
			parts[oi] = pylite.LinkPart{Prog: vp.Progs[oi], Base: vp.Base[oi], Args: op.Args, Dst: op.Dst}
		}
		vp.Linked = pylite.LinkPrograms(parts, vp.NumRegs)
	}
	return vp
}

// vmColLoad loads one column value into a register without the
// boundary marshalling CrossIn models: scalar kinds construct the
// value in place (no string clone — registers never mutate string
// payloads), complex kinds fall back to the boxing path.
func vmColLoad(c *data.Column, i int) data.Value {
	if c.IsNull(i) {
		return data.Null
	}
	switch c.Kind {
	case data.KindInt:
		return data.Int(c.Ints[i])
	case data.KindFloat:
		return data.Float(c.Floats[i])
	case data.KindBool:
		return data.Bool(c.Bools[i])
	case data.KindString:
		return data.Str(c.Strs[i])
	}
	return CrossIn(c, i)
}

// RunTraceVectorVM executes a non-aggregating trace over n rows on the
// VM tier. Rows whose UDF programs bail (or fail) re-run per-row on
// the closure tier — bit-identical results either way, since a bailing
// program has made no observable change. Only an interrupt aborts the
// morsel. Returns the output columns plus the number of bailed calls.
func RunTraceVectorVM(u *UDF, vp *VMProgram, t *Trace, args []*data.Column, n int, outNames []string, outKinds []data.Kind) ([]*data.Column, int, error) {
	start := time.Now()
	outs := make([]*data.Column, len(outKinds))
	for i := range outs {
		outs[i] = data.NewColumnCap(outNames[i], outKinds[i], n)
	}
	regs := make([]data.Value, vp.NumRegs)
	for i, r := range t.ConstRegs {
		regs[r] = t.Consts[i]
	}
	outRows := 0
	bails := 0
	var intr *pylite.InterruptError
rows:
	for i := 0; i < n; i++ {
		for j, c := range args {
			regs[j] = vmColLoad(c, i)
		}
		if vp.Linked != nil {
			if err := vmRunLinked(u, vp, t.Ops, regs, &bails); err != nil {
				return nil, bails, err
			}
			for oi, r := range t.OutRegs {
				outs[oi].AppendValue(regs[r])
			}
			outRows++
			continue rows
		}
		for oi := range t.Ops {
			op := &t.Ops[oi]
			switch op.Kind {
			case TCall:
				v, err := vmCallOp(u, vp, op, oi, regs)
				if err != nil {
					if errors.As(err, &intr) {
						return nil, bails, err
					}
					// Bail or runtime error: this row belongs to the closure
					// tier. The re-run reproduces the same result or the same
					// (authoritative) error.
					bails++
					v, err = closureCallOp(u, op, regs)
					if err != nil {
						return nil, bails, wrapUDFErr(op.UDF, err)
					}
				}
				regs[op.Dst] = v
			case TExpr:
				v, err := op.Eval(regs)
				if err != nil {
					return nil, bails, err
				}
				regs[op.Dst] = v
			case TFilter:
				v, err := op.Eval(regs)
				if err != nil {
					return nil, bails, err
				}
				if !v.Truthy() {
					continue rows
				}
			}
		}
		for oi, r := range t.OutRegs {
			outs[oi].AppendValue(regs[r])
		}
		outRows++
	}
	mVMMorsels.Inc()
	mVMRows.Add(int64(n))
	mVMBailRows.Add(int64(bails))
	u.record(n, outRows, time.Since(start), 0)
	return outs, bails, nil
}

// runOpsVM executes one row's op list with TCalls dispatched through
// the VM tier, bailing per-call to the closure tier; emit is called at
// the end of the chain (the agg runners step group states there). ops
// must be the trace's full op list — vmCallOp indexes vp.Progs by op
// position. bails accumulates the row's bailed calls. A TExpand hands
// the rest of the row to the closure-tier runOps outright; it cannot
// occur in a VM-lowered trace (CompileTraceVM rejects it) but the
// fallback keeps this loop total.
func runOpsVM(u *UDF, vp *VMProgram, ops []TraceOp, regs []data.Value, bails *int, emit func([]data.Value) error) error {
	if vp.Linked != nil {
		if err := vmRunLinked(u, vp, ops, regs, bails); err != nil {
			return err
		}
		return emit(regs)
	}
	var intr *pylite.InterruptError
	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case TCall:
			v, err := vmCallOp(u, vp, op, oi, regs)
			if err != nil {
				if errors.As(err, &intr) {
					return err
				}
				// Bail or runtime error: this call belongs to the closure
				// tier. The re-run reproduces the same result or the same
				// (authoritative) error.
				*bails++
				v, err = closureCallOp(u, op, regs)
				if err != nil {
					return wrapUDFErr(op.UDF, err)
				}
			}
			regs[op.Dst] = v
		case TExpr:
			v, err := op.Eval(regs)
			if err != nil {
				return err
			}
			regs[op.Dst] = v
		case TFilter:
			v, err := op.Eval(regs)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil // row dropped
			}
		default:
			return runOps(u, ops[oi:], regs, emit)
		}
	}
	return emit(regs)
}

// vmRunLinked executes one row's entire op chain through the linked
// whole-row program. On a bail — or any non-interrupt error — the full
// row re-runs on the closure tier: the link condition guarantees every
// op is a TCall, bodies write nothing below their own window until
// their return lands, and completed calls are deterministic, so the
// re-run reproduces the same destinations (or the same authoritative
// error). bails counts one per re-routed row.
func vmRunLinked(u *UDF, vp *VMProgram, ops []TraceOp, regs []data.Value, bails *int) error {
	if !forcedBail() {
		rt := ops[0].UDF.RT
		if u != nil && u.RT != nil {
			rt = u.RT
		}
		_, err := vp.Linked.RunVM(rt, regs)
		if err == nil {
			return nil
		}
		var intr *pylite.InterruptError
		if errors.As(err, &intr) {
			return err
		}
	}
	*bails++
	for oi := range ops {
		op := &ops[oi]
		v, err := closureCallOp(u, op, regs)
		if err != nil {
			return wrapUDFErr(op.UDF, err)
		}
		regs[op.Dst] = v
	}
	return nil
}

// vmCallOp runs one TCall on the VM tier inside its register window.
func vmCallOp(u *UDF, vp *VMProgram, op *TraceOp, oi int, regs []data.Value) (data.Value, error) {
	prog := vp.Progs[oi]
	if prog == nil {
		// Native GoFn UDF: no VM program, direct dispatch.
		callArgs := make([]data.Value, len(op.Args))
		for i, a := range op.Args {
			callArgs[i] = regs[a]
		}
		return op.UDF.Invoke(callArgs)
	}
	if forcedBail() {
		return data.Null, &pylite.BailError{Reason: "forced (test)"}
	}
	win := regs[vp.Base[oi] : vp.Base[oi]+prog.NumRegs]
	for i, a := range op.Args {
		win[i] = regs[a]
	}
	for i := len(op.Args); i < prog.NumParams; i++ {
		win[i] = prog.Defaults[i]
	}
	rt := op.UDF.RT
	if u != nil && u.RT != nil {
		rt = u.RT
	}
	return prog.RunVM(rt, win)
}

// closureCallOp re-runs one TCall on the closure tier — the bail
// target, identical to runOps' TCall dispatch.
func closureCallOp(u *UDF, op *TraceOp, regs []data.Value) (data.Value, error) {
	callArgs := make([]data.Value, len(op.Args))
	for i, a := range op.Args {
		callArgs[i] = regs[a]
	}
	if op.Compiled != nil {
		rt := op.UDF.RT
		if u != nil && u.RT != nil {
			rt = u.RT
		}
		return op.Compiled.Call(rt, callArgs, nil)
	}
	return op.UDF.Invoke(callArgs)
}

// LengthMismatchError is returned when a fused wrapper yields a column
// set whose row count disagrees with what the section requires — a
// wrapper bug that previously truncated silently.
type LengthMismatchError struct {
	UDF      string
	Expected int
	Got      int
}

func (e *LengthMismatchError) Error() string {
	return fmt.Sprintf("ffi: fused wrapper %s returned %d rows, expected %d", e.UDF, e.Got, e.Expected)
}
