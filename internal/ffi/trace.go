package ffi

import (
	"fmt"
	"time"

	"qfusor/internal/data"
	"qfusor/internal/obs"
	"qfusor/internal/pylite"
)

// Trace is the fully JIT-compiled form of a fused wrapper: the loop
// itself is native (a Go-level trace of register ops), each UDF call
// dispatches straight to its compiled body, and outputs append directly
// into engine columns. This models what the paper's tracing JIT
// produces once the generated wrapper's hot loop has been traced — no
// per-iteration interpretation remains.
//
// The PyLite wrapper source is still generated and registered (it is
// the artifact the registration mechanism stores); the trace is its
// compiled form.
type Trace struct {
	// NumRegs is the register file size; inputs land in regs [0..k).
	NumRegs int
	// NumIn is the number of input registers (one per input column).
	NumIn int
	// Consts preloads constant registers: regs[ConstRegs[i]] = Consts[i].
	Consts    []data.Value
	ConstRegs []int
	// Ops is the loop body.
	Ops []TraceOp
	// OutRegs lists the registers emitted per output column (non-agg).
	OutRegs []int
	// Distinct, when non-nil, dedups output rows on these registers.
	DistinctRegs []int
	// KeyRegs are the group-by key registers of an aggregating trace;
	// grouping runs inside the trace via the exported native group-by
	// (§5.3.2), after any fused filters.
	KeyRegs []int
	// Aggs, when non-empty, makes the trace aggregating: OutRegs is
	// ignored and key columns + one column per agg spec are produced.
	Aggs []TraceAgg
}

// TraceOpKind enumerates trace operations.
type TraceOpKind int

const (
	// TCall invokes a scalar UDF: regs[Dst] = UDF(regs[Args...]).
	TCall TraceOpKind = iota
	// TExpr evaluates a relational expression closure over the regs.
	TExpr
	// TFilter skips the row (or expanded row) unless Eval is truthy.
	TFilter
	// TExpand drains a generator UDF: for each yielded row, binds Dsts
	// and runs Body.
	TExpand
)

// TraceOp is one operation of the loop body.
type TraceOp struct {
	Kind TraceOpKind
	Dst  int
	Args []int
	UDF  *UDF
	// Compiled, when set, is the UDF's compiled body invoked directly
	// (the trace's inlined call — no dynamic dispatch).
	Compiled *pylite.CompiledFunc
	// Prog, when set, is the UDF's register-bytecode program: the
	// vectorized VM driver (vm.go) executes it in a register window per
	// row, falling back to Compiled/Invoke on bail.
	Prog *pylite.Program
	// Eval computes a relational expression over the register file
	// (built by the fusion code generator with SQL NULL semantics).
	Eval func(regs []data.Value) (data.Value, error)
	// Expand payload.
	Dsts []int
	Body []TraceOp
}

// TraceAgg is one aggregate computation of an aggregating trace.
type TraceAgg struct {
	// Kind: "count", "sum", "avg", "min", "max", or "udf".
	Kind string
	// Star marks COUNT(*).
	Star bool
	// ArgReg is the register holding the (per-row) argument value; -1
	// for COUNT(*).
	ArgReg int
	// UDF for Kind == "udf".
	UDF *UDF
}

// RunTraceVector executes a non-aggregating trace over n input rows.
func RunTraceVector(u *UDF, t *Trace, args []*data.Column, n int, outNames []string, outKinds []data.Kind) ([]*data.Column, error) {
	start := time.Now()
	outs := make([]*data.Column, len(outKinds))
	for i := range outs {
		outs[i] = data.NewColumnCap(outNames[i], outKinds[i], n)
	}
	regs := make([]data.Value, t.NumRegs)
	for i, r := range t.ConstRegs {
		regs[r] = t.Consts[i]
	}
	var seen map[string]bool
	if t.DistinctRegs != nil {
		seen = make(map[string]bool, n)
	}
	outRows := 0
	emit := func(regs []data.Value) error {
		if seen != nil {
			key := ""
			for _, r := range t.DistinctRegs {
				key += regs[r].Key() + "\x00"
			}
			if seen[key] {
				return nil
			}
			seen[key] = true
		}
		for i, r := range t.OutRegs {
			CrossOut(outs[i], regs[r])
		}
		outRows++
		return nil
	}
	for i := 0; i < n; i++ {
		for j, c := range args {
			regs[j] = CrossIn(c, i)
		}
		if err := runOps(u, t.Ops, regs, emit); err != nil {
			return nil, err
		}
	}
	mTraceRows.Add(int64(n))
	u.record(n, outRows, time.Since(start), 0)
	return outs, nil
}

// runOps executes an op list for one (possibly expanded) row; emit is
// called at the end of the chain.
func runOps(u *UDF, ops []TraceOp, regs []data.Value, emit func([]data.Value) error) error {
	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case TCall:
			callArgs := make([]data.Value, len(op.Args))
			for i, a := range op.Args {
				callArgs[i] = regs[a]
			}
			var v data.Value
			var err error
			if op.Compiled != nil {
				// Compiled bodies run on the host wrapper's runtime: for a
				// worker clone that is the per-worker interpreter view, so
				// parallel trace execution never contends on one runtime's
				// counters. Serially u.RT and op.UDF.RT are the same interp.
				rt := op.UDF.RT
				if u != nil && u.RT != nil {
					rt = u.RT
				}
				v, err = op.Compiled.Call(rt, callArgs, nil)
			} else {
				v, err = op.UDF.Invoke(callArgs)
			}
			if err != nil {
				return wrapUDFErr(op.UDF, err)
			}
			regs[op.Dst] = v
		case TExpr:
			v, err := op.Eval(regs)
			if err != nil {
				return err
			}
			regs[op.Dst] = v
		case TFilter:
			v, err := op.Eval(regs)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil // row dropped
			}
		case TExpand:
			callArgs := make([]data.Value, len(op.Args))
			for i, a := range op.Args {
				callArgs[i] = regs[a]
			}
			gv, err := op.UDF.RT.Call(op.UDF.Fn, callArgs)
			if err != nil {
				return wrapUDFErr(op.UDF, err)
			}
			rest := ops[oi+1:]
			bind := func(v data.Value) error {
				if len(op.Dsts) == 1 {
					regs[op.Dsts[0]] = v
				} else if l := v.List(); l != nil {
					for i, d := range op.Dsts {
						if i < len(l.Items) {
							regs[d] = l.Items[i]
						} else {
							regs[d] = data.Null
						}
					}
				} else {
					regs[op.Dsts[0]] = v
				}
				return runOps(u, rest, regs, emit)
			}
			if g, ok := gv.P.(*pylite.Generator); gv.Kind == data.KindObject && ok {
				for {
					v, more, err := g.Next()
					if err != nil {
						g.Close()
						return wrapUDFErr(op.UDF, err)
					}
					if !more {
						return nil
					}
					if err := bind(v); err != nil {
						g.Close()
						return err
					}
				}
			}
			if err := pylite.Iterate(gv, bind); err != nil {
				return err
			}
			return nil
		}
	}
	return emit(regs)
}

// Mergeable reports whether the trace's aggregates can be computed as
// per-partition partials and merged (count/sum/min/max — avg and UDF
// aggregates need their full input).
func (t *Trace) Mergeable() bool {
	if len(t.Aggs) == 0 {
		return false
	}
	for _, a := range t.Aggs {
		switch a.Kind {
		case "count", "sum", "min", "max":
		default:
			return false
		}
	}
	return true
}

// MergeTraceAggPartials combines per-partition outputs of RunTraceAgg
// (each: key columns followed by aggregate columns) into one result.
func MergeTraceAggPartials(t *Trace, parts [][]*data.Column, outNames []string, outKinds []data.Kind) []*data.Column {
	nKeys := len(t.KeyRegs)
	type acc struct {
		keys []data.Value
		vals []data.Value
	}
	idx := map[string]int{}
	var groups []acc
	for _, cols := range parts {
		if len(cols) == 0 {
			continue
		}
		n := cols[0].Len()
		for r := 0; r < n; r++ {
			var kb []byte
			for k := 0; k < nKeys; k++ {
				kb = append(kb, cols[k].Get(r).Key()...)
				kb = append(kb, 0)
			}
			gi, ok := idx[string(kb)]
			if !ok {
				gi = len(groups)
				idx[string(kb)] = gi
				keys := make([]data.Value, nKeys)
				for k := 0; k < nKeys; k++ {
					keys[k] = cols[k].Get(r)
				}
				vals := make([]data.Value, len(t.Aggs))
				for a := range t.Aggs {
					vals[a] = cols[nKeys+a].Get(r)
				}
				groups = append(groups, acc{keys: keys, vals: vals})
				continue
			}
			g := &groups[gi]
			for a, spec := range t.Aggs {
				v := cols[nKeys+a].Get(r)
				switch {
				case v.IsNull():
				case g.vals[a].IsNull():
					g.vals[a] = v
				default:
					switch spec.Kind {
					case "count", "sum":
						if g.vals[a].Kind == data.KindInt && v.Kind == data.KindInt {
							g.vals[a] = data.Int(g.vals[a].I + v.I)
						} else {
							af, _ := g.vals[a].AsFloat()
							bf, _ := v.AsFloat()
							g.vals[a] = data.Float(af + bf)
						}
					case "min":
						if c, ok := data.Compare(v, g.vals[a]); ok && c < 0 {
							g.vals[a] = v
						}
					case "max":
						if c, ok := data.Compare(v, g.vals[a]); ok && c > 0 {
							g.vals[a] = v
						}
					}
				}
			}
		}
	}
	out := make([]*data.Column, nKeys+len(t.Aggs))
	for i := range out {
		out[i] = data.NewColumnCap(outNames[i], outKinds[i], len(groups))
	}
	for _, g := range groups {
		for k := 0; k < nKeys; k++ {
			out[k].AppendValue(g.keys[k])
		}
		for a := range t.Aggs {
			out[nKeys+a].AppendValue(g.vals[a])
		}
	}
	return out
}

// aggState is the native per-group accumulator of an aggregating trace.
type aggState struct {
	count int64
	sum   float64
	sumI  int64
	isInt bool
	any   bool
	best  data.Value
	udf   AggState
}

// newAggStates allocates one fresh accumulator per aggregate spec.
func newAggStates(t *Trace) ([]aggState, error) {
	sts := make([]aggState, len(t.Aggs))
	for ai, spec := range t.Aggs {
		if spec.Kind == "udf" {
			st, err := NewAggState(spec.UDF)
			if err != nil {
				return nil, err
			}
			sts[ai].udf = st
		} else {
			sts[ai].isInt = true
		}
	}
	return sts, nil
}

// stepAggState folds one row's value into an accumulator.
func stepAggState(st *aggState, spec *TraceAgg, v data.Value) error {
	switch spec.Kind {
	case "count":
		if spec.Star || !v.IsNull() {
			st.count++
		}
	case "sum", "avg":
		if v.IsNull() {
			return nil
		}
		f, ok := v.AsFloat()
		if !ok {
			return nil
		}
		if v.Kind == data.KindFloat {
			st.isInt = false
		}
		st.sum += f
		st.sumI += v.I
		st.count++
		st.any = true
	case "min", "max":
		if v.IsNull() {
			return nil
		}
		if !st.any {
			st.best = v
			st.any = true
			return nil
		}
		c, ok := data.Compare(v, st.best)
		if ok && ((spec.Kind == "min" && c < 0) || (spec.Kind == "max" && c > 0)) {
			st.best = v
		}
	case "udf":
		return st.udf.Step([]data.Value{v})
	}
	return nil
}

// mergeAggState folds one partition's accumulator (src) into dst. The
// rules: count adds; sum/avg add both sum forms and the non-null count
// (avg finalizes from the merged ratio — partial averages are never
// averaged); min/max compare the partial winners, keeping the earlier
// partition's on incomparable ties like the serial fold keeps the first
// seen; UDF states merge through the decomposable-aggregate hook.
func mergeAggState(dst, src *aggState, spec *TraceAgg) error {
	switch spec.Kind {
	case "count":
		dst.count += src.count
	case "sum", "avg":
		if !src.any {
			return nil
		}
		dst.sum += src.sum
		dst.sumI += src.sumI
		dst.count += src.count
		if !src.isInt {
			dst.isInt = false
		}
		dst.any = true
	case "min", "max":
		if !src.any {
			return nil
		}
		if !dst.any {
			dst.best = src.best
			dst.any = true
			return nil
		}
		c, ok := data.Compare(src.best, dst.best)
		if ok && ((spec.Kind == "min" && c < 0) || (spec.Kind == "max" && c > 0)) {
			dst.best = src.best
		}
	case "udf":
		m, ok := dst.udf.(AggStateMerger)
		if !ok {
			return fmt.Errorf("ffi: aggregate %s is not decomposable", spec.UDF.Name)
		}
		return m.Merge(src.udf)
	}
	return nil
}

// finalizeAggValue turns an accumulator into the group's output value.
func finalizeAggValue(st *aggState, spec *TraceAgg) (data.Value, error) {
	switch spec.Kind {
	case "count":
		return data.Int(st.count), nil
	case "sum":
		if !st.any {
			return data.Null, nil
		}
		if st.isInt {
			return data.Int(st.sumI), nil
		}
		return data.Float(st.sum), nil
	case "avg":
		if !st.any || st.count == 0 {
			return data.Null, nil
		}
		return data.Float(st.sum / float64(st.count)), nil
	case "min", "max":
		if !st.any {
			return data.Null, nil
		}
		return st.best, nil
	case "udf":
		return st.udf.Final()
	}
	return data.Null, fmt.Errorf("ffi: unknown trace aggregate %s", spec.Kind)
}

// RunTraceAgg executes an aggregating trace. Group assignment happens
// inside the trace, after fused filters, via the native hash group-by —
// the reproduction of invoking the engine's exported grouping functions
// from within the JIT (§5.3.2). Output columns are the group keys (in
// first-seen order) followed by the aggregates.
func RunTraceAgg(u *UDF, t *Trace, args []*data.Column, n int, outNames []string, outKinds []data.Kind) ([]*data.Column, error) {
	return RunTraceAggTo(nil, u, t, args, n, outNames, outKinds)
}

// RunTraceAggTo is RunTraceAgg additionally attributing the boundary
// crossing — and, when the wrapper carries a VM program, the VM row and
// bail counts — to a per-query resource ledger (nil led records
// nothing). The scalar prefix of each row runs on the VM tier when one
// is published; grouping and accumulation are tier-independent.
func RunTraceAggTo(led *obs.ResourceLedger, u *UDF, t *Trace, args []*data.Column, n int, outNames []string, outKinds []data.Kind) ([]*data.Column, error) {
	start := time.Now()
	nKeys := len(t.KeyRegs)
	groupIdx := map[string]int{}
	var keyRows [][]data.Value
	var states [][]aggState // [group][agg]
	newGroup := func(regs []data.Value) (int, error) {
		keys := make([]data.Value, nKeys)
		for i, r := range t.KeyRegs {
			keys[i] = regs[r]
		}
		keyRows = append(keyRows, keys)
		sts, err := newAggStates(t)
		if err != nil {
			return 0, err
		}
		states = append(states, sts)
		return len(states) - 1, nil
	}
	// Tier dispatch: the trace's register indices are a prefix of the
	// VM program's register file, so the same emit step serves both.
	vp := u.VMProg()
	nRegs := t.NumRegs
	if vp != nil {
		nRegs = vp.NumRegs
	}
	regs := make([]data.Value, nRegs)
	for i, r := range t.ConstRegs {
		regs[r] = t.Consts[i]
	}
	var stepErr error
	bails := 0
	emit := func(regs []data.Value) error {
		var kb []byte
		for _, r := range t.KeyRegs {
			kb = append(kb, regs[r].Key()...)
			kb = append(kb, 0)
		}
		gid, ok := groupIdx[string(kb)]
		if !ok {
			var err error
			gid, err = newGroup(regs)
			if err != nil {
				stepErr = err
				return err
			}
			groupIdx[string(kb)] = gid
		}
		for ai := range t.Aggs {
			spec := &t.Aggs[ai]
			var v data.Value
			if spec.ArgReg >= 0 {
				v = regs[spec.ArgReg]
			}
			if err := stepAggState(&states[gid][ai], spec, v); err != nil {
				stepErr = err
				return stepErr
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		var err error
		if vp != nil {
			for j, c := range args {
				regs[j] = vmColLoad(c, i)
			}
			err = runOpsVM(u, vp, t.Ops, regs, &bails, emit)
		} else {
			for j, c := range args {
				regs[j] = CrossIn(c, i)
			}
			err = runOps(u, t.Ops, regs, emit)
		}
		if err != nil {
			return nil, err
		}
	}
	if stepErr != nil {
		return nil, stepErr
	}
	g := len(states)
	// Global aggregate over zero rows still produces one (empty) group.
	if nKeys == 0 && g == 0 {
		if _, err := newGroup(regs); err != nil {
			return nil, err
		}
		g = 1
	}
	outs := make([]*data.Column, nKeys+len(t.Aggs))
	for ki := 0; ki < nKeys; ki++ {
		col := data.NewColumnCap(outNames[ki], outKinds[ki], g)
		for gi := 0; gi < g; gi++ {
			col.AppendValue(keyRows[gi][ki])
		}
		outs[ki] = col
	}
	for ai := range t.Aggs {
		spec := &t.Aggs[ai]
		col := data.NewColumnCap(outNames[nKeys+ai], outKinds[nKeys+ai], g)
		for gi := 0; gi < g; gi++ {
			v, err := finalizeAggValue(&states[gi][ai], spec)
			if err != nil {
				return nil, err
			}
			col.AppendValue(v)
		}
		outs[nKeys+ai] = col
	}
	if vp != nil {
		mVMMorsels.Inc()
		mVMRows.Add(int64(n))
		mVMBailRows.Add(int64(bails))
		led.VMObserve(n, bails)
	}
	mTraceRows.Add(int64(n))
	u.record(n, g, time.Since(start), 0)
	led.FFIObserve(u.Name, n, g, time.Since(start), 0)
	return outs, nil
}

// PartialMergeable reports whether the trace's aggregates can run as
// per-worker partial STATES merged at the barrier. This is strictly
// wider than Mergeable (which merges finalized output columns and so
// cannot reconstruct an avg from its ratio): live states keep the
// sum/count decomposition for avg, and UDF aggregates qualify when
// their state is decomposable (a merge hook exists).
func (t *Trace) PartialMergeable() bool {
	if len(t.Aggs) == 0 {
		return false
	}
	for _, a := range t.Aggs {
		switch a.Kind {
		case "count", "sum", "min", "max", "avg":
		case "udf":
			if !DecomposableAgg(a.UDF) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// TraceAggPartial is one worker's partial group table from
// RunTraceAggPartial: group keys in first-seen order plus live
// aggregate states. FinalizeTraceAggPartials merges a set of partials
// (in partition order) into the final output columns.
type TraceAggPartial struct {
	keys    []string
	keyRows [][]data.Value
	states  [][]aggState
}

// RunTraceAggPartial executes an aggregating trace over one partition,
// returning the live partial states instead of finalized columns. Input
// rows are recorded on u's stats here; the finalize step records the
// output groups.
func RunTraceAggPartial(u *UDF, t *Trace, args []*data.Column, n int) (*TraceAggPartial, error) {
	return RunTraceAggPartialTo(nil, u, t, args, n)
}

// RunTraceAggPartialTo is RunTraceAggPartial with per-query ledger
// attribution (nil led records nothing). As in RunTraceAggTo, the
// scalar prefix of each row runs on the VM tier when the wrapper — here
// typically a worker clone — carries a VM program.
func RunTraceAggPartialTo(led *obs.ResourceLedger, u *UDF, t *Trace, args []*data.Column, n int) (*TraceAggPartial, error) {
	start := time.Now()
	pt := &TraceAggPartial{}
	groupIdx := map[string]int{}
	vp := u.VMProg()
	nRegs := t.NumRegs
	if vp != nil {
		nRegs = vp.NumRegs
	}
	regs := make([]data.Value, nRegs)
	for i, r := range t.ConstRegs {
		regs[r] = t.Consts[i]
	}
	var stepErr error
	bails := 0
	emit := func(regs []data.Value) error {
		var kb []byte
		for _, r := range t.KeyRegs {
			kb = append(kb, regs[r].Key()...)
			kb = append(kb, 0)
		}
		gid, ok := groupIdx[string(kb)]
		if !ok {
			keys := make([]data.Value, len(t.KeyRegs))
			for ki, r := range t.KeyRegs {
				keys[ki] = regs[r]
			}
			sts, err := newAggStates(t)
			if err != nil {
				stepErr = err
				return err
			}
			gid = len(pt.states)
			groupIdx[string(kb)] = gid
			pt.keys = append(pt.keys, string(kb))
			pt.keyRows = append(pt.keyRows, keys)
			pt.states = append(pt.states, sts)
		}
		for ai := range t.Aggs {
			spec := &t.Aggs[ai]
			var v data.Value
			if spec.ArgReg >= 0 {
				v = regs[spec.ArgReg]
			}
			if err := stepAggState(&pt.states[gid][ai], spec, v); err != nil {
				stepErr = err
				return stepErr
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		var err error
		if vp != nil {
			for j, c := range args {
				regs[j] = vmColLoad(c, i)
			}
			err = runOpsVM(u, vp, t.Ops, regs, &bails, emit)
		} else {
			for j, c := range args {
				regs[j] = CrossIn(c, i)
			}
			err = runOps(u, t.Ops, regs, emit)
		}
		if err != nil {
			return nil, err
		}
	}
	if stepErr != nil {
		return nil, stepErr
	}
	if vp != nil {
		mVMMorsels.Inc()
		mVMRows.Add(int64(n))
		mVMBailRows.Add(int64(bails))
		led.VMObserve(n, bails)
	}
	mTraceRows.Add(int64(n))
	u.record(n, 0, time.Since(start), 0)
	led.FFIObserve(u.Name, n, 0, time.Since(start), 0)
	return pt, nil
}

// FinalizeTraceAggPartials merges partial group tables in partition
// order — reproducing the serial first-seen group order — and finalizes
// them into the trace's output columns.
func FinalizeTraceAggPartials(u *UDF, t *Trace, parts []*TraceAggPartial, outNames []string, outKinds []data.Kind) ([]*data.Column, error) {
	start := time.Now()
	nKeys := len(t.KeyRegs)
	idx := map[string]int{}
	var keyRows [][]data.Value
	var states [][]aggState
	for _, pt := range parts {
		if pt == nil {
			continue
		}
		for gi, k := range pt.keys {
			g, ok := idx[k]
			if !ok {
				idx[k] = len(states)
				keyRows = append(keyRows, pt.keyRows[gi])
				states = append(states, pt.states[gi])
				continue
			}
			for ai := range t.Aggs {
				if err := mergeAggState(&states[g][ai], &pt.states[gi][ai], &t.Aggs[ai]); err != nil {
					return nil, err
				}
			}
		}
	}
	g := len(states)
	// Global aggregate over zero rows still produces one (empty) group.
	if nKeys == 0 && g == 0 {
		sts, err := newAggStates(t)
		if err != nil {
			return nil, err
		}
		keyRows = append(keyRows, nil)
		states = append(states, sts)
		g = 1
	}
	outs := make([]*data.Column, nKeys+len(t.Aggs))
	for ki := 0; ki < nKeys; ki++ {
		col := data.NewColumnCap(outNames[ki], outKinds[ki], g)
		for gi := 0; gi < g; gi++ {
			col.AppendValue(keyRows[gi][ki])
		}
		outs[ki] = col
	}
	for ai := range t.Aggs {
		spec := &t.Aggs[ai]
		col := data.NewColumnCap(outNames[nKeys+ai], outKinds[nKeys+ai], g)
		for gi := 0; gi < g; gi++ {
			v, err := finalizeAggValue(&states[gi][ai], spec)
			if err != nil {
				return nil, err
			}
			col.AppendValue(v)
		}
		outs[nKeys+ai] = col
	}
	u.record(0, g, time.Since(start), 0)
	return outs, nil
}
