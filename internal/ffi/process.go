package ffi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qfusor/internal/data"
	"qfusor/internal/faultinject"
	"qfusor/internal/obs"
	"qfusor/internal/resilience"
)

// Chaos hooks on the two sides of the process boundary: the host-side
// transport (fires in roundTrip before dispatch) and the UDF-side
// worker (fires while serving a request; honours worker-kill).
var (
	FaultProcTransport = faultinject.Register("proc.transport")
	FaultProcWorker    = faultinject.Register("proc.worker")
)

// Supervision errors. All are typed sentinels so callers can decide
// retry/fallback with errors.Is.
var (
	// ErrInvokerClosed reports a call on a Close()d ProcessInvoker.
	ErrInvokerClosed = errors.New("ffi: process invoker is closed")
	// ErrWorkerCrashed reports that the UDF worker died mid-request (the
	// host saw the pipe close); the supervisor respawns a replacement.
	ErrWorkerCrashed = errors.New("ffi: process worker crashed")
	// ErrCallTimeout reports that one round trip exceeded CallTimeout.
	ErrCallTimeout = errors.New("ffi: process call timed out")
)

var (
	mProcRespawns = obs.Default.Counter("ffi.proc_worker_respawns")
	mProcRetries  = obs.Default.Counter("ffi.proc_call_retries")
	// gProcWorkers counts live UDF worker goroutines process-wide; it
	// drops when a worker dies and recovers when the supervisor respawns
	// it, so /metrics shows supervision in action.
	gProcWorkers = obs.Default.Gauge("ffi.proc_live_workers")
)

// Retry-backoff bounds for idempotent scalar batches.
const (
	procRetryBase = 500 * time.Microsecond
	procRetryMax  = 20 * time.Millisecond
)

// ProcessInvoker models PostgreSQL's out-of-process UDF execution: every
// batch of arguments is serialized into a wire buffer, shipped to a
// worker ("the pl/python process"), deserialized there, executed, and
// the results make the same trip back. The serialization is real work
// (the binary chunk codec), so the inter-process overhead the paper
// measures shows up as genuine CPU time here.
//
// The worker pool is supervised: a worker that panics or is killed
// mid-request fails that request with ErrWorkerCrashed (the host
// noticing the dead pipe) and is respawned; idempotent scalar batches
// are re-dispatched with bounded backoff. CallTimeout bounds each round
// trip, and calls after Close fail fast with ErrInvokerClosed.
type ProcessInvoker struct {
	mu     sync.Mutex
	req    chan procRequest
	done   chan struct{} // closed by Close; unblocks dispatch and idle workers
	closed bool
	// BatchRows bounds how many rows travel per message (Postgres sends
	// row-by-row; a batch of 1 reproduces that, larger batches model
	// result-set chunking).
	BatchRows int
	// Workers is the UDF-side pool size. One worker models Postgres's
	// single backend; a pool models Spark's executor fan-out, so the
	// engine's morsel workers don't serialize behind one process.
	Workers int
	// CallTimeout bounds a single round trip (dispatch + execution +
	// reply); 0 means no bound.
	CallTimeout time.Duration
	// MaxRetries is how many times a scalar batch is re-dispatched after
	// a worker crash or timeout. Negative disables retry.
	MaxRetries int

	respawns atomic.Int64
}

type procRequest struct {
	kind     UDFKind
	udf      *UDF
	payload  []byte
	groupIDs []int
	groups   int
	extra    []data.Value
	resp     chan procResponse
}

type procResponse struct {
	payload []byte
	err     error
}

// NewProcessInvoker starts a single worker goroutine (one UDF process).
func NewProcessInvoker(batchRows int) *ProcessInvoker {
	return NewProcessInvokerN(batchRows, 1)
}

// NewProcessInvokerN starts a pool of supervised workers draining the
// shared request channel. Each request is self-contained (its own
// response channel), so concurrent engine-side callers round-trip in
// parallel up to the pool size.
func NewProcessInvokerN(batchRows, workers int) *ProcessInvoker {
	if batchRows <= 0 {
		batchRows = 1024
	}
	if workers < 1 {
		workers = 1
	}
	p := &ProcessInvoker{
		req:        make(chan procRequest),
		done:       make(chan struct{}),
		BatchRows:  batchRows,
		Workers:    workers,
		MaxRetries: 2,
	}
	for i := 0; i < workers; i++ {
		go p.supervise()
	}
	return p
}

// Close shuts the pool down. Idempotent; calls made after Close (or
// blocked in dispatch when it lands) fail with ErrInvokerClosed instead
// of hanging on a drained pool.
func (p *ProcessInvoker) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.done)
	}
}

// Respawns reports how many crashed workers the supervisor replaced.
func (p *ProcessInvoker) Respawns() int64 { return p.respawns.Load() }

// Name implements Invoker.
func (*ProcessInvoker) Name() string { return "process" }

// supervise keeps one worker slot alive: each time the worker dies
// mid-request (panic or injected kill), a replacement is spawned, until
// Close.
func (p *ProcessInvoker) supervise() {
	gProcWorkers.Add(1)
	for p.runWorker() {
		gProcWorkers.Add(-1)
		p.respawns.Add(1)
		mProcRespawns.Inc()
		gProcWorkers.Add(1)
	}
	gProcWorkers.Add(-1)
}

// runWorker is the UDF-side of the "process boundary". It reports true
// when the worker died and should be respawned, false on clean
// shutdown. A panic anywhere in UDF execution is the process crashing:
// the deferred recover answers the in-flight request with
// ErrWorkerCrashed — the host's view of the pipe closing — so no caller
// is left hanging.
func (p *ProcessInvoker) runWorker() (died bool) {
	var cur *procRequest
	defer func() {
		if r := recover(); r != nil {
			died = true
			if cur != nil {
				cur.resp <- procResponse{err: crashError(r)}
			}
		}
	}()
	var inner VectorInvoker
	for {
		select {
		case <-p.done:
			return false
		case r := <-p.req:
			cur = &r
			if faultinject.Armed() {
				if err := faultinject.Fire(FaultProcWorker); err != nil {
					if faultinject.IsWorkerKill(err) {
						r.resp <- procResponse{err: crashError(err)}
						return true
					}
					r.resp <- procResponse{err: err}
					cur = nil
					continue
				}
			}
			r.resp <- p.serve(&inner, r)
			cur = nil
		}
	}
}

// crashError wraps a worker's dying gasp so the chain keeps both the
// ErrWorkerCrashed sentinel and the underlying cause.
func crashError(v any) error {
	if err, ok := v.(error); ok {
		return fmt.Errorf("%w: %w", ErrWorkerCrashed, err)
	}
	return fmt.Errorf("%w: panic: %v", ErrWorkerCrashed, v)
}

// serve decodes, executes and re-encodes one request.
func (p *ProcessInvoker) serve(inner *VectorInvoker, r procRequest) procResponse {
	ch, err := data.DecodeChunk(bytes.NewReader(r.payload))
	if err != nil {
		return procResponse{err: fmt.Errorf("ffi: worker decode: %w", err)}
	}
	var out *data.Chunk
	switch r.kind {
	case Scalar:
		col, cerr := inner.CallScalar(r.udf, ch.Cols, ch.NumRows())
		if cerr != nil {
			return procResponse{err: cerr}
		}
		out = data.NewChunk(col)
	case Aggregate:
		vals, cerr := inner.CallAggregate(r.udf, ch.Cols, ch.NumRows(), r.groupIDs, r.groups)
		if cerr != nil {
			return procResponse{err: cerr}
		}
		out = data.NewChunk(UnboxValues(r.udf.Name, r.udf.OutKind(), vals))
	case Table:
		var cerr error
		out, cerr = inner.CallTable(r.udf, ch, r.extra)
		if cerr != nil {
			return procResponse{err: cerr}
		}
	case Expand:
		perRow, cerr := inner.CallExpand(r.udf, ch.Cols, ch.NumRows())
		if cerr != nil {
			return procResponse{err: cerr}
		}
		cols := make([]*data.Column, len(r.udf.OutKinds))
		for i, k := range r.udf.OutKinds {
			name := fmt.Sprintf("c%d", i)
			if i < len(r.udf.OutNames) {
				name = r.udf.OutNames[i]
			}
			cols[i] = data.NewColumn(name, k)
		}
		for _, rows := range perRow {
			for _, row := range rows {
				for i, c := range cols {
					if i < len(row) {
						c.AppendValue(row[i])
					} else {
						c.AppendNull()
					}
				}
			}
		}
		out = data.NewChunk(cols...)
	}
	var buf bytes.Buffer
	if err := data.EncodeChunk(&buf, out); err != nil {
		return procResponse{err: fmt.Errorf("ffi: worker encode: %w", err)}
	}
	return procResponse{payload: buf.Bytes()}
}

// roundTrip serializes a chunk to the worker pool and decodes the
// reply, honouring Close and CallTimeout on both the dispatch and the
// wait.
func (p *ProcessInvoker) roundTrip(r procRequest, in *data.Chunk) (*data.Chunk, error) {
	if faultinject.Armed() {
		if err := faultinject.Fire(FaultProcTransport); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if err := data.EncodeChunk(&buf, in); err != nil {
		return nil, fmt.Errorf("ffi: encode request: %w", err)
	}
	r.payload = buf.Bytes()
	r.resp = make(chan procResponse, 1)

	var timeout <-chan time.Time
	if p.CallTimeout > 0 {
		t := time.NewTimer(p.CallTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case p.req <- r:
	case <-p.done:
		return nil, ErrInvokerClosed
	case <-timeout:
		return nil, fmt.Errorf("%w (dispatch after %v)", ErrCallTimeout, p.CallTimeout)
	}
	// The request is in a worker's hands now: even if Close lands, that
	// worker finishes and replies, so only the timeout abandons the wait.
	var resp procResponse
	select {
	case resp = <-r.resp:
	case <-timeout:
		return nil, fmt.Errorf("%w (after %v)", ErrCallTimeout, p.CallTimeout)
	}
	mIPCTrips.Inc()
	mIPCBytes.Add(int64(len(r.payload) + len(resp.payload)))
	if resp.err != nil {
		return nil, resp.err
	}
	out, err := data.DecodeChunk(bytes.NewReader(resp.payload))
	if err != nil {
		return nil, fmt.Errorf("ffi: decode response: %w", err)
	}
	return out, nil
}

// retryable reports whether a failed round trip may be re-dispatched:
// only transient supervision failures (crash, timeout) qualify; UDF
// errors are deterministic and must not be retried.
func retryable(err error) bool {
	return errors.Is(err, ErrWorkerCrashed) || errors.Is(err, ErrCallTimeout)
}

// scalarTrip runs one scalar batch with bounded retry-with-backoff:
// scalar UDFs are pure, so a batch lost to a worker crash or timeout is
// safely re-dispatched to the respawned worker.
func (p *ProcessInvoker) scalarTrip(u *UDF, batch []*data.Column) (*data.Chunk, error) {
	res, err := p.roundTrip(procRequest{kind: Scalar, udf: u}, data.NewChunk(batch...))
	for attempt := 0; err != nil && retryable(err) && attempt < p.MaxRetries; attempt++ {
		// Full jitter: a worker crash typically kills every in-flight
		// batch at once, and deterministic backoff would march all their
		// retries onto the freshly respawned worker in lockstep.
		time.Sleep(resilience.BackoffFullJitter(attempt, procRetryBase, procRetryMax))
		mProcRetries.Inc()
		res, err = p.roundTrip(procRequest{kind: Scalar, udf: u}, data.NewChunk(batch...))
	}
	return res, err
}

// CallScalar implements Invoker. Batches of BatchRows rows cross the
// boundary per message.
func (p *ProcessInvoker) CallScalar(u *UDF, args []*data.Column, n int) (*data.Column, error) {
	start := time.Now()
	wallBefore := u.Stats.WallNanos.Load()
	out := data.NewColumnCap(u.Name, u.OutKind(), n)
	for lo := 0; lo < n; lo += p.BatchRows {
		hi := lo + p.BatchRows
		if hi > n {
			hi = n
		}
		batch := make([]*data.Column, len(args))
		for i, c := range args {
			batch[i] = c.Slice(lo, hi)
		}
		res, err := p.scalarTrip(u, batch)
		if err != nil {
			return nil, err
		}
		out.AppendColumn(res.Cols[0])
	}
	// The worker already recorded per-row stats; the transport's share of
	// the elapsed time (elapsed minus the UDF wall time this call added)
	// is wrapper cost. Concurrent callers make the delta approximate, but
	// never the cumulative-total subtraction the old accounting did.
	wrap := time.Since(start).Nanoseconds() - (u.Stats.WallNanos.Load() - wallBefore)
	if wrap > 0 {
		u.Stats.WrapNanos.Add(wrap)
	}
	return out, nil
}

// CallAggregate implements Invoker (one message, group ids attached).
func (p *ProcessInvoker) CallAggregate(u *UDF, args []*data.Column, n int, groupIDs []int, g int) ([]data.Value, error) {
	res, err := p.roundTrip(procRequest{kind: Aggregate, udf: u, groupIDs: groupIDs, groups: g},
		data.NewChunk(args...))
	if err != nil {
		return nil, err
	}
	return BoxColumn(res.Cols[0], res.NumRows()), nil
}

// CallExpand implements Invoker. The expansion happens worker-side; the
// per-input-row grouping is rebuilt from a row-id column.
func (p *ProcessInvoker) CallExpand(u *UDF, args []*data.Column, n int) ([][][]data.Value, error) {
	// Run row-at-a-time through the worker, mirroring Postgres's per-call
	// set-returning function protocol.
	var inner procExpander = p
	return inner.expandRows(u, args, n)
}

type procExpander interface {
	expandRows(u *UDF, args []*data.Column, n int) ([][][]data.Value, error)
}

func (p *ProcessInvoker) expandRows(u *UDF, args []*data.Column, n int) ([][][]data.Value, error) {
	out := make([][][]data.Value, n)
	for i := 0; i < n; i++ {
		batch := make([]*data.Column, len(args))
		for j, c := range args {
			batch[j] = c.Slice(i, i+1)
		}
		res, err := p.roundTrip(procRequest{kind: Expand, udf: u}, data.NewChunk(batch...))
		if err != nil {
			return nil, err
		}
		m := res.NumRows()
		rows := make([][]data.Value, m)
		for r := 0; r < m; r++ {
			rows[r] = res.Row(r)
		}
		out[i] = rows
	}
	return out, nil
}

// CallTable implements Invoker.
func (p *ProcessInvoker) CallTable(u *UDF, input *data.Chunk, extra []data.Value) (*data.Chunk, error) {
	return p.roundTrip(procRequest{kind: Table, udf: u, extra: extra}, input)
}
