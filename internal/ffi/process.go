package ffi

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"qfusor/internal/data"
)

// ProcessInvoker models PostgreSQL's out-of-process UDF execution: every
// batch of arguments is serialized into a wire buffer, shipped to a
// worker ("the pl/python process"), deserialized there, executed, and
// the results make the same trip back. The serialization is real work
// (the binary chunk codec), so the inter-process overhead the paper
// measures shows up as genuine CPU time here.
type ProcessInvoker struct {
	mu     sync.Mutex
	req    chan procRequest
	closed bool
	// BatchRows bounds how many rows travel per message (Postgres sends
	// row-by-row; a batch of 1 reproduces that, larger batches model
	// result-set chunking).
	BatchRows int
	// Workers is the UDF-side pool size. One worker models Postgres's
	// single backend; a pool models Spark's executor fan-out, so the
	// engine's morsel workers don't serialize behind one process.
	Workers int
}

type procRequest struct {
	kind     UDFKind
	udf      *UDF
	payload  []byte
	groupIDs []int
	groups   int
	extra    []data.Value
	resp     chan procResponse
}

type procResponse struct {
	payload []byte
	err     error
}

// NewProcessInvoker starts a single worker goroutine (one UDF process).
func NewProcessInvoker(batchRows int) *ProcessInvoker {
	return NewProcessInvokerN(batchRows, 1)
}

// NewProcessInvokerN starts a pool of workers draining the shared
// request channel. Each request is self-contained (its own response
// channel), so concurrent engine-side callers round-trip in parallel up
// to the pool size.
func NewProcessInvokerN(batchRows, workers int) *ProcessInvoker {
	if batchRows <= 0 {
		batchRows = 1024
	}
	if workers < 1 {
		workers = 1
	}
	p := &ProcessInvoker{req: make(chan procRequest), BatchRows: batchRows, Workers: workers}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Close shuts the worker down.
func (p *ProcessInvoker) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.req)
	}
}

// Name implements Invoker.
func (*ProcessInvoker) Name() string { return "process" }

// worker is the UDF-side of the "process boundary".
func (p *ProcessInvoker) worker() {
	var inner VectorInvoker
	for r := range p.req {
		ch, err := data.DecodeChunk(bytes.NewReader(r.payload))
		if err != nil {
			r.resp <- procResponse{err: fmt.Errorf("ffi: worker decode: %w", err)}
			continue
		}
		var out *data.Chunk
		switch r.kind {
		case Scalar:
			col, cerr := inner.CallScalar(r.udf, ch.Cols, ch.NumRows())
			if cerr != nil {
				r.resp <- procResponse{err: cerr}
				continue
			}
			out = data.NewChunk(col)
		case Aggregate:
			vals, cerr := inner.CallAggregate(r.udf, ch.Cols, ch.NumRows(), r.groupIDs, r.groups)
			if cerr != nil {
				r.resp <- procResponse{err: cerr}
				continue
			}
			out = data.NewChunk(UnboxValues(r.udf.Name, r.udf.OutKind(), vals))
		case Table:
			var cerr error
			out, cerr = inner.CallTable(r.udf, ch, r.extra)
			if cerr != nil {
				r.resp <- procResponse{err: cerr}
				continue
			}
		case Expand:
			perRow, cerr := inner.CallExpand(r.udf, ch.Cols, ch.NumRows())
			if cerr != nil {
				r.resp <- procResponse{err: cerr}
				continue
			}
			cols := make([]*data.Column, len(r.udf.OutKinds))
			for i, k := range r.udf.OutKinds {
				name := fmt.Sprintf("c%d", i)
				if i < len(r.udf.OutNames) {
					name = r.udf.OutNames[i]
				}
				cols[i] = data.NewColumn(name, k)
			}
			for _, rows := range perRow {
				for _, row := range rows {
					for i, c := range cols {
						if i < len(row) {
							c.AppendValue(row[i])
						} else {
							c.AppendNull()
						}
					}
				}
			}
			out = data.NewChunk(cols...)
		}
		var buf bytes.Buffer
		if err := data.EncodeChunk(&buf, out); err != nil {
			r.resp <- procResponse{err: fmt.Errorf("ffi: worker encode: %w", err)}
			continue
		}
		r.resp <- procResponse{payload: buf.Bytes()}
	}
}

// roundTrip serializes a chunk to the worker and decodes its reply.
func (p *ProcessInvoker) roundTrip(r procRequest, in *data.Chunk) (*data.Chunk, error) {
	var buf bytes.Buffer
	if err := data.EncodeChunk(&buf, in); err != nil {
		return nil, fmt.Errorf("ffi: encode request: %w", err)
	}
	r.payload = buf.Bytes()
	r.resp = make(chan procResponse, 1)
	p.req <- r
	resp := <-r.resp
	mIPCTrips.Inc()
	mIPCBytes.Add(int64(len(r.payload) + len(resp.payload)))
	if resp.err != nil {
		return nil, resp.err
	}
	out, err := data.DecodeChunk(bytes.NewReader(resp.payload))
	if err != nil {
		return nil, fmt.Errorf("ffi: decode response: %w", err)
	}
	return out, nil
}

// CallScalar implements Invoker. Batches of BatchRows rows cross the
// boundary per message.
func (p *ProcessInvoker) CallScalar(u *UDF, args []*data.Column, n int) (*data.Column, error) {
	start := time.Now()
	wallBefore := u.Stats.WallNanos.Load()
	out := data.NewColumnCap(u.Name, u.OutKind(), n)
	for lo := 0; lo < n; lo += p.BatchRows {
		hi := lo + p.BatchRows
		if hi > n {
			hi = n
		}
		batch := make([]*data.Column, len(args))
		for i, c := range args {
			batch[i] = c.Slice(lo, hi)
		}
		res, err := p.roundTrip(procRequest{kind: Scalar, udf: u}, data.NewChunk(batch...))
		if err != nil {
			return nil, err
		}
		out.AppendColumn(res.Cols[0])
	}
	// The worker already recorded per-row stats; the transport's share of
	// the elapsed time (elapsed minus the UDF wall time this call added)
	// is wrapper cost. Concurrent callers make the delta approximate, but
	// never the cumulative-total subtraction the old accounting did.
	wrap := time.Since(start).Nanoseconds() - (u.Stats.WallNanos.Load() - wallBefore)
	if wrap > 0 {
		u.Stats.WrapNanos.Add(wrap)
	}
	return out, nil
}

// CallAggregate implements Invoker (one message, group ids attached).
func (p *ProcessInvoker) CallAggregate(u *UDF, args []*data.Column, n int, groupIDs []int, g int) ([]data.Value, error) {
	res, err := p.roundTrip(procRequest{kind: Aggregate, udf: u, groupIDs: groupIDs, groups: g},
		data.NewChunk(args...))
	if err != nil {
		return nil, err
	}
	return BoxColumn(res.Cols[0], res.NumRows()), nil
}

// CallExpand implements Invoker. The expansion happens worker-side; the
// per-input-row grouping is rebuilt from a row-id column.
func (p *ProcessInvoker) CallExpand(u *UDF, args []*data.Column, n int) ([][][]data.Value, error) {
	// Run row-at-a-time through the worker, mirroring Postgres's per-call
	// set-returning function protocol.
	var inner procExpander = p
	return inner.expandRows(u, args, n)
}

type procExpander interface {
	expandRows(u *UDF, args []*data.Column, n int) ([][][]data.Value, error)
}

func (p *ProcessInvoker) expandRows(u *UDF, args []*data.Column, n int) ([][][]data.Value, error) {
	out := make([][][]data.Value, n)
	for i := 0; i < n; i++ {
		batch := make([]*data.Column, len(args))
		for j, c := range args {
			batch[j] = c.Slice(i, i+1)
		}
		res, err := p.roundTrip(procRequest{kind: Expand, udf: u}, data.NewChunk(batch...))
		if err != nil {
			return nil, err
		}
		m := res.NumRows()
		rows := make([][]data.Value, m)
		for r := 0; r < m; r++ {
			rows[r] = res.Row(r)
		}
		out[i] = rows
	}
	return out, nil
}

// CallTable implements Invoker.
func (p *ProcessInvoker) CallTable(u *UDF, input *data.Chunk, extra []data.Value) (*data.Chunk, error) {
	return p.roundTrip(procRequest{kind: Table, udf: u, extra: extra}, input)
}
