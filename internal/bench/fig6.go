package bench

import (
	"fmt"

	"qfusor/internal/core"
	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// ladderStep is one technique level of the optimization ladders.
type ladderStep struct {
	name string
	jit  bool
	mode runMode
	opts core.Options
}

// physioLadder is Fig. 6a's five techniques.
func physioLadder() []ladderStep {
	return []ladderStep{
		{name: "(a) default", jit: false, mode: runNative},
		{name: "(b) +JIT", jit: true, mode: runNative},
		{name: "(c) +scalar/table fusion", jit: true, mode: runFused,
			opts: core.Options{Fusion: true, Cache: true}},
		{name: "(d) +offload+reorder", jit: true, mode: runFused,
			opts: core.Options{Fusion: true, Offload: true, Reorder: true, Cache: true}},
		{name: "(e) +agg offload", jit: true, mode: runFused,
			opts: core.Options{Fusion: true, Offload: true, Reorder: true, AggFusion: true, Cache: true}},
	}
}

// Fig6aLadder is E6 — Fig. 6a: the physio-logical optimization ladder
// on Q3, across MonetDB-, PostgreSQL- and SQLite-profile engines.
func (r *Runner) Fig6aLadder() (*Result, error) {
	res := &Result{ID: "E6", Title: "Fig. 6a: physio-logical optimization ladder (Q3)"}
	profiles := []engines.Profile{engines.Monet, engines.Postgres, engines.SQLite}
	for _, prof := range profiles {
		for _, step := range physioLadder() {
			in, err := r.launchWorkload(engines.Config{Profile: prof, JIT: step.jit}, "udfbench")
			if err != nil {
				return nil, err
			}
			if step.mode == runFused {
				in.QF.Opts = step.opts
			}
			d, rows, err := r.runSQL(in, workload.Q3, step.mode)
			in.Close()
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", prof, step.name, err)
			}
			res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("%s/%s", prof, step.name),
				Metrics: map[string]float64{"time_ms": ms(d), "rows": float64(rows)},
				Order:   []string{"time_ms", "rows"}})
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: each technique improves on the last; up to 18x total; sqlite/postgres start far slower than monetdb")
	return res, nil
}

// Fig6bOffload is E7 — Fig. 6b: relational-operator offloading vs
// filter selectivity (Q8), MonetDB and PostgreSQL profiles, fused vs
// non-fused JIT execution.
func (r *Runner) Fig6bOffload() (*Result, error) {
	res := &Result{ID: "E7", Title: "Fig. 6b: filter offloading vs selectivity (Q8)"}
	pcts := []int{1, 10, 25, 50, 75, 100}
	if r.Quick {
		pcts = []int{10, 50, 100}
	}
	for _, prof := range []engines.Profile{engines.Monet, engines.Postgres} {
		for _, pct := range pcts {
			sql := workload.Q8(pct)
			for _, fused := range []bool{false, true} {
				in, err := r.launchWorkload(engines.Config{Profile: prof, JIT: true}, "udfbench")
				if err != nil {
					return nil, err
				}
				mode := runNative
				label := fmt.Sprintf("%s/sel=%d%%/no-fus", prof, pct)
				if fused {
					mode = runFused
					label = fmt.Sprintf("%s/sel=%d%%/fused", prof, pct)
				}
				d, rows, err := r.runSQL(in, sql, mode)
				in.Close()
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Row{Label: label,
					Metrics: map[string]float64{"time_ms": ms(d), "rows": float64(rows)},
					Order:   []string{"time_ms", "rows"}})
			}
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: non-fused runtime ≈ constant (UDF output always copied back); fused wins most at low pass rates (up to 2.4x)")
	return res, nil
}

// Fig6cPhysical is E8 — Fig. 6c: the physical-optimization ladder on
// Q9 (light UDFs, big table) and Q10 (JSON-heavy complex types),
// MonetDB and PostgreSQL profiles. Step mapping to the paper's seven
// techniques is recorded in the notes.
func (r *Runner) Fig6cPhysical() (*Result, error) {
	res := &Result{ID: "E8", Title: "Fig. 6c: physical optimization ladder (Q9, Q10)"}
	type step struct {
		name   string
		jit    bool
		mode   runMode
		opts   core.Options
		inProc bool // replace out-of-process transport with in-process
	}
	steps := []step{
		{name: "(a) baseline", jit: false, mode: runNative},
		{name: "(b) JIT-noFusion", jit: true, mode: runNative},
		{name: "(c) same-process", jit: true, mode: runNative, inProc: true},
		{name: "(d) same-JIT-trace", jit: true, mode: runFused, inProc: true,
			opts: core.Options{Fusion: true, ScalarOnly: true, Cache: true}},
		{name: "(e) fused: no conv/serialization", jit: true, mode: runFused, inProc: true,
			opts: core.DefaultOptions()},
	}
	for _, prof := range []engines.Profile{engines.Monet, engines.Postgres} {
		for _, q := range []struct{ id, sql string }{{"Q9", workload.Q9}, {"Q10", workload.Q10}} {
			for _, st := range steps {
				cfg := engines.Config{Profile: prof, JIT: st.jit}
				if st.inProc && prof == engines.Postgres {
					// "Same process": the UDFs are called from the same C
					// UDF instead of crossing into a worker process.
					cfg.Profile = engines.SQLite // row engine, in-process transport
				}
				in, err := r.launchWorkload(cfg, "udfbench")
				if err != nil {
					return nil, err
				}
				if st.mode == runFused {
					in.QF.Opts = st.opts
				}
				d, rows, err := r.runSQL(in, q.sql, st.mode)
				in.Close()
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", prof, q.id, st.name, err)
				}
				res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("%s/%s/%s", prof, q.id, st.name),
					Metrics: map[string]float64{"time_ms": ms(d), "rows": float64(rows)},
					Order:   []string{"time_ms", "rows"}})
			}
		}
	}
	res.Notes = append(res.Notes,
		"step mapping: paper's (c) same process = in-process transport; (d) same JIT + (e) remove C↔JIT conversions = scalar fusion; (f) loop fusion + (g) remove serialization = full fusion",
		"paper shape: every step improves; overall ≈20x on monetdb, ≈4.6x on postgresql; Q10 gains dominated by serialization removal")
	return res, nil
}

// Fig6dShortQueries is E9 — Fig. 6d + §6.4.5: compile latency and a
// 100-short-query workload on tiny zillow with varying parallelism,
// comparing qfusor, qfusor-cache, yesql and tuplex.
func (r *Runner) Fig6dShortQueries() (*Result, error) {
	res := &Result{ID: "E9", Title: "Fig. 6d / §6.4.5: short-query workload and compile latency"}
	listings := workload.GenZillow(workload.Tiny)

	// --- compile latency (Q13 small, Q14 complex) ---
	for _, q := range []struct{ id, sql string }{{"Q13", workload.Q13}, {"Q14", workload.Q14}} {
		in := r.launch(engines.Config{Profile: engines.Monet, JIT: true})
		if err := workload.InstallZillow(in); err != nil {
			return nil, err
		}
		in.Put(listings)
		in.QF.Opts.Cache = false
		qq, rep, err := in.QF.Process(in.Eng, q.sql)
		if err != nil {
			return nil, err
		}
		d, err := timeIt(func() error { _, err := in.Eng.Execute(qq); return err })
		in.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: q.id + "/qfusor",
			Metrics: map[string]float64{
				"compile_ms": ms(rep.FusOptim + rep.CodeGen),
				"run_ms":     ms(d),
			},
			Order: []string{"compile_ms", "run_ms"}})

		_, stats, err := tuplexZillow(q.id, 1, listings)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: q.id + "/tuplex",
			Metrics: map[string]float64{
				"compile_ms": ms(stats.CompileTime),
				"run_ms":     ms(stats.ExecTime),
				"ir_size":    float64(stats.IRSize),
			},
			Order: []string{"compile_ms", "run_ms", "ir_size"}})
	}

	// --- 100 short queries ---
	threads := []int{1, 2, 4}
	if r.Quick {
		threads = []int{1, 4}
	}
	templates := []string{workload.Q12, workload.Q13, workload.Q14, workload.Q11}
	reps := 25
	if r.Quick {
		reps = 5
	}
	for _, par := range threads {
		systems := []struct {
			name  string
			cache bool
			opts  *core.Options
		}{
			{"qfusor", false, nil},
			{"qfusor-cache", true, nil},
			{"yesql", true, &core.Options{Fusion: true, ScalarOnly: true, Cache: true}},
		}
		for _, sys := range systems {
			in := engines.Launch(engines.Config{Profile: engines.Monet, JIT: true, Parallelism: par})
			if err := workload.InstallZillow(in); err != nil {
				return nil, err
			}
			in.Put(listings)
			if sys.opts != nil {
				in.QF.Opts = *sys.opts
			}
			in.QF.Opts.Cache = sys.cache
			d, err := timeIt(func() error {
				for i := 0; i < reps; i++ {
					for _, sql := range templates {
						if _, err := in.QueryFused(sql); err != nil {
							return err
						}
					}
				}
				return nil
			})
			in.Close()
			if err != nil {
				return nil, fmt.Errorf("%s par=%d: %w", sys.name, par, err)
			}
			res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("100q/par=%d/%s", par, sys.name),
				Metrics: map[string]float64{"time_ms": ms(d)}, Order: []string{"time_ms"}})
		}
		// tuplex recompiles its pipelines per query.
		d, err := timeIt(func() error {
			for i := 0; i < reps; i++ {
				for _, id := range []string{"Q12", "Q13", "Q14"} {
					if _, _, err := tuplexZillow(id, par, listings); err != nil {
						return err
					}
				}
				if _, _, err := tuplexZillowQ11(par, listings, false); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("100q/par=%d/tuplex", par),
			Metrics: map[string]float64{"time_ms": ms(d)}, Order: []string{"time_ms"}})
	}
	res.Notes = append(res.Notes,
		"paper shape: qfusor compile cost ≈ flat with complexity, tuplex (LLVM) grows; qfusor-cache amortizes compilation to ~0")
	return res, nil
}

// Fig6eUDFTypes is E10 — Fig. 6e: fusion speedups per UDF-type pairing
// (Q4 scalar-scalar, Q5 scalar-aggregate, Q6 scalar-table, Q7
// table-aggregate) with hot caches.
func (r *Runner) Fig6eUDFTypes() (*Result, error) {
	res := &Result{ID: "E10", Title: "Fig. 6e: UDF-type fusion speedups (Q4–Q7)"}
	queries := []struct{ id, sql string }{
		{"Q4", workload.Q4}, {"Q5", workload.Q5}, {"Q6", workload.Q6}, {"Q7", workload.Q7},
	}
	for _, q := range queries {
		in, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true}, "udfbench")
		if err != nil {
			return nil, err
		}
		// Hot caches: run each mode once to warm, measure the second.
		if _, _, err := r.runSQL(in, q.sql, runNative); err != nil {
			in.Close()
			return nil, err
		}
		dn, _, err := r.runSQL(in, q.sql, runNative)
		if err != nil {
			in.Close()
			return nil, err
		}
		if _, _, err := r.runSQL(in, q.sql, runFused); err != nil {
			in.Close()
			return nil, err
		}
		df, rows, err := r.runSQL(in, q.sql, runFused)
		in.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: q.id,
			Metrics: map[string]float64{
				"nofus_ms": ms(dn), "fused_ms": ms(df),
				"speedup": ms(dn) / ms(df), "rows": float64(rows),
			},
			Order: []string{"nofus_ms", "fused_ms", "speedup", "rows"}})
	}
	res.Notes = append(res.Notes, "paper shape: speedups up to 6x across all UDF type pairings")
	return res, nil
}
