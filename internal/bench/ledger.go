package bench

import (
	"fmt"
	"time"

	"qfusor/internal/engines"
	"qfusor/internal/obs"
	"qfusor/internal/workload"
)

// ResourceOverheadBench is E19: the resource-accounting overhead
// experiment. For each UDFBench query (Q1–Q3) it measures steady-state
// fused latency with per-query resource ledgers enabled versus disabled
// and reports the delta. The acceptance bar is ≤5% overhead with
// accounting on: ledgers ride atomics on hot paths and take exactly one
// runtime/metrics read per phase boundary, so the cost must stay in the
// noise for anything but trivially short queries.
func (r *Runner) ResourceOverheadBench() (*Result, error) {
	res := &Result{ID: "E19", Title: "Resource-accounting overhead: fused latency, ledger on vs off (UDFBench Q1–Q3)"}
	reps := 15
	if r.Quick {
		reps = 9
	}

	in, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true}, "udfbench")
	if err != nil {
		return nil, err
	}
	defer in.Close()

	// Accounting is a process-wide switch; restore the default (on) no
	// matter how the experiment exits.
	defer obs.SetAccounting(true)

	queries := []struct {
		name string
		sql  string
	}{{"Q1", workload.Q1}, {"Q2", workload.Q2}, {"Q3", workload.Q3}}

	// The arms interleave within each repetition (off, on, off, on, …)
	// rather than running as sequential blocks: slow drift — GC pressure,
	// background load, frequency scaling — then hits both arms equally
	// and cancels out of the median instead of landing on whichever
	// block ran second.
	measure := func(sql string) (off, on time.Duration, err error) {
		for _, acct := range []bool{false, true} {
			obs.SetAccounting(acct)
			// One warm-up run per arm: plan-cache priming and JIT warm-up
			// are identical across arms, so the medians compare steady
			// states.
			if _, _, err := r.runSQL(in, sql, runFused); err != nil {
				return 0, 0, err
			}
		}
		offs := make([]time.Duration, 0, reps)
		ons := make([]time.Duration, 0, reps)
		for i := 0; i < reps; i++ {
			obs.SetAccounting(false)
			d, _, err := r.runSQL(in, sql, runFused)
			if err != nil {
				return 0, 0, err
			}
			offs = append(offs, d)
			obs.SetAccounting(true)
			d, _, err = r.runSQL(in, sql, runFused)
			if err != nil {
				return 0, 0, err
			}
			ons = append(ons, d)
		}
		return medianDur(offs), medianDur(ons), nil
	}

	for _, q := range queries {
		off, on, err := measure(q.sql)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.name, err)
		}
		overhead := 100 * (float64(on)/float64(off) - 1)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("ledger/%s", q.name),
			Order: []string{"off_ms", "on_ms", "overhead_pct"},
			Metrics: map[string]float64{
				"off_ms":       ms(off),
				"on_ms":        ms(on),
				"overhead_pct": overhead,
			},
		})
	}
	res.Notes = append(res.Notes,
		"acceptance: overhead_pct ≤ 5 with accounting on (atomics on hot paths, one runtime/metrics read per phase boundary)",
		"negative overhead = measurement noise; medians over steady-state repetitions, warm plan cache in both arms")
	return res, nil
}
