package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"qfusor/internal/engines"
	"qfusor/internal/obs"
	"qfusor/internal/resilience"
	"qfusor/internal/server"
)

// ServeSustained is E22: the serving plane under sustained fixed-rate
// load, plus the inlined-vs-closure tier comparison over real HTTP.
//
// A fixed-rate open-loop client (requests fire on a clock and never
// wait for the previous response — the arrival process does not slow
// down when the server does) drives a tier-pinned session at 0.5x, 1x
// and 2x the measured admission capacity for a sustained window.
// Open-loop load is the honest serving benchmark: a closed loop would
// self-throttle at saturation and hide the queue. Reported per arm:
// client-observed p50/p99, server-side execution p50, achieved vs
// offered rate, and the admitted/shed split (shed-rate must be ~0
// below capacity and positive above it, while admitted queries keep
// their uncontended execution latency).
//
// The tier arm runs the same Q1-shape straight-line UDF query through
// an inline-pinned and a closure-pinned session: relational inlining
// translates the UDF into engine expressions at plan time, so the
// inlined arm must beat the closure JIT AND cross the FFI exactly
// zero times (ffi.udf.calls delta == 0 — the Froid argument).
func (r *Runner) ServeSustained() (*Result, error) {
	res := &Result{ID: "E22", Title: "Serving plane: sustained fixed-rate load + inlined-vs-closure tier"}
	// capacity = 1: one admitted query executes alone, so the measured
	// sequential service time IS the capacity clock (cap QPS = 1/service)
	// and exec-latency inflation under load can only be admission failure.
	const capacity = 1
	tierReps := 40
	armDur := 30 * time.Second
	if r.Quick {
		tierReps = 24
		armDur = 3 * time.Second
	}

	in := r.launch(engines.Config{Profile: engines.Monet, JIT: true})
	defer in.Close()
	// Q1-shape straight-line arithmetic with the None guard: inlinable
	// (CASE WHEN x IS NULL THEN NULL ELSE ... END), unlike E21's ework
	// (while loop + modulo — deliberately opaque to the inliner).
	if err := in.Define(`
@scalarudf
def sboost(x: int) -> int:
    if x is None:
        return None
    return (x * 37 + 11) * 3 - x
`); err != nil {
		return nil, err
	}
	if err := in.Eng.Exec("CREATE TABLE stbl (n int)"); err != nil {
		return nil, err
	}
	var vals bytes.Buffer
	for i := 0; i < 4000; i++ {
		if i > 0 {
			vals.WriteString(", ")
		}
		if i%97 == 0 {
			vals.WriteString("(NULL)")
		} else {
			fmt.Fprintf(&vals, "(%d)", i)
		}
	}
	if err := in.Eng.Exec("INSERT INTO stbl VALUES " + vals.String()); err != nil {
		return nil, err
	}
	// sbig feeds the sustained arms. It is deliberately much larger than
	// stbl: the open-loop arms need a query whose admission-slot hold
	// time (execution, which yields to the scheduler at morsel
	// boundaries) dominates the per-request cost, and whose response is
	// a single row — otherwise, on a small host, response encoding and
	// client-side work outside the slot become the binding resource and
	// the admission queue under test never sees contention.
	if err := in.Eng.Exec("CREATE TABLE sbig (n int)"); err != nil {
		return nil, err
	}
	for lo := 0; lo < 60000; lo += 4000 {
		vals.Reset()
		for i := lo; i < lo+4000; i++ {
			if i > lo {
				vals.WriteString(", ")
			}
			if i%97 == 0 {
				vals.WriteString("(NULL)")
			} else {
				fmt.Fprintf(&vals, "(%d)", i%211)
			}
		}
		if err := in.Eng.Exec("INSERT INTO sbig VALUES " + vals.String()); err != nil {
			return nil, err
		}
	}

	srv := server.New(in, server.Config{
		Admission: resilience.AdmissionConfig{
			MaxConcurrent: capacity,
			QueueDepth:    2 * capacity,
			QueueTimeout:  250 * time.Millisecond,
		},
		DrainGrace: 5 * time.Second,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	base := "http://" + addr
	const sql = "SELECT n, sboost(sboost(n)) AS v FROM stbl ORDER BY n"

	const susSQL = "SELECT sum(sboost(sboost(n))) AS s FROM sbig"

	// Correctness oracles: the native answers, serialized once.
	oracle, _, _, status, err := serveQuery(base, sql, "native")
	if err != nil || status != http.StatusOK {
		return nil, fmt.Errorf("oracle: status=%d err=%v", status, err)
	}
	susOracle, _, _, status, err := serveQuery(base, susSQL, "native")
	if err != nil || status != http.StatusOK {
		return nil, fmt.Errorf("sustained oracle: status=%d err=%v", status, err)
	}

	// Tier-pinned sessions: the session's SessionView carries the tier,
	// so every query on it plans onto that tier.
	inlineSess, err := serveOpenSession(base, "inline", 0)
	if err != nil {
		return nil, err
	}
	closureSess, err := serveOpenSession(base, "closure", 0)
	if err != nil {
		return nil, err
	}
	// susSess runs the sustained arms: inline tier with parallelism 2,
	// so the executor hands morsels to workers over channels and the
	// handler goroutine yields while holding the admission slot. On a
	// single-core host a run-to-completion holder is never preempted,
	// so concurrent arrivals would only ever reach the admission gate
	// when the slot is free — queueing and shedding would be
	// structurally unobservable no matter the offered rate.
	susSess, err := serveOpenSession(base, "inline", 2)
	if err != nil {
		return nil, err
	}

	// ---- Arm 1: inlined vs closure, interleaved, warm plan cache ----
	// Reps alternate between the two sessions so host-level drift (GC
	// pauses, scheduler noise, turbo transitions) lands on both arms
	// equally instead of biasing whichever ran first. The server runs one
	// query at a time (capacity=1) and the client is sequential here, so
	// per-rep FFI-counter deltas attribute cleanly to the rep's tier.
	ffiCalls := obs.Default.Counter("ffi.udf.calls")
	type tierStats struct {
		e2es, execs []time.Duration
		ffi         float64
	}
	arms := []struct {
		sess, label string
	}{{inlineSess, "inlined"}, {closureSess, "closure"}}
	stats := map[string]*tierStats{"inlined": {}, "closure": {}}
	for _, a := range arms { // warm plan caches + JIT, discarded
		for i := 0; i < 3; i++ {
			if _, _, _, _, err := serveSessionQuery(base, a.sess, sql); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < tierReps; i++ {
		// Alternate which arm goes first and settle the heap at each
		// pair: a rep otherwise pays the GC debt of whatever allocated
		// before it (its sibling arm, or a previous experiment in a full
		// bench run), which biases whichever tier runs second.
		runtime.GC()
		pair := arms
		if i%2 == 1 {
			pair = []struct{ sess, label string }{arms[1], arms[0]}
		}
		for _, a := range pair {
			ffi0 := ffiCalls.Value()
			rows, e2e, sample, status, err := serveSessionQuery(base, a.sess, sql)
			if err != nil || status != http.StatusOK {
				return nil, fmt.Errorf("%s rep %d: status=%d err=%v", a.label, i, status, err)
			}
			if rows != oracle {
				return nil, fmt.Errorf("%s rep %d: rows diverge from oracle", a.label, i)
			}
			st := stats[a.label]
			st.e2es = append(st.e2es, e2e)
			st.execs = append(st.execs, sample.exec)
			st.ffi += float64(ffiCalls.Value() - ffi0)
		}
	}
	for _, a := range arms {
		st := stats[a.label]
		res.Rows = append(res.Rows, Row{
			Label: "tier/" + a.label,
			Order: []string{"p50_exec_ms", "p99_exec_ms", "p50_e2e_ms", "ffi_udf_calls"},
			Metrics: map[string]float64{
				"p50_exec_ms":   ms(medianDur(st.execs)),
				"p99_exec_ms":   ms(pctDur(st.execs, 0.99)),
				"p50_e2e_ms":    ms(medianDur(st.e2es)),
				"ffi_udf_calls": st.ffi,
			},
		})
	}
	if stats["inlined"].ffi != 0 {
		return nil, fmt.Errorf("inlined arm crossed the FFI %v times (want 0)", stats["inlined"].ffi)
	}
	inlineP50 := medianDur(stats["inlined"].execs)
	closureP50 := medianDur(stats["closure"].execs)
	if inlineP50 > 0 {
		res.Rows = append(res.Rows, Row{
			Label:   "tier/speedup",
			Order:   []string{"x"},
			Metrics: map[string]float64{"x": float64(closureP50) / float64(inlineP50)},
		})
	}

	// ---- Arms 2-4: sustained fixed-rate open loop on the inline session ----
	// These arms run the aggregate over sbig (see the table comment
	// above): a long, slot-dominated execution with a one-row response,
	// so overload manifests as admission queueing and shedding rather
	// than as an invisible backlog in encoding or the client.
	//
	// Capacity clock by closed-loop calibration: back-to-back sequential
	// queries measure the real admission-slot hold time — execution plus
	// response encoding — which the execution clock alone undercounts
	// once inlining makes exec itself sub-millisecond. A ceiling keeps
	// the offered rate sane on very fast hosts (the clamp is reported,
	// never silent).
	calDur := 3 * time.Second
	if r.Quick {
		calDur = time.Second
	}
	calStart := time.Now()
	calN := 0
	for time.Since(calStart) < calDur {
		if _, _, _, _, err := serveSessionQuery(base, susSess, susSQL); err != nil {
			return nil, err
		}
		calN++
	}
	capQPS := float64(calN) / time.Since(calStart).Seconds() * float64(capacity)
	if capQPS <= 0 {
		capQPS = 1
	}
	const maxCapQPS = 300.0
	clamped := false
	if capQPS > maxCapQPS {
		capQPS, clamped = maxCapQPS, true
	}

	for _, mult := range []float64{0.5, 1, 2} {
		rate := mult * capQPS
		interval := time.Duration(float64(time.Second) / rate)
		var (
			mu        sync.Mutex
			e2es      []time.Duration
			execs     []time.Duration
			sent      int
			admitted  int
			shed      int
			errCount  int
			incorrect int
		)
		var wg sync.WaitGroup
		ticker := time.NewTicker(interval)
		armStart := time.Now()
		for time.Since(armStart) < armDur {
			<-ticker.C
			sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				rows, e2e, sample, status, err := serveSessionQuery(base, susSess, susSQL)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err != nil:
					errCount++
				case status == http.StatusOK:
					admitted++
					e2es = append(e2es, e2e)
					execs = append(execs, sample.exec)
					if rows != susOracle {
						incorrect++
					}
				case status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests:
					shed++
				default:
					errCount++
				}
			}()
		}
		ticker.Stop()
		wg.Wait()
		elapsed := time.Since(armStart)

		mu.Lock()
		if admitted == 0 {
			mu.Unlock()
			return nil, fmt.Errorf("%.1fx arm admitted nothing (sent=%d shed=%d errors=%d)", mult, sent, shed, errCount)
		}
		row := Row{
			Label: fmt.Sprintf("sustained/%.1fx", mult),
			Order: []string{"offered_qps", "achieved_qps", "p50_e2e_ms", "p99_e2e_ms", "p50_exec_ms", "shed_rate", "admitted", "shed", "errors", "incorrect"},
			Metrics: map[string]float64{
				"offered_qps":  rate,
				"achieved_qps": float64(admitted) / elapsed.Seconds(),
				"p50_e2e_ms":   ms(medianDur(e2es)),
				"p99_e2e_ms":   ms(pctDur(e2es, 0.99)),
				"p50_exec_ms":  ms(medianDur(execs)),
				"shed_rate":    float64(shed) / float64(sent),
				"admitted":     float64(admitted),
				"shed":         float64(shed),
				"errors":       float64(errCount),
				"incorrect":    float64(incorrect),
			},
		}
		mu.Unlock()
		res.Rows = append(res.Rows, row)
	}

	st := srv.Admission().Snapshot()
	res.Rows = append(res.Rows, Row{
		Label: "admission/census",
		Order: []string{"admitted_total", "queued_total", "shed_total"},
		Metrics: map[string]float64{
			"admitted_total": float64(st.Admitted),
			"queued_total":   float64(st.Queued),
			"shed_total":     float64(st.ShedTotal),
		},
	})

	res.Notes = append(res.Notes,
		"acceptance: tier/inlined beats tier/closure on the Q1-shape straight-line UDF with ffi_udf_calls = 0 (inlined sites never cross the FFI); incorrect = 0 everywhere",
		fmt.Sprintf("open-loop arms run %s each at 0.5x/1x/2x of capacity (cap QPS = %.1f/s by closed-loop calibration over %s, concurrency %d%s); expected shape: shed_rate ~0 below capacity, > 0 at 2x, with admitted queries keeping their uncontended exec p50", armDur, capQPS, calDur, capacity, clampNote(clamped)),
		"p99_e2e_ms at 2x includes the bounded queue wait (queue_timeout=250ms); unbounded queues would grow it without limit — shedding is the mechanism that caps it")
	return res, nil
}

func clampNote(clamped bool) string {
	if clamped {
		return ", clamped to 300/s"
	}
	return ""
}

// sustainedClient keeps a deep keep-alive pool: the open-loop arms
// hold hundreds of requests in flight, and the default transport's
// two idle connections per host would serialize arrivals behind dial
// churn — the admission queue under test would never see the load.
var sustainedClient = &http.Client{
	Timeout: 30 * time.Second,
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
	},
}

// pctDur is the p-th percentile (0 < p ≤ 1) by the nearest-rank method
// on a copy, so callers' slices keep their insertion order.
func pctDur(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := make([]time.Duration, len(ds))
	copy(s, ds)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// serveOpenSession opens a tier-pinned server session and returns its
// id. parallelism 0 keeps the engine default.
func serveOpenSession(base, tier string, parallelism int) (string, error) {
	opts := map[string]any{"tier": tier}
	if parallelism > 0 {
		opts["parallelism"] = parallelism
	}
	body, err := json.Marshal(opts)
	if err != nil {
		return "", err
	}
	resp, err := sustainedClient.Post(base+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("open session tier=%s: status=%d body=%s", tier, resp.StatusCode, out)
	}
	var s struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(out, &s); err != nil {
		return "", err
	}
	return s.Session, nil
}

// serveSessionQuery is serveQuery through a session (the session's
// pinned tier drives plan-time tier selection).
func serveSessionQuery(base, session, sql string) (rows string, e2e time.Duration, sample serveSample, status int, err error) {
	body, err := json.Marshal(map[string]any{"sql": sql, "session": session})
	if err != nil {
		return "", 0, sample, 0, err
	}
	start := time.Now()
	resp, err := sustainedClient.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, sample, 0, err
	}
	e2e = time.Since(start)
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", e2e, sample, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", e2e, sample, resp.StatusCode, nil
	}
	var q struct {
		Rows      [][]any `json:"rows"`
		ElapsedNS int64   `json:"elapsed_ns"`
		Admission struct {
			WaitNS int64 `json:"wait_ns"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(out, &q); err != nil {
		return "", e2e, sample, resp.StatusCode, err
	}
	sample.exec = time.Duration(q.ElapsedNS)
	sample.wait = time.Duration(q.Admission.WaitNS)
	key, err := json.Marshal(q.Rows)
	if err != nil {
		return "", e2e, sample, resp.StatusCode, err
	}
	return string(key), e2e, sample, resp.StatusCode, nil
}
