package bench

import (
	"sort"
	"testing"

	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// TestWorkloadParallelismEquivalence is the workload-level property
// test: every paper query, run through the full QFusor pipeline
// (fusion + JIT + morsel executor), returns the same row set at
// parallelism 1 (legacy serial), 2 and 8.
func TestWorkloadParallelismEquivalence(t *testing.T) {
	size := workload.Small
	if testing.Short() {
		size = workload.Tiny
	}
	r := NewRunner(size, nil)

	// Group queries by the dataset they need so each (dataset, par)
	// pair launches one instance.
	byDataset := map[string][]string{}
	for id := range workload.AllQueries() {
		ds := workload.QueryDataset(id)
		byDataset[ds] = append(byDataset[ds], id)
	}
	for _, ids := range byDataset {
		sort.Strings(ids)
	}

	for ds, ids := range byDataset {
		ds, ids := ds, ids
		t.Run(ds, func(t *testing.T) {
			want := map[string]string{}
			wantRows := map[string]int{}
			for _, par := range []int{1, 2, 8} {
				in, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true, Parallelism: par}, ds)
				if err != nil {
					t.Fatal(err)
				}
				for _, id := range ids {
					res, err := in.QueryFused(workload.AllQueries()[id])
					if err != nil {
						in.Close()
						t.Fatalf("%s par=%d: %v", id, par, err)
					}
					fp := tableFingerprint(res)
					if par == 1 {
						want[id] = fp
						wantRows[id] = res.NumRows()
					} else if fp != want[id] {
						t.Fatalf("%s par=%d: result differs from serial (%d vs %d rows)",
							id, par, res.NumRows(), wantRows[id])
					}
				}
				in.Close()
			}
		})
	}
}
