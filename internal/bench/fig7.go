package bench

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// resourceSample is one point of a utilization trace.
type resourceSample struct {
	AtMs       float64
	HeapMB     float64
	Goroutines int
	GCCount    uint32
}

// monitorRun executes fn while sampling memory/goroutine counters,
// returning the trace (the CPU/disk counters of Fig. 7 map to GC +
// goroutine activity on this substrate).
func monitorRun(fn func() error) ([]resourceSample, time.Duration, error) {
	var samples []resourceSample
	stop := make(chan struct{})
	done := make(chan struct{})
	var failed atomic.Bool
	start := time.Now()
	go func() {
		defer close(done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				samples = append(samples, resourceSample{
					AtMs:       ms(time.Since(start)),
					HeapMB:     float64(m.HeapAlloc) / (1 << 20),
					Goroutines: runtime.NumGoroutine(),
					GCCount:    m.NumGC,
				})
			}
		}
	}()
	err := fn()
	if err != nil {
		failed.Store(true)
	}
	elapsed := time.Since(start)
	close(stop)
	<-done
	return samples, elapsed, err
}

// Fig7Resources is E13 — Fig. 7: resource utilization (heap, GC,
// goroutines over time) for QFusor, Tuplex, UDO and the PySpark profile
// running the Zillow pipeline.
func (r *Runner) Fig7Resources() (*Result, error) {
	res := &Result{ID: "E13", Title: "Fig. 7: resource utilization traces (Zillow Q11)"}
	listings := workload.GenZillow(r.Size)

	summarize := func(name string, samples []resourceSample, d time.Duration) {
		peak, sum := 0.0, 0.0
		maxG := 0
		for _, s := range samples {
			if s.HeapMB > peak {
				peak = s.HeapMB
			}
			sum += s.HeapMB
			if s.Goroutines > maxG {
				maxG = s.Goroutines
			}
		}
		avg := 0.0
		if len(samples) > 0 {
			avg = sum / float64(len(samples))
		}
		res.Rows = append(res.Rows, Row{Label: name,
			Metrics: map[string]float64{
				"time_ms":     ms(d),
				"peak_heapMB": peak,
				"avg_heapMB":  avg,
				"max_gorout":  float64(maxG),
				"samples":     float64(len(samples)),
			},
			Order: []string{"time_ms", "peak_heapMB", "avg_heapMB", "max_gorout", "samples"}})
	}

	// QFusor.
	{
		in := engines.Launch(engines.Config{Profile: engines.Monet, JIT: true, Parallelism: 4})
		if err := workload.InstallZillow(in); err != nil {
			return nil, err
		}
		in.Put(listings)
		samples, d, err := monitorRun(func() error {
			_, err := in.QueryFused(workload.Q11)
			return err
		})
		in.Close()
		if err != nil {
			return nil, err
		}
		summarize("qfusor", samples, d)
	}
	// Tuplex.
	{
		samples, d, err := monitorRun(func() error {
			_, _, err := tuplexZillowQ11(4, listings, true)
			return err
		})
		if err != nil {
			return nil, err
		}
		summarize("tuplex", samples, d)
	}
	// UDO (non-fused = memory aggressive).
	{
		samples, d, err := monitorRun(func() error {
			_, _, err := udoZillowQ11(listings, false, 1)
			return err
		})
		if err != nil {
			return nil, err
		}
		summarize("udo", samples, d)
	}
	// PySpark profile.
	{
		in := engines.Launch(engines.Config{Profile: engines.Spark, JIT: false, Parallelism: 4})
		if err := workload.InstallZillow(in); err != nil {
			return nil, err
		}
		in.Put(listings)
		samples, d, err := monitorRun(func() error {
			_, err := in.Query(workload.Q11)
			return err
		})
		in.Close()
		if err != nil {
			return nil, err
		}
		summarize("pyspark", samples, d)
	}
	res.Notes = append(res.Notes,
		"paper shape: qfusor finishes first with moderate memory; udo non-fused peaks highest; pyspark slowest with high activity",
		fmt.Sprintf("traces sampled every 5ms at size=%s", r.Size))
	return res, nil
}
