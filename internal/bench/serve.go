package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"qfusor/internal/engines"
	"qfusor/internal/resilience"
	"qfusor/internal/server"
)

// ServeOverload is E21: the serving-plane overload experiment. A query
// server with a fixed admission capacity takes a sustained burst at 4x
// that capacity over real HTTP. Without admission control the engine
// would timeshare every query and per-query latency would collapse by
// the oversubscription factor; with it, excess load is queued briefly
// or shed with typed 429/503 responses and the queries that ARE
// admitted run at uncontended speed. Reported per arm: client-observed
// p50 (includes queue wait), execution p50 (server-side, post-
// admission — the collapse indicator), queue-wait p50, and the
// admitted/shed split. Every 200 is checked against a precomputed
// oracle; incorrect counts results that diverge (must be zero).
func (r *Runner) ServeOverload() (*Result, error) {
	res := &Result{ID: "E21", Title: "Serving plane: admission control under 4x-capacity overload"}
	// capacity = 1 makes the arms directly comparable on any host: an
	// admitted query executes alone, so any exec-latency inflation under
	// load is admission-control failure, not physical core sharing.
	const capacity = 1
	uncontendedReps := 15
	perClient := 12
	if r.Quick {
		uncontendedReps = 7
		perClient = 6
	}

	in := r.launch(engines.Config{Profile: engines.Monet, JIT: true})
	defer in.Close()
	if err := in.Define(`
@scalarudf
def ework(n: int) -> int:
    acc = n
    i = 0
    while i < 40:
        acc = (acc * 31 + i) % 1000003
        i = i + 1
    return acc
`); err != nil {
		return nil, err
	}
	if err := in.Eng.Exec("CREATE TABLE etbl (n int)"); err != nil {
		return nil, err
	}
	var vals bytes.Buffer
	for i := 0; i < 1500; i++ {
		if i > 0 {
			vals.WriteString(", ")
		}
		fmt.Fprintf(&vals, "(%d)", i)
	}
	if err := in.Eng.Exec("INSERT INTO etbl VALUES " + vals.String()); err != nil {
		return nil, err
	}

	srv := server.New(in, server.Config{
		Admission: resilience.AdmissionConfig{
			MaxConcurrent: capacity,
			QueueDepth:    2 * capacity,
			QueueTimeout:  500 * time.Millisecond,
		},
		DrainGrace: 5 * time.Second,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	base := "http://" + addr
	const sql = "SELECT ework(ework(n)) AS v FROM etbl ORDER BY n"

	// Correctness oracle: the native answer, serialized once.
	oracle, _, _, status, err := serveQuery(base, sql, "native")
	if err != nil || status != http.StatusOK {
		return nil, fmt.Errorf("oracle: status=%d err=%v", status, err)
	}

	// Arm 1: uncontended. One client, fused path, warm plan cache.
	if _, _, _, _, err := serveQuery(base, sql, ""); err != nil {
		return nil, err
	}
	var soloE2E, soloExec []time.Duration
	for i := 0; i < uncontendedReps; i++ {
		rows, e2e, sample, status, err := serveQuery(base, sql, "")
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("uncontended rep %d: status=%d err=%v", i, status, err)
		}
		if rows != oracle {
			return nil, fmt.Errorf("uncontended rep %d: rows diverge from oracle", i)
		}
		soloE2E = append(soloE2E, e2e)
		soloExec = append(soloExec, sample.exec)
	}
	soloP50 := medianDur(soloExec)
	res.Rows = append(res.Rows, Row{
		Label: "uncontended/1-client",
		Order: []string{"p50_e2e_ms", "p50_exec_ms"},
		Metrics: map[string]float64{
			"p50_e2e_ms":  ms(medianDur(soloE2E)),
			"p50_exec_ms": ms(soloP50),
		},
	})

	// Arm 2: sustained 4x overload — 4*capacity concurrent clients.
	clients := 4 * capacity
	var (
		mu        sync.Mutex
		e2es      []time.Duration
		execs     []time.Duration
		waits     []time.Duration
		admitted  int
		shed      int
		errors    int
		incorrect int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				rows, e2e, sample, status, err := serveQuery(base, sql, "")
				mu.Lock()
				switch {
				case err != nil:
					errors++
				case status == http.StatusOK:
					admitted++
					e2es = append(e2es, e2e)
					execs = append(execs, sample.exec)
					waits = append(waits, sample.wait)
					if rows != oracle {
						incorrect++
					}
				case status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests:
					shed++
				default:
					errors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if admitted == 0 {
		return nil, fmt.Errorf("overload arm admitted nothing (shed=%d errors=%d)", shed, errors)
	}
	loadedP50 := medianDur(execs)
	row := Row{
		Label: fmt.Sprintf("overload/%d-clients", clients),
		Order: []string{"p50_e2e_ms", "p50_exec_ms", "p50_wait_ms", "slowdown_x", "admitted", "shed", "errors", "incorrect"},
		Metrics: map[string]float64{
			"p50_e2e_ms":  ms(medianDur(e2es)),
			"p50_exec_ms": ms(loadedP50),
			"p50_wait_ms": ms(medianDur(waits)),
			"admitted":    float64(admitted),
			"shed":        float64(shed),
			"errors":      float64(errors),
			"incorrect":   float64(incorrect),
		},
	}
	if soloP50 > 0 {
		row.Metrics["slowdown_x"] = float64(loadedP50) / float64(soloP50)
	}
	res.Rows = append(res.Rows, row)

	st := srv.Admission().Snapshot()
	res.Rows = append(res.Rows, Row{
		Label: "admission/census",
		Order: []string{"admitted_total", "queued_total", "shed_total"},
		Metrics: map[string]float64{
			"admitted_total": float64(st.Admitted),
			"queued_total":   float64(st.Queued),
			"shed_total":     float64(st.ShedTotal),
		},
	})

	res.Notes = append(res.Notes,
		fmt.Sprintf("acceptance: slowdown_x ≤ 2 (admitted queries' execution p50 under 4x load vs uncontended; capacity=%d, %d clients), incorrect = 0, shed > 0", capacity, clients),
		"p50_e2e_ms includes queue wait (bounded by queue_timeout=500ms); p50_exec_ms is the server-side execution clock after admission — the metric that collapses without a concurrency cap",
		"excess load is absorbed as typed 429/503 rejections (shed), not as timesharing-induced latency on admitted queries")
	return res, nil
}

// serveQuery posts one query to the server and returns the serialized
// rows, client-observed latency, server-reported timings and status.
type serveSample struct {
	exec time.Duration // server-side execution (post-admission)
	wait time.Duration // admission queue wait
}

func serveQuery(base, sql, mode string) (rows string, e2e time.Duration, sample serveSample, status int, err error) {
	body, err := json.Marshal(map[string]any{"sql": sql, "mode": mode})
	if err != nil {
		return "", 0, sample, 0, err
	}
	start := time.Now()
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, sample, 0, err
	}
	e2e = time.Since(start)
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", e2e, sample, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", e2e, sample, resp.StatusCode, nil
	}
	var q struct {
		Rows      [][]any `json:"rows"`
		ElapsedNS int64   `json:"elapsed_ns"`
		Admission struct {
			WaitNS int64 `json:"wait_ns"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(out, &q); err != nil {
		return "", e2e, sample, resp.StatusCode, err
	}
	sample.exec = time.Duration(q.ElapsedNS)
	sample.wait = time.Duration(q.Admission.WaitNS)
	key, err := json.Marshal(q.Rows)
	if err != nil {
		return "", e2e, sample, resp.StatusCode, err
	}
	return string(key), e2e, sample, resp.StatusCode, nil
}
