package bench

import (
	"fmt"
	"os"

	"qfusor/internal/baselines/tuplex"
	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// Fig6fDiskMem is E11 — Fig. 6f: the Zillow pipeline with data on disk
// vs in memory, cold vs hot caches, for QFusor, Tuplex, UDO and the
// PySpark profile. Disk mode pays a real encode/decode round trip
// through a temp file; cold runs include the load.
func (r *Runner) Fig6fDiskMem() (*Result, error) {
	res := &Result{ID: "E11", Title: "Fig. 6f: disk vs memory, cold vs hot (Zillow Q11)"}
	listings := workload.GenZillow(r.Size)
	dir, err := os.MkdirTemp("", "qfusor-disk")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path, err := engines.SaveTableFile(dir, listings)
	if err != nil {
		return nil, err
	}
	csvPath := dir + "/listings.csv"
	if err := os.WriteFile(csvPath, []byte(tuplex.ToCSV(listings)), 0o644); err != nil {
		return nil, err
	}

	// QFusor and PySpark profiles.
	for _, sys := range []struct {
		name string
		cfg  engines.Config
		mode runMode
	}{
		{"qfusor", engines.Config{Profile: engines.Monet, JIT: true}, runFused},
		{"pyspark", engines.Config{Profile: engines.Spark, JIT: false, Parallelism: 4}, runNative},
	} {
		// disk-cold: decode from file + run.
		in := r.launch(sys.cfg)
		if err := workload.InstallZillow(in); err != nil {
			return nil, err
		}
		d, err := timeIt(func() error {
			t, err := engines.LoadTableFile(path)
			if err != nil {
				return err
			}
			in.Put(t)
			_, _, err = runSQLNoTime(in, workload.Q11, sys.mode)
			return err
		})
		if err != nil {
			in.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: sys.name + "/disk-cold",
			Metrics: map[string]float64{"time_ms": ms(d)}, Order: []string{"time_ms"}})
		// memory-hot: table resident, wrappers warm.
		dh, _, err := r.runSQL(in, workload.Q11, sys.mode)
		in.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: sys.name + "/mem-hot",
			Metrics: map[string]float64{"time_ms": ms(dh)}, Order: []string{"time_ms"}})
	}

	// Tuplex reads CSV from disk (cold) or reuses in-memory rows (hot).
	csvBytes, err := os.ReadFile(csvPath)
	if err != nil {
		return nil, err
	}
	dcold, err := timeIt(func() error {
		ctx, err := newTuplex(2)
		if err != nil {
			return err
		}
		ds, err := ctx.CSV(string(csvBytes), kindsOf(listings))
		if err != nil {
			return err
		}
		_, _, err = ds.Map("z_extract").Filter("z_filter").
			Aggregate([]int{0, 1}, tuplex.AggSpec{Kind: "count"}).Collect()
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{Label: "tuplex/disk-cold",
		Metrics: map[string]float64{"time_ms": ms(dcold)}, Order: []string{"time_ms"}})
	_, hotStats, err := tuplexZillowQ11(2, listings, false)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{Label: "tuplex/mem-hot",
		Metrics: map[string]float64{"time_ms": ms(hotStats.CompileTime + hotStats.ExecTime)},
		Order:   []string{"time_ms"}})

	// UDO (manually fused variant, per the paper's medium/large runs).
	dudo, err := timeIt(func() error {
		t, err := engines.LoadTableFile(path)
		if err != nil {
			return err
		}
		_, _, err = udoZillowQ11(t, true, 1)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{Label: "udo-fused/disk-cold",
		Metrics: map[string]float64{"time_ms": ms(dudo)}, Order: []string{"time_ms"}})
	_, udoStats, err := udoZillowQ11(listings, true, 1)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{Label: "udo-fused/mem-hot",
		Metrics: map[string]float64{"time_ms": ms(udoStats.ExecTime)}, Order: []string{"time_ms"}})

	res.Notes = append(res.Notes,
		"paper shape: qfusor fastest in every storage/caching mode; tuplex's CSV read dominates its disk-cold time")
	return res, nil
}

// runSQLNoTime is runSQL without its own timer (caller times).
func runSQLNoTime(in *engines.Instance, sql string, mode runMode) (float64, int, error) {
	if mode == runFused {
		res, err := in.QueryFused(sql)
		if err != nil {
			return 0, 0, err
		}
		return 0, res.NumRows(), nil
	}
	res, err := in.Query(sql)
	if err != nil {
		return 0, 0, err
	}
	return 0, res.NumRows(), nil
}

// Fig6gParallel is E12 — Fig. 6g: thread scaling on the Zillow pipeline
// for QFusor, Tuplex and UDO.
func (r *Runner) Fig6gParallel() (*Result, error) {
	res := &Result{ID: "E12", Title: "Fig. 6g: parallelism scaling (Zillow Q11)"}
	listings := workload.GenZillow(r.Size)
	threads := []int{1, 2, 4, 8, 12}
	if r.Quick {
		threads = []int{1, 4}
	}
	for _, par := range threads {
		in := engines.Launch(engines.Config{Profile: engines.Monet, JIT: true, Parallelism: par})
		if err := workload.InstallZillow(in); err != nil {
			return nil, err
		}
		in.Put(listings)
		// Warm (compile fused wrappers), then measure.
		if _, _, err := r.runSQL(in, workload.Q11, runFused); err != nil {
			in.Close()
			return nil, err
		}
		d, _, err := r.runSQL(in, workload.Q11, runFused)
		in.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("qfusor/threads=%d", par),
			Metrics: map[string]float64{"time_ms": ms(d)}, Order: []string{"time_ms"}})

		_, st, err := tuplexZillowQ11(par, listings, false)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("tuplex/threads=%d", par),
			Metrics: map[string]float64{"time_ms": ms(st.ReadTime + st.CompileTime + st.ExecTime)},
			Order:   []string{"time_ms"}})

		_, ust, err := udoZillowQ11(listings, false, par)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("udo/threads=%d", par),
			Metrics: map[string]float64{"time_ms": ms(ust.ExecTime)}, Order: []string{"time_ms"}})
	}
	res.Notes = append(res.Notes,
		"paper shape: qfusor improves with threads (~45% at 12); tuplex plateaus (partitioning overhead); udo gains little")
	return res, nil
}
