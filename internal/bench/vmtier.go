package bench

import (
	"fmt"
	"time"

	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// VMTierBench is E20: the vectorized VM tier experiment. Part one runs
// each UDFBench query (Q1–Q3) on two otherwise-identical instances —
// fused sections pinned to the closure tier vs pinned to the VM tier —
// and reports both end-to-end latency and the section-boundary time
// (the per-query ledger's FFI wall clock, which is exactly the fused
// wrapper execution the tier decision governs). The acceptance bar is
// section_speedup ≥ 2 on VM-eligible sections: the VM executes traced
// sections over unboxed column slices with one register file per
// morsel, so the per-row CrossIn boxing and closure call frames of the
// baseline tier must dominate. Part two sweeps the morsel size on the
// VM tier, since morsel granularity bounds both the register-file
// reuse and the bailout blast radius.
//
// Tier state lives on the shared wrapper UDFs, so the two arms use
// separate instances rather than flipping Opts.Tier on one (a
// plan-cache hit replays the cached plan without re-running tier
// selection — by design; see applyTier).
func (r *Runner) VMTierBench() (*Result, error) {
	res := &Result{ID: "E20", Title: "Vectorized VM tier: closure vs VM dispatch (UDFBench Q1–Q3) + morsel sweep"}
	reps := 11
	if r.Quick {
		reps = 5
	}

	closure, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true, Tier: "closure"}, "udfbench")
	if err != nil {
		return nil, err
	}
	defer closure.Close()
	vm, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true, Tier: "vm"}, "udfbench")
	if err != nil {
		return nil, err
	}
	defer vm.Close()

	queries := []struct {
		name string
		sql  string
	}{{"Q1", workload.Q1}, {"Q2", workload.Q2}, {"Q3", workload.Q3}}

	// One sample: end-to-end latency plus the fused-section boundary
	// time from the per-query resource ledger.
	sample := func(in *engines.Instance, sql string) (total, section time.Duration, vmRows, bailRows int64, err error) {
		start := time.Now()
		a, err := in.QueryAnalyze(sql)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		total = time.Since(start)
		if a.Resources != nil {
			section = time.Duration(a.Resources.FFIWallNanos)
			vmRows = a.Resources.VMRows
			bailRows = a.Resources.VMBailRows
		}
		return total, section, vmRows, bailRows, nil
	}

	// measurePair runs one query on both arms, interleaving repetitions
	// so slow drift (GC, background load, frequency scaling) cancels
	// out of the median, and returns the comparison row. The warm-up
	// covers plan-cache priming, trace recording and (on the VM arm)
	// bytecode lowering, so the measured repetitions compare steady
	// states.
	measurePair := func(label, sql string) (Row, error) {
		if _, _, _, _, err := sample(closure, sql); err != nil {
			return Row{}, fmt.Errorf("%s closure warm-up: %w", label, err)
		}
		if _, _, _, _, err := sample(vm, sql); err != nil {
			return Row{}, fmt.Errorf("%s vm warm-up: %w", label, err)
		}
		cTot := make([]time.Duration, 0, reps)
		cSec := make([]time.Duration, 0, reps)
		vTot := make([]time.Duration, 0, reps)
		vSec := make([]time.Duration, 0, reps)
		var vmRows, bailRows int64
		for i := 0; i < reps; i++ {
			t, s, _, _, err := sample(closure, sql)
			if err != nil {
				return Row{}, fmt.Errorf("%s closure: %w", label, err)
			}
			cTot, cSec = append(cTot, t), append(cSec, s)
			t, s, vr, br, err := sample(vm, sql)
			if err != nil {
				return Row{}, fmt.Errorf("%s vm: %w", label, err)
			}
			vTot, vSec = append(vTot, t), append(vSec, s)
			vmRows, bailRows = vr, br
		}
		// Totals take the median (they absorb planning and execution
		// noise); section times take the best observation — scheduler and
		// GC interference is strictly additive, so min is the faithful
		// estimate of the dispatch cost the tier decision governs.
		row := Row{
			Label: label,
			Order: []string{"closure_ms", "vm_ms", "closure_section_ms", "vm_section_ms", "section_speedup", "vm_rows", "bail_rows"},
			Metrics: map[string]float64{
				"closure_ms":         ms(medianDur(cTot)),
				"vm_ms":              ms(medianDur(vTot)),
				"closure_section_ms": ms(minDur(cSec)),
				"vm_section_ms":      ms(minDur(vSec)),
				"vm_rows":            float64(vmRows),
				"bail_rows":          float64(bailRows),
			},
		}
		if vs := minDur(vSec); vs > 0 {
			row.Metrics["section_speedup"] = float64(minDur(cSec)) / float64(vs)
		}
		if vmRows == 0 {
			row.Note = "no VM-eligible sections (stayed on closure tier)"
		}
		return row, nil
	}

	for _, q := range queries {
		row, err := measurePair(fmt.Sprintf("tier/%s", q.name), q.sql)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	// Dispatch-bound sections: the UDFBench queries' bodies are
	// json.loads-heavy, and both tiers pay that body compute identically
	// — Amdahl caps the whole-section ratio regardless of how fast
	// dispatch gets. These rows isolate the cost the tier decision
	// actually governs (boundary boxing + call frames) on light-bodied
	// UDF pairs drawn from Q1's select list.
	dispatchBound := []struct{ name, sql string }{
		{"lower+cleandate", "SELECT lower(title) AS t, cleandate(pubdate) AS d FROM pubs"},
		{"lower+lower", "SELECT lower(title) AS t, lower(authors) AS a FROM pubs"},
	}
	for _, q := range dispatchBound {
		row, err := measurePair(fmt.Sprintf("section/%s", q.name), q.sql)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	// Morsel-size sweep on the VM tier (Q3, the section-heavy
	// running example). Each size gets its own instance — morsel size is
	// an engine-level setting.
	sizes := []int{256, 1024, 2048, 8192}
	for _, msz := range sizes {
		in, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true, Tier: "vm", MorselSize: msz}, "udfbench")
		if err != nil {
			return nil, err
		}
		if _, _, _, _, err := sample(in, workload.Q3); err != nil {
			in.Close()
			return nil, fmt.Errorf("morsel=%d warm-up: %w", msz, err)
		}
		tots := make([]time.Duration, 0, reps)
		secs := make([]time.Duration, 0, reps)
		for i := 0; i < reps; i++ {
			t, s, _, _, err := sample(in, workload.Q3)
			if err != nil {
				in.Close()
				return nil, fmt.Errorf("morsel=%d: %w", msz, err)
			}
			tots, secs = append(tots, t), append(secs, s)
		}
		in.Close()
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("morsel/%d", msz),
			Order: []string{"vm_ms", "vm_section_ms"},
			Metrics: map[string]float64{
				"vm_ms":         ms(medianDur(tots)),
				"vm_section_ms": ms(minDur(secs)),
			},
			Note: "Q3, VM tier",
		})
	}

	res.Notes = append(res.Notes,
		"acceptance: section_speedup ≥ 2 on the dispatch-bound pair section/lower+lower (closure_section_ms / vm_section_ms; section time = per-query ledger FFI wall clock)",
		"every section pays its UDF body compute on both tiers (Amdahl): lower+cleandate keeps cleandate's split/replace chains (~1.8x), and the json.loads-heavy tier/Q1–Q3 rows report real but smaller gains",
		"vm_rows > 0 and bail_rows = 0 show the VM tier engaged and stayed on the fast path; bailing rows re-run on the closure tier (Q3's expanding section keeps its closure form by design)",
		"morsel sweep pins the VM tier; the default 2048 balances register-file reuse against cache residency")
	return res, nil
}
