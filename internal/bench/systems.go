package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"qfusor/internal/baselines/pandas"
	"qfusor/internal/baselines/tuplex"
	"qfusor/internal/baselines/udo"
	"qfusor/internal/baselines/weld"
	"qfusor/internal/data"
	"qfusor/internal/pylite"
	"qfusor/internal/workload"
)

// ---------------------------------------------------------------------
// Tuplex adapters: the workload queries expressed as LINQ pipelines
// with row-level UDFs (Tuplex's programming model).
// ---------------------------------------------------------------------

// tuplexSrc defines the row-level UDFs; the column-level bodies are the
// same ones the SQL UDF library uses.
var tuplexSrc = workload.ZillowLib + workload.UDFBenchLib + `
def z_extract(r):
    return [cleancity(r[3]), extracttype(r[1]), extractprice(r[5]),
            extractsqft(r[6]), extractbd(r[6]), extractoffer(r[7])]

def z_filter(r):
    return r[4] is not None and r[4] >= 2 and r[5] == "sale"

def z_urls(r):
    return [hostname(r[0]), urldepth(r[0]), extracturlid(r[0])]

def z_q13map(r):
    return [extractbd(r[6]), extractprice(r[5]), extractoffer(r[7])]

def z_q13filter(r):
    return r[2] == "sale"

def z_q14map(r):
    return [cleancity(r[3]), extractbd(r[6]), extractprice(r[5]), extractoffer(r[7])]

def z_q14filter(r):
    return r[3] != "unknown"

def b_q1map(r):
    return [cleandate(r[1]), lower(r[4]), extractfunder(r[3])]

def b_q2map(r):
    return [extractfunder(r[3]), cleandate(r[1]), r[6]]

def b_q2filter(r):
    return r[1] is not None and r[1] >= "2012-01-01" and r[0] is not None
`

// newTuplex builds a context with the adapter UDFs.
func newTuplex(par int) (*tuplex.Context, error) {
	return tuplex.NewContext(tuplexSrc, par)
}

// tuplexZillowQ11 runs the Zillow pipeline (Q11) on Tuplex.
func tuplexZillowQ11(par int, t *data.Table, fromCSV bool) (int, tuplex.Stats, error) {
	ctx, err := newTuplex(par)
	if err != nil {
		return 0, tuplex.Stats{}, err
	}
	var ds *tuplex.Dataset
	if fromCSV {
		csv := tuplex.ToCSV(t)
		ds, err = ctx.CSV(csv, kindsOf(t))
		if err != nil {
			return 0, tuplex.Stats{}, err
		}
	} else {
		ds = ctx.FromTable(t)
	}
	rows, stats, err := ds.
		Map("z_extract").
		Filter("z_filter").
		Aggregate([]int{0, 1},
			tuplex.AggSpec{Kind: "count"},
			tuplex.AggSpec{Kind: "sum", Col: 2},
			tuplex.AggSpec{Kind: "sum", Col: 3}).
		Collect()
	return len(rows), stats, err
}

// tuplexZillow runs Q12/Q13/Q14 by id.
func tuplexZillow(id string, par int, t *data.Table) (int, tuplex.Stats, error) {
	ctx, err := newTuplex(par)
	if err != nil {
		return 0, tuplex.Stats{}, err
	}
	ds := ctx.FromTable(t)
	switch id {
	case "Q12":
		ds = ds.Map("z_urls")
	case "Q13":
		ds = ds.Map("z_q13map").Filter("z_q13filter").Select(0, 1)
	case "Q14":
		ds = ds.Map("z_q14map").Filter("z_q14filter").
			Aggregate([]int{0}, tuplex.AggSpec{Kind: "count"}, tuplex.AggSpec{Kind: "sum", Col: 2})
	default:
		return 0, tuplex.Stats{}, fmt.Errorf("bench: tuplex does not support %s", id)
	}
	rows, stats, err := ds.Collect()
	return len(rows), stats, err
}

// tuplexUDFBench runs Q1/Q2 on Tuplex over the pubs table.
func tuplexUDFBench(id string, par int, pubs *data.Table) (int, tuplex.Stats, error) {
	ctx, err := newTuplex(par)
	if err != nil {
		return 0, tuplex.Stats{}, err
	}
	ds := ctx.FromTable(pubs)
	switch id {
	case "Q1":
		ds = ds.Map("b_q1map")
	case "Q2":
		ds = ds.Map("b_q2map").Filter("b_q2filter").
			Aggregate([]int{0}, tuplex.AggSpec{Kind: "count"}, tuplex.AggSpec{Kind: "sum", Col: 2})
	default:
		return 0, tuplex.Stats{}, fmt.Errorf("bench: tuplex does not support %s", id)
	}
	rows, stats, err := ds.Collect()
	return len(rows), stats, err
}

func kindsOf(t *data.Table) []data.Kind {
	out := make([]data.Kind, len(t.Schema))
	for i, f := range t.Schema {
		out[i] = f.Kind
	}
	return out
}

// ---------------------------------------------------------------------
// Pandas adapters
// ---------------------------------------------------------------------

// pandasRuntime builds the interpreter pandas uses for df.apply.
func pandasRuntime() (*pylite.Interp, error) {
	rt := pylite.NewInterp() // no JIT: CPython-style apply
	if err := rt.Exec(workload.ZillowLib + workload.UDFBenchLib); err != nil {
		return nil, err
	}
	return rt, nil
}

// pandasQuery runs Q1/Q2/Q11/Q12 on the pandas baseline.
func pandasQuery(id string, pubs, listings *data.Table) (int, error) {
	rt, err := pandasRuntime()
	if err != nil {
		return 0, err
	}
	switch id {
	case "Q1":
		df := pandas.FromTable(pubs)
		if df, err = df.Apply(rt, "day", "pubdate", "cleandate"); err != nil {
			return 0, err
		}
		if df, err = df.Apply(rt, "t", "title", "lower"); err != nil {
			return 0, err
		}
		if df, err = df.Apply(rt, "f", "project", "extractfunder"); err != nil {
			return 0, err
		}
		return df.N, nil
	case "Q2":
		df := pandas.FromTable(pubs)
		if df, err = df.Apply(rt, "funder", "project", "extractfunder"); err != nil {
			return 0, err
		}
		if df, err = df.Apply(rt, "day", "pubdate", "cleandate"); err != nil {
			return 0, err
		}
		mask, err := df.MaskCmp("day", ">=", data.Str("2012-01-01"))
		if err != nil {
			return 0, err
		}
		df = df.FilterMask(mask)
		mask, err = df.MaskCmp("funder", "!=", data.Str(""))
		if err != nil {
			return 0, err
		}
		df = df.FilterMask(mask)
		out, err := df.GroupAgg([]string{"funder"}, []string{"funder", "citations"}, []string{"count", "sum"})
		if err != nil {
			return 0, err
		}
		return out.N, nil
	case "Q11":
		df := pandas.FromTable(listings)
		steps := [][3]string{
			{"c", "city", "cleancity"}, {"t", "title", "extracttype"},
			{"p", "price", "extractprice"}, {"sq", "facts", "extractsqft"},
			{"bd", "facts", "extractbd"}, {"o", "offer", "extractoffer"},
		}
		for _, st := range steps {
			if df, err = df.Apply(rt, st[0], st[1], st[2]); err != nil {
				return 0, err
			}
		}
		mask, err := df.MaskCmp("bd", ">=", data.Int(2))
		if err != nil {
			return 0, err
		}
		df = df.FilterMask(mask)
		mask, err = df.MaskCmp("o", "==", data.Str("sale"))
		if err != nil {
			return 0, err
		}
		df = df.FilterMask(mask)
		out, err := df.GroupAgg([]string{"c", "t"}, []string{"c", "p", "sq"}, []string{"count", "sum", "sum"})
		if err != nil {
			return 0, err
		}
		return out.N, nil
	case "Q12":
		df := pandas.FromTable(listings)
		if df, err = df.Apply(rt, "h", "url", "hostname"); err != nil {
			return 0, err
		}
		if df, err = df.Apply(rt, "d", "url", "urldepth"); err != nil {
			return 0, err
		}
		if df, err = df.Apply(rt, "zpid", "url", "extracturlid"); err != nil {
			return 0, err
		}
		return df.N, nil
	}
	return 0, fmt.Errorf("bench: pandas does not support %s", id)
}

// ---------------------------------------------------------------------
// UDO adapters (compiled Go operators, no fusion unless Fused)
// ---------------------------------------------------------------------

// udoRuntime builds the compiled-UDF runtime UDO's operators use: the
// operators are "compiled into the engine" (pylite.Compile ahead of
// time), putting UDO on the same execution tier as QFusor's JIT — the
// paper's positioning — while still lacking fusion and vectorized
// transports.
func udoRuntime() (*pylite.Interp, error) {
	rt := pylite.NewInterp()
	rt.HotThreshold = 1 // compile on first call (ahead-of-time in spirit)
	if err := rt.Exec(workload.ZillowLib + workload.UDOLib + `
def udo_extract(city, title, price, facts, offer):
    return [cleancity(city), extracttype(title), extractprice(price),
            extractsqft(facts), extractbd(facts), extractoffer(offer)]

def udo_keep(bd, offer):
    return bd is not None and bd >= 2 and offer == "sale"
`); err != nil {
		return nil, err
	}
	return rt, nil
}

// udoZillowQ11 runs the Zillow pipeline as a UDO operator chain.
func udoZillowQ11(t *data.Table, fused bool, par int) (int, udo.Stats, error) {
	rt, err := udoRuntime()
	if err != nil {
		return 0, udo.Stats{}, err
	}
	extractFn, _ := rt.Global("udo_extract")
	keepFn, _ := rt.Global("udo_keep")
	extract := udo.MapOp("z_extract", func(r []data.Value) []data.Value {
		out, err := rt.Call(extractFn, []data.Value{r[3], r[1], r[5], r[6], r[7]})
		if err != nil || out.List() == nil {
			return []data.Value{data.Null, data.Null, data.Null, data.Null, data.Null, data.Null}
		}
		return out.List().Items
	})
	filter := udo.FilterOp("z_filter", func(r []data.Value) bool {
		v, err := rt.Call(keepFn, []data.Value{r[4], r[5]})
		return err == nil && v.Truthy()
	})
	p := &udo.Pipeline{Ops: []udo.Operator{extract, filter}, Fused: fused, Parallelism: par}
	rows, stats, err := p.Run(t)
	if err != nil {
		return 0, stats, err
	}
	// Terminal aggregation (engine-side in UDO's model).
	groups := map[string]int{}
	for _, r := range rows {
		groups[r[0].String()+"|"+r[1].String()]++
	}
	return len(groups), stats, nil
}

// udoRun runs Q17/Q18 as UDO pipelines over compiled operators.
func udoRun(id string, arrays, docs *data.Table, par int) (int, udo.Stats, error) {
	rt, err := udoRuntime()
	if err != nil {
		return 0, udo.Stats{}, err
	}
	switch id {
	case "Q17":
		fn, _ := rt.Global("splitarray")
		split := udo.ExpandOp("splitarray", func(r []data.Value, emit func([]data.Value)) {
			gv, err := rt.Call(fn, []data.Value{r[1]})
			if err != nil {
				return
			}
			_ = pylite.Iterate(gv, func(v data.Value) error {
				emit([]data.Value{r[0], v})
				return nil
			})
		})
		p := &udo.Pipeline{Ops: []udo.Operator{split}, Parallelism: par}
		rows, stats, err := p.Run(arrays)
		return len(rows), stats, err
	case "Q18":
		fn, _ := rt.Global("containsdb")
		filter := udo.FilterOp("containsdb", func(r []data.Value) bool {
			v, err := rt.Call(fn, []data.Value{r[1]})
			return err == nil && v.Truthy()
		})
		p := &udo.Pipeline{Ops: []udo.Operator{filter}, Parallelism: par}
		rows, stats, err := p.Run(docs)
		return len(rows), stats, err
	}
	return 0, udo.Stats{}, fmt.Errorf("bench: udo does not support %s", id)
}

// ---------------------------------------------------------------------
// Weld adapters
// ---------------------------------------------------------------------

// weldStats carries the Weld phase breakdown.
type weldStats struct {
	Preprocess time.Duration
	Load       time.Duration
	Execute    time.Duration
}

// weldRun executes Q15/Q16 in the Weld runtime.
func weldRun(id string, pop, dirty *data.Table) (int, weldStats, error) {
	var st weldStats
	switch id {
	case "Q15": // get_population_stats
		csv := tuplex.ToCSV(pop)
		frame, d, err := weld.Preprocess(csv,
			[]string{"city", "state", "population", "area", "growth"},
			[]bool{true, true, false, false, false})
		if err != nil {
			return 0, st, err
		}
		st.Preprocess = d
		rt, ld := weld.Load(frame)
		st.Load = ld
		start := time.Now()
		logs := rt.Map(2, func(v float64) float64 {
			if v <= 0 {
				return 0
			}
			return logf(v)
		})
		growth := rt.Map(4, func(v float64) float64 {
			if v < 0 {
				return 0
			}
			if v > 100 {
				return 100
			}
			return v
		})
		stats := rt.GroupReduce(1, rt.Col(2), nil)
		_ = rt.GroupReduce(1, logs, nil)
		_ = rt.GroupReduce(1, growth, nil)
		st.Execute = time.Since(start)
		return len(stats), st, nil
	case "Q16": // data_cleaning
		csv := tuplex.ToCSV(dirty)
		frame, d, err := weld.Preprocess(csv,
			[]string{"id", "f1", "f2", "f3"},
			[]bool{false, false, false, false})
		if err != nil {
			return 0, st, err
		}
		st.Preprocess = d
		rt, ld := weld.Load(frame)
		st.Load = ld
		start := time.Now()
		m1 := rt.FilterMask(1, func(v float64) bool { return v >= 0 })
		m2 := rt.FilterMask(2, func(v float64) bool { return v >= 0 })
		m3 := rt.FilterMask(3, func(v float64) bool { return v >= 0 })
		for i := range m1 {
			m1[i] = m1[i] && m2[i] && m3[i]
		}
		g := rt.Reduce(rt.Col(1), m1)
		_ = rt.Reduce(rt.Col(2), m1)
		st.Execute = time.Since(start)
		return int(g.Count), st, nil
	}
	return 0, st, fmt.Errorf("bench: weld does not support %s", id)
}

func logf(v float64) float64 { return math.Log(v) }

// udoQ1Adapted runs Q1's three scalar UDFs as UDO table operators
// (UDO supports only table UDFs, so the paper implemented the scalars
// that way).
func udoQ1Adapted(pubs *data.Table) (int, udo.Stats, error) {
	rt, err := udoRuntime()
	if err != nil {
		return 0, udo.Stats{}, err
	}
	if err := rt.Exec(workload.UDFBenchLib); err != nil {
		return 0, udo.Stats{}, err
	}
	cleanFn, _ := rt.Global("cleandate")
	lowerFn, _ := rt.Global("lower")
	funderFn, _ := rt.Global("extractfunder")
	asOp := func(name string, fn data.Value, col int) udo.Operator {
		return udo.ExpandOp(name, func(r []data.Value, emit func([]data.Value)) {
			v, err := rt.Call(fn, []data.Value{r[col]})
			if err != nil {
				v = data.Null
			}
			out := append(append([]data.Value(nil), r...), v)
			emit(out)
		})
	}
	p := &udo.Pipeline{Ops: []udo.Operator{
		asOp("cleandate", cleanFn, 1),
		asOp("lower", lowerFn, 4),
		asOp("extractfunder", funderFn, 3),
	}}
	rows, stats, err := p.Run(pubs)
	return len(rows), stats, err
}

// weldQ1Adapted rewrites Q1 into Weld's numeric vocabulary: Weld
// cannot run the Python string UDFs, so (like the paper's WeldIR
// rewrite) only the numeric columns flow through its vector passes.
func weldQ1Adapted(pubs *data.Table) (time.Duration, int, error) {
	var sb strings.Builder
	n := pubs.NumRows()
	ids := pubs.Col("pubid")
	cites := pubs.Col("citations")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", ids.Ints[i], cites.Ints[i])
	}
	frame, prep, err := weld.Preprocess(sb.String(),
		[]string{"pubid", "citations"}, []bool{false, false})
	if err != nil {
		return 0, 0, err
	}
	rt, load := weld.Load(frame)
	start := time.Now()
	clean := rt.Map(1, func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	})
	g := rt.Reduce(clean, nil)
	exec := time.Since(start)
	return prep + load + exec, int(g.Count), nil
}
