package bench

import (
	"fmt"

	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// engLaunchAll launches a monet+JIT instance with every workload loaded.
func engLaunchAll(r *Runner) (*engines.Instance, error) {
	in := r.launch(engines.Config{Profile: engines.Monet, JIT: true})
	for _, ds := range []string{"udfbench", "zillow", "weld", "udo"} {
		if err := r.install(in, ds); err != nil {
			in.Close()
			return nil, err
		}
	}
	return in, nil
}

// Fig5Weld is E4 — Fig. 5 (left/middle): QFusor vs Weld on
// get_population_stats (Q15) and data_cleaning (Q16) across sizes, with
// the phase breakdown (Weld: preprocess/load/execute; QFusor:
// read/execute).
func (r *Runner) Fig5Weld() (*Result, error) {
	res := &Result{ID: "E4", Title: "Fig. 5: QFusor vs Weld (Q15 population stats, Q16 data cleaning)"}
	sizes := []workload.Size{workload.Small, workload.Medium, workload.Large}
	if r.Quick {
		sizes = []workload.Size{workload.Tiny, workload.Small}
	}
	for _, size := range sizes {
		pop, dirty := workload.GenWeld(size)
		for _, q := range []string{"Q15", "Q16"} {
			// Weld: two-phase load + vector execution.
			n, st, err := weldRun(q, pop, dirty)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("%s/%s/weld", q, size),
				Metrics: map[string]float64{
					"preprocess_ms": ms(st.Preprocess),
					"load_ms":       ms(st.Load),
					"execute_ms":    ms(st.Execute),
					"total_ms":      ms(st.Preprocess + st.Load + st.Execute),
					"rows":          float64(n),
				},
				Order: []string{"preprocess_ms", "load_ms", "execute_ms", "total_ms", "rows"}})

			// QFusor: read (already-loaded columnar tables) + execute.
			in := r.launch(engines.Config{Profile: engines.Monet, JIT: true})
			if err := workload.InstallWeld(in); err != nil {
				return nil, err
			}
			read, _ := timeIt(func() error {
				in.Put(pop)
				in.Put(dirty)
				return nil
			})
			sql := workload.Q15
			if q == "Q16" {
				sql = workload.Q16
			}
			d, rows, err := r.runSQL(in, sql, runFused)
			in.Close()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("%s/%s/qfusor", q, size),
				Metrics: map[string]float64{
					"read_ms":    ms(read),
					"execute_ms": ms(d),
					"total_ms":   ms(read + d),
					"rows":       float64(rows),
				},
				Order: []string{"read_ms", "execute_ms", "total_ms", "rows"}})
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: qfusor beats weld's total compute (2.83x / 7x hot-cache averages); weld pays the two-phase load")
	return res, nil
}

// Fig5UDO is E5 — Fig. 5 (right): QFusor vs UDO on the split-arrays
// (Q17) and contains-database (Q18) pipelines — no fusion
// opportunities, so this measures JIT-compiled execution against UDO's
// out-of-the-box compiled operators.
func (r *Runner) Fig5UDO() (*Result, error) {
	res := &Result{ID: "E5", Title: "Fig. 5 (right): QFusor vs UDO (Q17 split-arrays, Q18 contains-database)"}
	arrays, docs := workload.GenUDO(r.Size)
	for _, q := range []string{"Q17", "Q18"} {
		n, st, err := udoRun(q, arrays, docs, 1)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: q + "/udo",
			Metrics: map[string]float64{"time_ms": ms(st.ExecTime), "rows": float64(n)},
			Order:   []string{"time_ms", "rows"}})

		in := r.launch(engines.Config{Profile: engines.Monet, JIT: true})
		if err := workload.InstallUDO(in); err != nil {
			return nil, err
		}
		in.Put(arrays)
		in.Put(docs)
		sql := workload.Q17
		if q == "Q18" {
			sql = workload.Q18
		}
		// Hot caches: warm once, then measure.
		if _, _, err := r.runSQL(in, sql, runFused); err != nil {
			in.Close()
			return nil, err
		}
		d, rows, err := r.runSQL(in, sql, runFused)
		in.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: q + "/qfusor",
			Metrics: map[string]float64{"time_ms": ms(d), "rows": float64(rows)},
			Order:   []string{"time_ms", "rows"}})
	}
	res.Notes = append(res.Notes,
		"paper shape: qfusor 27%/39% faster than UDO with hot caches; UDO's compiled operators keep it close")
	return res, nil
}
