package bench

import (
	"fmt"
	"sort"
	"time"

	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// PlanCacheBench is E17: the plan-decision cache experiment. Part one
// measures the optimizer front-end latency (FusOptim + CodeGen from the
// fusion report) for the same query cold (cache purged before every
// run) versus warm (served from the cache), which is the tentpole's
// acceptance number: a hit must cut optimize latency by ≥5x. Part two
// sweeps the working-set size of distinct queries cycled round-robin
// through a fixed-capacity cache and reports the observed hit rate —
// the expected cliff: near-perfect reuse while the working set fits,
// collapsing to zero once it exceeds the LRU capacity (round-robin is
// LRU's adversarial access pattern).
func (r *Runner) PlanCacheBench() (*Result, error) {
	res := &Result{ID: "E17", Title: "Plan-decision cache: optimize latency cold vs warm + hit-rate sweep (Zillow Q12)"}
	reps := 30
	if r.Quick {
		reps = 10
	}

	in, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true}, "zillow")
	if err != nil {
		return nil, err
	}
	defer in.Close()

	measure := func(purge bool, wantState string) (time.Duration, time.Duration, error) {
		opts := make([]time.Duration, 0, reps)
		totals := make([]time.Duration, 0, reps)
		for i := 0; i < reps; i++ {
			if purge {
				in.QF.PlanCache.Purge()
			}
			d, _, err := r.runSQL(in, workload.Q12, runFused)
			if err != nil {
				return 0, 0, err
			}
			rep := in.QF.LastReport()
			if rep.PlanCache != wantState {
				return 0, 0, fmt.Errorf("plancache: run %d reported %q, want %q", i, rep.PlanCache, wantState)
			}
			opts = append(opts, rep.FusOptim+rep.CodeGen)
			totals = append(totals, d)
		}
		return medianDur(opts), medianDur(totals), nil
	}

	coldOpt, coldTotal, err := measure(true, "miss")
	if err != nil {
		return nil, err
	}
	if _, _, err := r.runSQL(in, workload.Q12, runFused); err != nil { // prime
		return nil, err
	}
	warmOpt, warmTotal, err := measure(false, "hit")
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows,
		Row{Label: "optimize/cold", Order: []string{"opt_us", "total_ms"},
			Metrics: map[string]float64{"opt_us": us(coldOpt), "total_ms": ms(coldTotal)}},
		Row{Label: "optimize/warm-hit", Order: []string{"opt_us", "total_ms"},
			Metrics: map[string]float64{"opt_us": us(warmOpt), "total_ms": ms(warmTotal)},
			Note:    fmt.Sprintf("%.1fx lower optimize latency", float64(coldOpt)/float64(warmOpt))},
	)

	// Hit-rate sweep: cap 8, working sets straddling it, round-robin.
	const cap = 8
	passes := 6
	if r.Quick {
		passes = 4
	}
	for _, ws := range []int{4, 8, 16, 32} {
		in2, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true, PlanCacheSize: cap}, "zillow")
		if err != nil {
			return nil, err
		}
		queries := make([]string, ws)
		for i := range queries {
			// Distinct texts (distinct cache keys), identical fusing
			// shape: the predicate is always true (urldepth ≥ 0).
			queries[i] = fmt.Sprintf("%s WHERE urldepth(url) >= -%d", workload.Q12, i+1)
		}
		for p := 0; p < passes; p++ {
			for _, q := range queries {
				if _, _, err := r.runSQL(in2, q, runFused); err != nil {
					in2.Close()
					return nil, err
				}
			}
		}
		st := in2.QF.PlanCache.Stats()
		in2.Close()
		total := st.Hits + st.Misses
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("hitrate/cap=%d/ws=%d", cap, ws),
			Order: []string{"hit_pct", "evictions"},
			Metrics: map[string]float64{
				"hit_pct":   100 * float64(st.Hits) / float64(total),
				"evictions": float64(st.Evictions),
			},
		})
	}
	res.Notes = append(res.Notes,
		"acceptance: warm-hit optimize latency must be ≥5x below cold (plan cache skips probe/DFG/discover/codegen/rewrite)",
		"hit rate holds while the working set fits the cap, collapses past it (round-robin is LRU-adversarial)")
	return res, nil
}

// us converts a duration to microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// medianDur returns the median of ds (ds is sorted in place).
func medianDur(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	n := len(ds)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return ds[n/2]
	}
	return (ds[n/2-1] + ds[n/2]) / 2
}

// minDur returns the smallest of ds (0 when empty). Interference —
// scheduling, GC, frequency scaling — only ever adds time, so the
// minimum is the faithful estimate for tight per-section costs.
func minDur(ds []time.Duration) time.Duration {
	best := time.Duration(0)
	for i, d := range ds {
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}
