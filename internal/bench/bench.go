// Package bench is the experiment harness: one runner per table/figure
// of the paper's evaluation (§6), each printing the same rows/series
// the paper reports, measured on this substrate.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"qfusor/internal/core"
	"qfusor/internal/data"
	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// Row is one measured point of an experiment.
type Row struct {
	Label   string
	Metrics map[string]float64 // milliseconds unless suffixed otherwise
	Order   []string           // metric print order
	Note    string
}

// Result is one experiment's output.
type Result struct {
	ID    string // experiment id (DESIGN.md table)
	Title string // paper artifact, e.g. "Fig. 4 (top)"
	Rows  []Row
	Notes []string
}

// Runner executes experiments at a given scale.
type Runner struct {
	Size workload.Size
	Out  io.Writer
	// Quick trims sweeps (fewer selectivity points, fewer repetitions)
	// for CI runs.
	Quick bool
	// Parallelism is the executor worker count applied to every launched
	// instance whose experiment does not pin its own (0 = auto, 1 =
	// serial). Parallelism sweeps ignore it.
	Parallelism int
	// QueryTimeout bounds every measured query (0 = none): a query that
	// exceeds it fails its experiment with a cancelled QueryError
	// instead of wedging the whole run.
	QueryTimeout time.Duration
	// PlanCacheOff disables the plan-decision cache on every launched
	// instance whose experiment does not pin its own setting (-plancache=
	// false; the plancache experiment itself manages both arms).
	PlanCacheOff bool
	// MorselSize overrides the executor morsel row count on launched
	// instances that don't pin their own (0 = engine default).
	MorselSize int
	// Tier pins the fused-section execution tier on launched instances
	// that don't pin their own ("vm" | "closure" | ""/auto).
	Tier string
}

// launch builds an instance, applying the runner's default parallelism
// when the experiment left the config at 0 (auto).
func (r *Runner) launch(cfg engines.Config) *engines.Instance {
	if cfg.Parallelism == 0 {
		cfg.Parallelism = r.Parallelism
	}
	if r.PlanCacheOff && cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = -1
	}
	if cfg.MorselSize == 0 {
		cfg.MorselSize = r.MorselSize
	}
	if cfg.Tier == "" {
		cfg.Tier = r.Tier
	}
	return engines.Launch(cfg)
}

// NewRunner builds a runner printing to w.
func NewRunner(size workload.Size, w io.Writer) *Runner {
	return &Runner{Size: size, Out: w}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Out != nil {
		fmt.Fprintf(r.Out, format, args...)
	}
}

// Print renders a result as an aligned table.
func (r *Runner) Print(res *Result) {
	if r.Out == nil {
		return
	}
	fmt.Fprintf(r.Out, "\n== %s — %s (size=%s)\n", res.ID, res.Title, r.Size)
	// Collect metric order.
	var metrics []string
	seen := map[string]bool{}
	for _, row := range res.Rows {
		order := row.Order
		if order == nil {
			for m := range row.Metrics {
				order = append(order, m)
			}
			sort.Strings(order)
		}
		for _, m := range order {
			if !seen[m] {
				seen[m] = true
				metrics = append(metrics, m)
			}
		}
	}
	w := 24
	for _, row := range res.Rows {
		if len(row.Label) > w {
			w = len(row.Label)
		}
	}
	fmt.Fprintf(r.Out, "%-*s", w+2, "series")
	for _, m := range metrics {
		fmt.Fprintf(r.Out, "%14s", m)
	}
	fmt.Fprintln(r.Out)
	for _, row := range res.Rows {
		fmt.Fprintf(r.Out, "%-*s", w+2, row.Label)
		for _, m := range metrics {
			if v, ok := row.Metrics[m]; ok {
				fmt.Fprintf(r.Out, "%14.2f", v)
			} else {
				fmt.Fprintf(r.Out, "%14s", "-")
			}
		}
		if row.Note != "" {
			fmt.Fprintf(r.Out, "  %s", row.Note)
		}
		fmt.Fprintln(r.Out)
	}
	for _, n := range res.Notes {
		fmt.Fprintf(r.Out, "   note: %s\n", n)
	}
}

// ms converts a duration to milliseconds.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// timeIt measures fn once (experiments use cold single runs like the
// paper's cold-cache methodology; benchmarks re-run via testing.B).
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// sysConfig describes one system lineup entry.
type sysConfig struct {
	name  string
	build func() (*engines.Instance, runMode, error)
}

// runMode selects how a query is issued on an instance.
type runMode int

const (
	runNative runMode = iota // engine-native UDF execution
	runFused                 // through the QFusor pipeline
)

// launchWorkload builds an instance with the named dataset installed.
func (r *Runner) launchWorkload(cfg engines.Config, dataset string) (*engines.Instance, error) {
	in := r.launch(cfg)
	if err := r.install(in, dataset); err != nil {
		in.Close()
		return nil, err
	}
	return in, nil
}

func (r *Runner) install(in *engines.Instance, dataset string) error {
	switch dataset {
	case "udfbench", "udfbench-pubs", "udfbench-artifacts":
		if err := workload.InstallUDFBench(in); err != nil {
			return err
		}
		ub := workload.GenUDFBench(r.Size)
		in.Put(ub.Pubs)
		in.Put(ub.Artifacts)
	case "zillow":
		if err := workload.InstallZillow(in); err != nil {
			return err
		}
		in.Put(workload.GenZillow(r.Size))
	case "zillow-tiny":
		if err := workload.InstallZillow(in); err != nil {
			return err
		}
		in.Put(workload.GenZillow(workload.Tiny))
	case "weld":
		if err := workload.InstallWeld(in); err != nil {
			return err
		}
		pop, dirty := workload.GenWeld(r.Size)
		in.Put(pop)
		in.Put(dirty)
	case "udo":
		if err := workload.InstallUDO(in); err != nil {
			return err
		}
		arrays, docs := workload.GenUDO(r.Size)
		in.Put(arrays)
		in.Put(docs)
	default:
		return fmt.Errorf("bench: unknown dataset %q", dataset)
	}
	return nil
}

// runSQLTimeout measures one query on an instance in the given mode,
// under an optional per-query deadline.
func runSQLTimeout(in *engines.Instance, sql string, mode runMode, timeout time.Duration) (time.Duration, int, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	var (
		res *data.Table
		err error
	)
	if mode == runFused {
		res, err = in.QueryFusedCtx(ctx, sql)
	} else {
		res, err = in.QueryCtx(ctx, sql)
	}
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), res.NumRows(), nil
}

// engineLineup is the system list of Fig. 4: name → instance builder.
// Each call launches a fresh instance (cold caches).
func (r *Runner) engineLineup(dataset string) []sysConfig {
	mk := func(name string, cfg engines.Config, mode runMode, opts *core.Options, nativeUDFs bool) sysConfig {
		return sysConfig{name: name, build: func() (*engines.Instance, runMode, error) {
			in := r.launch(cfg)
			if err := r.install(in, dataset); err != nil {
				in.Close()
				return nil, mode, err
			}
			if nativeUDFs {
				workload.InstallNativeUDFs(in)
			}
			if opts != nil {
				in.QF.Opts = *opts
			}
			return in, mode, nil
		}}
	}
	yesql := core.Options{Fusion: true, ScalarOnly: true, Cache: true}
	return []sysConfig{
		mk("qfusor", engines.Config{Profile: engines.Monet, JIT: true}, runFused, nil, false),
		mk("yesql", engines.Config{Profile: engines.Monet, JIT: true}, runFused, &yesql, false),
		mk("mdb/c-udf", engines.Config{Profile: engines.Monet, JIT: false}, runNative, nil, true),
		mk("mdb/numpy", engines.Config{Profile: engines.Monet, JIT: false}, runNative, nil, false),
		mk("sqlite", engines.Config{Profile: engines.SQLite, JIT: false}, runNative, nil, false),
		mk("postgresql", engines.Config{Profile: engines.Postgres, JIT: false}, runNative, nil, false),
		mk("duckdb", engines.Config{Profile: engines.Duck, JIT: false}, runNative, nil, false),
		mk("pyspark", engines.Config{Profile: engines.Spark, JIT: false, Parallelism: 4}, runNative, nil, false),
		mk("dbx", engines.Config{Profile: engines.DBX, JIT: false, Parallelism: 4}, runNative, nil, true),
	}
}

// speedupNote renders "× over Y".
func speedupNote(base, v float64) string {
	if v <= 0 {
		return ""
	}
	return fmt.Sprintf("%.1fx", base/v)
}

var _ = strings.TrimSpace

// runSQL (method form) applies the runner's QueryTimeout to a measured
// query.
func (r *Runner) runSQL(in *engines.Instance, sql string, mode runMode) (time.Duration, int, error) {
	return runSQLTimeout(in, sql, mode, r.QueryTimeout)
}
