package bench

import (
	"fmt"
	"sort"

	"qfusor/internal/workload"
)

// Fig4UDFBench is E1 — Fig. 4 (top): UDFBench Q1/Q2/Q3 across the
// system lineup. Q3 is supported only by the SQL-engine systems (n/a
// elsewhere), matching the paper's compatibility matrix.
func (r *Runner) Fig4UDFBench() (*Result, error) {
	res := &Result{ID: "E1", Title: "Fig. 4 (top): UDFBench Q1/Q2/Q3 across systems"}
	queries := []struct {
		id  string
		sql string
	}{{"Q1", workload.Q1}, {"Q2", workload.Q2}, {"Q3", workload.Q3}}

	for _, q := range queries {
		for _, sys := range r.engineLineup("udfbench") {
			if q.id == "Q3" {
				switch sys.name {
				case "duckdb", "pyspark", "dbx", "mdb/c-udf":
					res.Rows = append(res.Rows, Row{Label: q.id + "/" + sys.name, Note: "n/a"})
					continue
				}
			}
			in, mode, err := sys.build()
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", q.id, sys.name, err)
			}
			d, rows, err := r.runSQL(in, q.sql, mode)
			in.Close()
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", q.id, sys.name, err)
			}
			res.Rows = append(res.Rows, Row{Label: q.id + "/" + sys.name,
				Metrics: map[string]float64{"time_ms": ms(d), "rows": float64(rows)},
				Order:   []string{"time_ms", "rows"}})
		}
		// Out-of-database systems.
		ub := workload.GenUDFBench(r.Size)
		if q.id == "Q1" || q.id == "Q2" {
			if n, stats, err := tuplexUDFBench(q.id, 2, ub.Pubs); err == nil {
				res.Rows = append(res.Rows, Row{Label: q.id + "/tuplex",
					Metrics: map[string]float64{"time_ms": ms(stats.ReadTime + stats.CompileTime + stats.ExecTime), "rows": float64(n)},
					Order:   []string{"time_ms", "rows"}})
			} else {
				return nil, err
			}
			d, err := timeIt(func() error {
				_, err := pandasQuery(q.id, ub.Pubs, nil)
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{Label: q.id + "/pandas",
				Metrics: map[string]float64{"time_ms": ms(d)}, Order: []string{"time_ms"}})
		} else {
			res.Rows = append(res.Rows,
				Row{Label: q.id + "/tuplex", Note: "n/a"},
				Row{Label: q.id + "/pandas", Note: "n/a"})
		}
		if q.id == "Q1" {
			// The paper adapts Q1 for UDO (scalar UDFs as table
			// operators) and Weld (numeric/native rewriting).
			n, st, err := udoQ1Adapted(ub.Pubs)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{Label: "Q1/udo (adapted)",
				Metrics: map[string]float64{"time_ms": ms(st.ExecTime), "rows": float64(n)},
				Order:   []string{"time_ms", "rows"}})
			d, n2, err := weldQ1Adapted(ub.Pubs)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{Label: "Q1/weld (adapted)",
				Metrics: map[string]float64{"time_ms": ms(d), "rows": float64(n2)},
				Order:   []string{"time_ms", "rows"}})
		} else {
			res.Rows = append(res.Rows,
				Row{Label: q.id + "/udo", Note: "n/a"},
				Row{Label: q.id + "/weld", Note: "n/a"})
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: qfusor fastest on Q2/Q3 (up to 40x over postgresql on Q3); on Q1 qfusor ≈ yesql, mdb/c-udf excellent")
	return res, nil
}

// Fig4Zillow is E2 — Fig. 4 (middle): the Zillow pipeline (Q11) across
// systems.
func (r *Runner) Fig4Zillow() (*Result, error) {
	res := &Result{ID: "E2", Title: "Fig. 4 (middle): Zillow Q11 across systems"}
	for _, sys := range r.engineLineup("zillow") {
		if sys.name == "mdb/c-udf" {
			// The Zillow UDFs are not part of the native-UDF set for the
			// engine lineup; mdb/numpy covers the MonetDB point.
			continue
		}
		in, mode, err := sys.build()
		if err != nil {
			return nil, fmt.Errorf("Q11 on %s: %w", sys.name, err)
		}
		d, rows, err := r.runSQL(in, workload.Q11, mode)
		in.Close()
		if err != nil {
			return nil, fmt.Errorf("Q11 on %s: %w", sys.name, err)
		}
		res.Rows = append(res.Rows, Row{Label: "Q11/" + sys.name,
			Metrics: map[string]float64{"time_ms": ms(d), "rows": float64(rows)},
			Order:   []string{"time_ms", "rows"}})
	}
	listings := workload.GenZillow(r.Size)
	if n, stats, err := tuplexZillowQ11(2, listings, false); err == nil {
		res.Rows = append(res.Rows, Row{Label: "Q11/tuplex",
			Metrics: map[string]float64{"time_ms": ms(stats.ReadTime + stats.CompileTime + stats.ExecTime), "rows": float64(n)},
			Order:   []string{"time_ms", "rows"}})
	} else {
		return nil, err
	}
	d, err := timeIt(func() error {
		_, err := pandasQuery("Q11", nil, listings)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{Label: "Q11/pandas",
		Metrics: map[string]float64{"time_ms": ms(d)}, Order: []string{"time_ms"}})
	for _, fused := range []bool{false, true} {
		label := "Q11/udo"
		if fused {
			label = "Q11/udo-fused"
		}
		n, stats, err := udoZillowQ11(listings, fused, 1)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Label: label,
			Metrics: map[string]float64{"time_ms": ms(stats.ExecTime), "rows": float64(n),
				"peak_rows": float64(stats.PeakRows)},
			Order: []string{"time_ms", "rows", "peak_rows"}})
	}
	res.Notes = append(res.Notes,
		"paper shape: qfusor clearly fastest; udo non-fused memory-hungry (peak_rows); yesql limited by scalar-only fusion")
	return res, nil
}

// Fig4Overhead is E3 — Fig. 4 (bottom): QFusor's own pipeline overhead
// (fus-optim and code-gen, in ms) for every query.
func (r *Runner) Fig4Overhead() (*Result, error) {
	res := &Result{ID: "E3", Title: "Fig. 4 (bottom): fus-optim + code-gen overhead (ms)"}
	queries := workload.AllQueries()
	var ids []string
	for id := range queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		ai, bi := ids[a], ids[b]
		if len(ai) != len(bi) {
			return len(ai) < len(bi)
		}
		return ai < bi
	})
	// One instance with every workload installed.
	in, err := engLaunchAll(r)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	for _, id := range ids {
		_, rep, err := in.QF.Process(in.Eng, queries[id])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		res.Rows = append(res.Rows, Row{Label: id,
			Metrics: map[string]float64{
				"fus-optim_ms": ms(rep.FusOptim),
				"code-gen_ms":  ms(rep.CodeGen),
				"sections":     float64(rep.Sections),
			},
			Order: []string{"fus-optim_ms", "code-gen_ms", "sections"}})
	}
	res.Notes = append(res.Notes, "paper shape: overheads in the low-millisecond range, negligible vs runtime")
	return res, nil
}
