package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"qfusor/internal/data"
	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// MorselSpeedup is E15: the morsel-driven executor A/B — the fused
// Zillow pipeline (Q11) and the pubs aggregate (Q3) at parallelism 1
// (legacy serial) vs 8, warm wrappers, best-of-N. Verifies the parallel
// result is row-identical (order-insensitive) to the serial one before
// reporting any timing.
func (r *Runner) MorselSpeedup() (*Result, error) {
	res := &Result{ID: "E18", Title: "Morsel executor: parallel vs serial (Zillow Q11, UDFBench Q3)"}
	reps := 3
	if r.Quick {
		reps = 2
	}
	type probe struct {
		name    string
		dataset string
		sql     string
	}
	probes := []probe{
		{"zillow-q11", "zillow", workload.Q11},
		{"udfbench-q3", "udfbench", workload.Q3},
	}
	for _, p := range probes {
		var serial float64
		var serialFP string
		for _, par := range []int{1, 8} {
			in, err := r.launchWorkload(engines.Config{Profile: engines.Monet, JIT: true, Parallelism: par}, p.dataset)
			if err != nil {
				return nil, err
			}
			// Warm run: compile fused wrappers, trace the JIT.
			warm, err := in.QueryFused(p.sql)
			if err != nil {
				in.Close()
				return nil, fmt.Errorf("%s par=%d: %w", p.name, par, err)
			}
			best := 0.0
			for i := 0; i < reps; i++ {
				d, _, err := r.runSQL(in, p.sql, runFused)
				if err != nil {
					in.Close()
					return nil, fmt.Errorf("%s par=%d: %w", p.name, par, err)
				}
				if best == 0 || ms(d) < best {
					best = ms(d)
				}
			}
			in.Close()
			fp := tableFingerprint(warm)
			if par == 1 {
				serial, serialFP = best, fp
			} else if fp != serialFP {
				return nil, fmt.Errorf("%s: parallel result differs from serial", p.name)
			}
			row := Row{Label: fmt.Sprintf("%s/par=%d", p.name, par),
				Metrics: map[string]float64{"time_ms": best, "rows": float64(warm.NumRows())},
				Order:   []string{"time_ms", "rows"}}
			if par != 1 {
				row.Note = speedupNote(serial, best) + " (results identical)"
			}
			res.Rows = append(res.Rows, row)
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"best of %d warm runs; host has %d core(s) visible to the runtime — wall-clock speedup is bounded by that, so single-core hosts measure morsel overhead, not scaling",
		reps, runtime.GOMAXPROCS(0)))
	return res, nil
}

// tableFingerprint renders a table as its sorted row set, so two
// results compare equal iff they hold the same rows regardless of
// order. Floats are rounded to 9 significant digits: parallel partial
// sums associate additions differently than the serial left-to-right
// fold, so SUM/AVG over floats may differ in the last few ulps without
// being wrong.
func tableFingerprint(t *data.Table) string {
	lines := make([]string, t.NumRows())
	var b strings.Builder
	for i := 0; i < t.NumRows(); i++ {
		b.Reset()
		for _, c := range t.Cols {
			v := c.Get(i)
			if v.Kind == data.KindFloat {
				b.WriteString(strconv.FormatFloat(v.F, 'g', 9, 64))
				b.WriteByte('|')
			} else {
				fmt.Fprintf(&b, "%v|", v)
			}
		}
		lines[i] = b.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
