package bench

import (
	"io"
	"strings"
	"testing"

	"qfusor/internal/workload"
)

// quickRunner builds a tiny/quick runner for CI-speed smoke tests.
func quickRunner() *Runner {
	r := NewRunner(workload.Tiny, io.Discard)
	r.Quick = true
	return r
}

// TestEveryExperimentRuns executes the full experiment catalogue at
// tiny/quick scale: this is the end-to-end guarantee that every figure
// and table of the paper can be regenerated.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	r := quickRunner()
	for name, fn := range r.Experiments() {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			res, err := fn()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s produced no rows", name)
			}
			for _, row := range res.Rows {
				if row.Label == "" {
					t.Fatalf("%s has an unlabelled row", name)
				}
			}
		})
	}
}

// TestFig6bShape: fused execution must beat non-fused on the
// PostgreSQL profile (IPC elimination) at every selectivity.
func TestFig6bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	r := quickRunner()
	res, err := r.Fig6bOffload()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, row := range res.Rows {
		byLabel[row.Label] = row.Metrics["time_ms"]
	}
	for label, v := range byLabel {
		if !strings.HasPrefix(label, "postgresql/") || !strings.HasSuffix(label, "/fused") {
			continue
		}
		nofus := byLabel[strings.Replace(label, "/fused", "/no-fus", 1)]
		if nofus <= v {
			t.Errorf("%s: fused (%.2fms) not faster than no-fus (%.2fms)", label, v, nofus)
		}
	}
}

// TestFig4OverheadSmall: optimizer overheads stay in the
// low-millisecond range.
func TestFig4OverheadSmall(t *testing.T) {
	r := quickRunner()
	res, err := r.Fig4Overhead()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Metrics["fus-optim_ms"] > 100 || row.Metrics["code-gen_ms"] > 100 {
			t.Errorf("%s: overhead too large: %+v", row.Label, row.Metrics)
		}
	}
}

// TestPrintFormatting renders a result without panicking and includes
// the metrics.
func TestPrintFormatting(t *testing.T) {
	var sb strings.Builder
	r := NewRunner(workload.Tiny, &sb)
	r.Print(&Result{ID: "X", Title: "t", Rows: []Row{
		{Label: "a", Metrics: map[string]float64{"time_ms": 1.5}, Order: []string{"time_ms"}},
		{Label: "b", Note: "n/a"},
	}})
	out := sb.String()
	if !strings.Contains(out, "time_ms") || !strings.Contains(out, "n/a") {
		t.Fatalf("formatting:\n%s", out)
	}
}
