package bench

import (
	"fmt"

	"qfusor/internal/engines"
	"qfusor/internal/workload"
)

// Fig8Pluggability is E14 — Fig. 8: QFusor plugged into each engine
// profile, running Q12 in native mode (JIT on, fusion off) and enhanced
// mode (fusion on), at two scales.
func (r *Runner) Fig8Pluggability() (*Result, error) {
	res := &Result{ID: "E14", Title: "Fig. 8: pluggability — native vs enhanced per engine (Q12)"}
	sizes := []workload.Size{r.Size}
	if !r.Quick {
		sizes = append(sizes, doubleSize(r.Size))
	}
	for _, size := range sizes {
		listings := workload.GenZillow(size)
		for _, prof := range engines.AllProfiles() {
			var native, enhanced float64
			for _, fused := range []bool{false, true} {
				in := r.launch(engines.Config{Profile: prof, JIT: true})
				if err := workload.InstallZillow(in); err != nil {
					return nil, err
				}
				in.Put(listings)
				mode := runNative
				label := fmt.Sprintf("%s/%s/native", prof, size)
				if fused {
					mode = runFused
					label = fmt.Sprintf("%s/%s/enhanced", prof, size)
				}
				d, rows, err := r.runSQL(in, workload.Q12, mode)
				in.Close()
				if err != nil {
					return nil, fmt.Errorf("%s: %w", label, err)
				}
				if fused {
					enhanced = ms(d)
				} else {
					native = ms(d)
				}
				res.Rows = append(res.Rows, Row{Label: label,
					Metrics: map[string]float64{"time_ms": ms(d), "rows": float64(rows)},
					Order:   []string{"time_ms", "rows"}})
			}
			res.Rows = append(res.Rows, Row{
				Label:   fmt.Sprintf("%s/%s/speedup", prof, size),
				Metrics: map[string]float64{"x": native / enhanced},
				Order:   []string{"x"},
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: enhanced (fusion on) beats native (fusion off) on every engine; biggest factors on tuple-at-a-time engines")
	return res, nil
}

func doubleSize(s workload.Size) workload.Size {
	switch s {
	case workload.Tiny:
		return workload.Small
	case workload.Small:
		return workload.Medium
	default:
		return workload.Large
	}
}

// All runs every experiment in DESIGN.md order.
func (r *Runner) All() ([]*Result, error) {
	type exp struct {
		name string
		fn   func() (*Result, error)
	}
	exps := []exp{
		{"fig4-udfbench", r.Fig4UDFBench},
		{"fig4-zillow", r.Fig4Zillow},
		{"fig4-overhead", r.Fig4Overhead},
		{"fig5-weld", r.Fig5Weld},
		{"fig5-udo", r.Fig5UDO},
		{"fig6a-ladder", r.Fig6aLadder},
		{"fig6b-offload", r.Fig6bOffload},
		{"fig6c-physical", r.Fig6cPhysical},
		{"fig6d-shortqueries", r.Fig6dShortQueries},
		{"fig6e-udftypes", r.Fig6eUDFTypes},
		{"fig6f-diskmem", r.Fig6fDiskMem},
		{"fig6g-parallel", r.Fig6gParallel},
		{"fig7-resources", r.Fig7Resources},
		{"fig8-pluggability", r.Fig8Pluggability},
		{"morsel-speedup", r.MorselSpeedup},
		{"plancache", r.PlanCacheBench},
		{"resource-overhead", r.ResourceOverheadBench},
		{"vm-dispatch", r.VMTierBench},
		{"serve-overload", r.ServeOverload},
		{"serve-sustained", r.ServeSustained},
	}
	var out []*Result
	for _, e := range exps {
		res, err := e.fn()
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		r.Print(res)
		out = append(out, res)
	}
	return out, nil
}

// Experiments maps CLI names to experiment runners.
func (r *Runner) Experiments() map[string]func() (*Result, error) {
	return map[string]func() (*Result, error){
		"fig4-udfbench":      r.Fig4UDFBench,
		"fig4-zillow":        r.Fig4Zillow,
		"fig4-overhead":      r.Fig4Overhead,
		"fig5-weld":          r.Fig5Weld,
		"fig5-udo":           r.Fig5UDO,
		"fig6a-ladder":       r.Fig6aLadder,
		"fig6b-offload":      r.Fig6bOffload,
		"fig6c-physical":     r.Fig6cPhysical,
		"fig6d-shortqueries": r.Fig6dShortQueries,
		"fig6e-udftypes":     r.Fig6eUDFTypes,
		"fig6f-diskmem":      r.Fig6fDiskMem,
		"fig6g-parallel":     r.Fig6gParallel,
		"fig7-resources":     r.Fig7Resources,
		"fig8-pluggability":  r.Fig8Pluggability,
		"morsel-speedup":     r.MorselSpeedup,
		"plancache":          r.PlanCacheBench,
		"resource-overhead":  r.ResourceOverheadBench,
		"vm-dispatch":        r.VMTierBench,
		"serve-overload":     r.ServeOverload,
		"serve-sustained":    r.ServeSustained,
	}
}
