// Package faultinject provides deterministic, seedable fault points for
// the chaos test suite and the CLIs' -fault flags. A fault point is a
// named hook compiled into an execution layer (the FFI boundary, the
// PyLite eval loop, the morsel workers, the process transport); firing
// one is a single atomic load when nothing is armed, so the hooks stay
// in hot paths permanently.
//
// Faults are injected by name:
//
//	faultinject.Enable("ffi.scalar", faultinject.Spec{Kind: faultinject.Error, Times: 1})
//	defer faultinject.Reset()
//
// Every injected failure's cause chain reaches ErrInjected, so tests can
// assert the provenance of a degraded query with errors.Is.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed fault point does when it fires.
type Kind int

const (
	// Error makes the point return an injected error.
	Error Kind = iota
	// Panic makes the point panic with an error value (recovered by the
	// resilience layer's guards).
	Panic
	// Delay makes the point sleep for Spec.Delay (exercises timeouts and
	// context cancellation).
	Delay
	// WorkerKill makes a supervised worker die mid-request without
	// replying (only the process transport's worker-side point honours
	// it; everywhere else it behaves like Error).
	WorkerKill
)

// String names the kind for flags and test labels.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case WorkerKill:
		return "kill"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind parses a Kind name (the CLIs' -fault flag syntax).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return Error, nil
	case "panic":
		return Panic, nil
	case "delay":
		return Delay, nil
	case "kill":
		return WorkerKill, nil
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q (error|panic|delay|kill)", s)
}

// ErrInjected is the sentinel every injected fault wraps: after a fault
// propagates through the query pipeline, errors.Is(err, ErrInjected)
// identifies it.
var ErrInjected = errors.New("faultinject: injected fault")

// InjectedPanic is the value an armed Panic fault panics with. It is an
// error wrapping ErrInjected so recovered panics keep the cause chain.
type InjectedPanic struct{ Point string }

// Error implements error.
func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s", p.Point)
}

// Unwrap chains to ErrInjected.
func (p *InjectedPanic) Unwrap() error { return ErrInjected }

// errWorkerKill is the internal sentinel Fire returns for WorkerKill.
type errWorkerKill struct{ Point string }

func (e *errWorkerKill) Error() string {
	return fmt.Sprintf("faultinject: injected worker kill at %s", e.Point)
}
func (e *errWorkerKill) Unwrap() error { return ErrInjected }

// IsWorkerKill reports whether err is an injected worker-kill order (the
// process transport's worker checks this to die without replying).
func IsWorkerKill(err error) bool {
	var k *errWorkerKill
	return errors.As(err, &k)
}

// Spec configures an armed fault.
type Spec struct {
	Kind Kind
	// Delay is the sleep duration for Kind Delay.
	Delay time.Duration
	// After skips the first After hits of the point before firing
	// (deterministically position the fault mid-query).
	After int
	// Times bounds how often the fault fires; 0 = every hit forever.
	Times int
	// Prob fires the fault on each eligible hit with this probability,
	// drawn from a rand seeded with Seed (deterministic across runs).
	// 0 or >= 1 means always fire.
	Prob float64
	// Seed seeds the Prob draw sequence.
	Seed int64
}

// point is one armed instance of a registered fault point.
type point struct {
	mu    sync.Mutex
	spec  Spec
	hits  int // eligible hits seen so far
	fired int // times actually fired
	rng   *rand.Rand
}

var (
	// armed is the global fast-path gate: hooks pay one atomic load when
	// no fault is armed anywhere in the process.
	armed atomic.Bool

	mu       sync.Mutex
	names    = map[string]bool{}   // every registered point name
	active   = map[string]*point{} // armed points
	fireHook func(name string)     // test observation hook (guarded by mu)
)

// Register declares a fault point name at package init of the layer that
// hosts it, so sweeps (and -fault validation) can enumerate every hook.
// Returns the name for use as a package-level constant.
func Register(name string) string {
	mu.Lock()
	defer mu.Unlock()
	names[name] = true
	return name
}

// Names lists every registered fault point, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	return namesLocked()
}

// Enable arms a registered fault point. Unknown names are an error so a
// typo in a chaos sweep or -fault flag cannot silently test nothing.
func Enable(name string, s Spec) error {
	mu.Lock()
	defer mu.Unlock()
	if !names[name] {
		return fmt.Errorf("faultinject: unknown fault point %q (known: %v)", name, namesLocked())
	}
	p := &point{spec: s}
	if s.Prob > 0 && s.Prob < 1 {
		p.rng = rand.New(rand.NewSource(s.Seed))
	}
	active[name] = p
	armed.Store(true)
	return nil
}

// namesLocked lists registered names; callers must hold mu.
func namesLocked() []string {
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Disable disarms one point.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(active, name)
	if len(active) == 0 {
		armed.Store(false)
	}
}

// Reset disarms every point (tests defer this).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active = map[string]*point{}
	armed.Store(false)
	fireHook = nil
}

// SetFireHook installs a test observation callback invoked (under the
// package lock) every time any armed point fires. Reset clears it.
func SetFireHook(fn func(name string)) {
	mu.Lock()
	defer mu.Unlock()
	fireHook = fn
}

// Armed reports whether any fault point is armed — the cheap guard hot
// loops use before calling Fire.
func Armed() bool { return armed.Load() }

// Fire checks the named point. When the point is unarmed (the common
// case) it returns nil after one atomic load. An armed point may sleep
// (Delay), panic (Panic), or return an injected error (Error,
// WorkerKill) whose chain reaches ErrInjected.
func Fire(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	p := active[name]
	hook := fireHook
	mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	s := p.spec
	p.hits++
	if p.hits <= s.After {
		p.mu.Unlock()
		return nil
	}
	if s.Times > 0 && p.fired >= s.Times {
		p.mu.Unlock()
		return nil
	}
	if p.rng != nil && p.rng.Float64() >= s.Prob {
		p.mu.Unlock()
		return nil
	}
	p.fired++
	p.mu.Unlock()
	if hook != nil {
		hook(name)
	}
	switch s.Kind {
	case Delay:
		time.Sleep(s.Delay)
		return nil
	case Panic:
		panic(&InjectedPanic{Point: name})
	case WorkerKill:
		return &errWorkerKill{Point: name}
	default:
		return fmt.Errorf("faultinject: injected error at %s: %w", name, ErrInjected)
	}
}

// EnableFlag arms a fault point from a CLI flag value. Syntax:
//
//	name             inject an error at the point
//	name=kind        kind is error | panic | delay | kill
//	name=delay:50ms  delay faults take the sleep duration after a colon
//
// Unknown point names and kinds report the valid choices.
func EnableFlag(v string) error {
	name, rest, hasKind := strings.Cut(v, "=")
	spec := Spec{Kind: Error}
	if hasKind {
		kindStr, durStr, hasDur := strings.Cut(rest, ":")
		k, err := ParseKind(kindStr)
		if err != nil {
			return err
		}
		spec.Kind = k
		if hasDur {
			d, err := time.ParseDuration(durStr)
			if err != nil {
				return fmt.Errorf("faultinject: bad delay in %q: %w", v, err)
			}
			spec.Delay = d
		} else if k == Delay {
			spec.Delay = 100 * time.Millisecond
		}
	}
	return Enable(name, spec)
}
