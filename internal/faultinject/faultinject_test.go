package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedFireIsNil(t *testing.T) {
	defer Reset()
	name := Register("test.unarmed")
	if Armed() {
		t.Fatal("armed with nothing enabled")
	}
	if err := Fire(name); err != nil {
		t.Fatalf("unarmed fire: %v", err)
	}
}

func TestEnableUnknownName(t *testing.T) {
	defer Reset()
	if err := Enable("test.not-registered", Spec{}); err == nil {
		t.Fatal("expected error for unknown point")
	}
}

func TestErrorFaultChainsToSentinel(t *testing.T) {
	defer Reset()
	name := Register("test.err")
	if err := Enable(name, Spec{Kind: Error}); err != nil {
		t.Fatal(err)
	}
	err := Fire(name)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected chain, got %v", err)
	}
	Disable(name)
	if Armed() {
		t.Fatal("still armed after Disable")
	}
	if err := Fire(name); err != nil {
		t.Fatalf("fire after disable: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	defer Reset()
	name := Register("test.panic")
	if err := Enable(name, Spec{Kind: Panic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not chain to ErrInjected", r)
		}
	}()
	Fire(name)
}

func TestWorkerKillFault(t *testing.T) {
	defer Reset()
	name := Register("test.kill")
	if err := Enable(name, Spec{Kind: WorkerKill}); err != nil {
		t.Fatal(err)
	}
	err := Fire(name)
	if !IsWorkerKill(err) {
		t.Fatalf("want worker-kill order, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("kill order misses ErrInjected chain: %v", err)
	}
}

func TestDelayFault(t *testing.T) {
	defer Reset()
	name := Register("test.delay")
	if err := Enable(name, Spec{Kind: Delay, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Fire(name); err != nil {
		t.Fatalf("delay fire: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

func TestAfterAndTimes(t *testing.T) {
	defer Reset()
	name := Register("test.window")
	if err := Enable(name, Spec{Kind: Error, After: 2, Times: 2}); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 10; i++ {
		if Fire(name) != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired during After window at hit %d", i)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestProbDeterministic(t *testing.T) {
	defer Reset()
	name := Register("test.prob")
	run := func() []bool {
		if err := Enable(name, Spec{Kind: Error, Prob: 0.5, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 40)
		for i := range out {
			out[i] = Fire(name) != nil
		}
		Disable(name)
		return out
	}
	a, b := run(), run()
	var hits int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically-seeded runs", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("prob=0.5 fired %d/%d times", hits, len(a))
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Error, Panic, Delay, WorkerKill} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestFireHook(t *testing.T) {
	defer Reset()
	name := Register("test.hook")
	var seen []string
	SetFireHook(func(n string) { seen = append(seen, n) })
	if err := Enable(name, Spec{Kind: Error}); err != nil {
		t.Fatal(err)
	}
	Fire(name)
	if len(seen) != 1 || seen[0] != name {
		t.Fatalf("hook saw %v", seen)
	}
}
