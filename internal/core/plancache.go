package core

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"time"

	"qfusor/internal/obs"
	"qfusor/internal/sqlengine"
)

// Plan-decision caching (the paper's §6.4.5 "QFusor-cache" direction,
// taken one level up from the wrapper compile cache): the QFusor
// front-end — EXPLAIN probing, DFG construction (Alg. 1), fusible-
// section discovery (Alg. 2), wrapper codegen dispatch and the plan
// rewrite — is pure in (SQL text, catalog contents, engine profile,
// option switches). For repeated queries, the entire optimization
// outcome can therefore be memoized: the rewritten executable plan, the
// wrappers it calls, and the cost-model inputs each fused section
// recorded. A hit skips every front-end phase and goes straight to
// execution.
//
// Soundness comes from three invalidation channels:
//
//  1. Catalog epoch: every DDL/DML/UDF-(re)registration bumps
//     sqlengine.Catalog's epoch; an entry stores the epoch it was
//     planned under and a lookup under any other epoch evicts it.
//  2. Circuit breaker: an entry whose wrapper (or whose query key) has
//     an open circuit is never served — the resilient path decided this
//     plan shape is failing, so it must re-plan (which suppresses the
//     failing wrapper). Fused-path failures also evict eagerly.
//  3. Drift stays out: per-section cost calibration (DriftCal) is
//     deliberately not part of the key or the cached value — a hit
//     recomputes its predicted costs from the live calibration factors,
//     so the drift loop keeps converging across cached executions
//     without ever flipping a cached decision (see sectionCost's note
//     on selection stability).

// Plan-cache metrics (obs.Default). hits/misses split the lookup
// outcomes; evictions counts capacity-driven removals; invalidations
// counts correctness-driven removals (epoch moved, breaker opened,
// fused execution failed, explicit purge).
var (
	mPlanHits  = obs.Default.Counter("qfusor.plancache.hits")
	mPlanMiss  = obs.Default.Counter("qfusor.plancache.misses")
	mPlanEvict = obs.Default.Counter("qfusor.plancache.evictions")
	mPlanInval = obs.Default.Counter("qfusor.plancache.invalidations")
	gPlanSize  = obs.Default.Gauge("qfusor.plancache.size")
)

// DefaultPlanCacheCap bounds the plan cache when no explicit size is
// configured. Entries are whole optimized plans, so a few hundred is
// plenty for realistic repeated-query working sets.
const DefaultPlanCacheCap = 256

// SectionSeed is the cost-model input a cached plan re-seeds its Report
// from on every hit: the section's stable identity plus the *raw*
// (uncalibrated) F(S) estimate. The calibrated prediction is recomputed
// per hit from the live drift factor, keeping the §5.2 feedback loop
// running across cached executions.
type SectionSeed struct {
	Wrapper string  `json:"wrapper"`
	Key     string  `json:"key"`
	RawCost float64 `json:"raw_cost_nanos"`
}

// PlanEntry is one memoized optimization outcome.
type PlanEntry struct {
	// SQL is the normalized query text (whitespace-collapsed).
	SQL string `json:"sql"`
	// Key is the full cache key (engine profile + workers + option
	// fingerprint + normalized SQL).
	Key string `json:"-"`
	// Epoch is the catalog generation the decision was made under.
	Epoch int64 `json:"epoch"`
	// Query is the rewritten executable plan. The tree is read-only
	// after planning (executors never mutate plan nodes), so concurrent
	// executions — including under the morsel executor — share it.
	Query *sqlengine.Query `json:"-"`
	// Sections / Sources / Wrappers mirror the Report of the miss that
	// created the entry.
	Sections int      `json:"sections"`
	Sources  []string `json:"-"`
	Wrappers []string `json:"wrappers,omitempty"`
	// Tiers records, aligned with Wrappers, which execution tier each
	// wrapper was planned onto ("vm", "closure", or "inlined" for the
	// pseudo-wrapper entries of inlined UDFs) — so a cache hit's
	// \analyze output and ledger attribution match a fresh plan's.
	Tiers []string `json:"tiers,omitempty"`
	// Inlined replays the relational-inlining decisions of the miss that
	// created the entry (tier=inlined call sites are baked into Query).
	Inlined []InlineDecision `json:"inlined,omitempty"`
	// WrapperKeys are the breaker keys ("wrapper:<hash>") of Wrappers;
	// an open circuit on any of them disqualifies the entry.
	WrapperKeys []string `json:"-"`
	// Seeds carry the cost-model inputs (see SectionSeed).
	Seeds []SectionSeed `json:"seeds,omitempty"`
	// Hits counts how often this entry was served.
	Hits int64 `json:"hits"`
	// Created / LastUsed timestamp the entry for /debug/plancache.
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
}

// PlanCache is a size-capped LRU of plan decisions. All methods are
// safe for concurrent use; lookups and inserts are O(1).
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *PlanEntry
	byKey   map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64
	inval   int64
}

// NewPlanCache builds a plan cache holding at most cap entries
// (cap <= 0 uses DefaultPlanCacheCap).
func NewPlanCache(cap int) *PlanCache {
	if cap <= 0 {
		cap = DefaultPlanCacheCap
	}
	return &PlanCache{cap: cap, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Cap returns the configured capacity.
func (pc *PlanCache) Cap() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.cap
}

// SetCap resizes the cache, evicting LRU entries if it shrank.
func (pc *PlanCache) SetCap(cap int) {
	if cap <= 0 {
		cap = DefaultPlanCacheCap
	}
	pc.mu.Lock()
	pc.cap = cap
	for pc.ll.Len() > pc.cap {
		pc.removeLocked(pc.ll.Back(), &pc.evicted, mPlanEvict)
	}
	pc.mu.Unlock()
}

// Len returns the number of live entries.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}

// Lookup returns the entry for key if it was planned under the current
// catalog epoch and the admit predicate (nil = always) accepts it. An
// entry from an older epoch — the catalog moved, so every decision in
// it is suspect — or one the predicate rejects (e.g. a wrapper's
// circuit opened) is removed, counted as an invalidation, and reported
// as a miss.
func (pc *PlanCache) Lookup(key string, epoch int64, admit func(*PlanEntry) bool) (*PlanEntry, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byKey[key]
	if !ok {
		pc.misses++
		mPlanMiss.Inc()
		return nil, false
	}
	ent := el.Value.(*PlanEntry)
	if ent.Epoch != epoch || (admit != nil && !admit(ent)) {
		pc.removeLocked(el, &pc.inval, mPlanInval)
		pc.misses++
		mPlanMiss.Inc()
		return nil, false
	}
	pc.ll.MoveToFront(el)
	ent.Hits++
	ent.LastUsed = time.Now()
	pc.hits++
	mPlanHits.Inc()
	return ent, true
}

// Insert memoizes an entry, evicting from the LRU end past capacity.
// Re-inserting an existing key replaces the entry (a concurrent miss on
// the same query may have raced us here; both decisions are equivalent).
func (pc *PlanCache) Insert(ent *PlanEntry) {
	now := time.Now()
	ent.Created, ent.LastUsed = now, now
	pc.mu.Lock()
	if el, ok := pc.byKey[ent.Key]; ok {
		el.Value = ent
		pc.ll.MoveToFront(el)
		n := pc.ll.Len()
		pc.mu.Unlock()
		gPlanSize.Set(int64(n))
		return
	}
	pc.byKey[ent.Key] = pc.ll.PushFront(ent)
	for pc.ll.Len() > pc.cap {
		pc.removeLocked(pc.ll.Back(), &pc.evicted, mPlanEvict)
	}
	n := pc.ll.Len()
	pc.mu.Unlock()
	gPlanSize.Set(int64(n))
}

// Invalidate removes the entry for key (no-op when absent), counting an
// invalidation. Used when a cached plan's fused execution failed: the
// next occurrence must re-plan (and the breaker may suppress the
// failing wrapper when it does).
func (pc *PlanCache) Invalidate(key string) {
	pc.mu.Lock()
	if el, ok := pc.byKey[key]; ok {
		pc.removeLocked(el, &pc.inval, mPlanInval)
	}
	pc.mu.Unlock()
}

// InvalidateWrapper removes every entry whose plan calls the wrapper
// identified by breaker key wk ("wrapper:<hash>"). Driven by the
// resilient path when a wrapper's circuit records failures — a plan
// served from cache must never resurrect a wrapper the breaker is
// holding open.
func (pc *PlanCache) InvalidateWrapper(wk string) int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var doomed []*list.Element
	for el := pc.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*PlanEntry)
		for _, k := range ent.WrapperKeys {
			if k == wk {
				doomed = append(doomed, el)
				break
			}
		}
	}
	for _, el := range doomed {
		pc.removeLocked(el, &pc.inval, mPlanInval)
	}
	return len(doomed)
}

// Purge empties the cache, counting invalidations.
func (pc *PlanCache) Purge() {
	pc.mu.Lock()
	for pc.ll.Len() > 0 {
		pc.removeLocked(pc.ll.Back(), &pc.inval, mPlanInval)
	}
	pc.mu.Unlock()
	gPlanSize.Set(0)
}

// removeLocked unlinks an element, crediting the removal to the given
// local counter and metric. Caller holds pc.mu.
func (pc *PlanCache) removeLocked(el *list.Element, count *int64, metric *obs.Counter) {
	if el == nil {
		return
	}
	ent := el.Value.(*PlanEntry)
	delete(pc.byKey, ent.Key)
	pc.ll.Remove(el)
	*count++
	metric.Inc()
	gPlanSize.Set(int64(pc.ll.Len()))
}

// PlanCacheStats is a point-in-time summary for diagnostics surfaces
// (/debug/plancache, DB.PlanCacheStats, tests).
type PlanCacheStats struct {
	Size          int   `json:"size"`
	Cap           int   `json:"cap"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// Stats returns the cache's cumulative counters. Nil-safe (a disabled
// cache reads as empty).
func (pc *PlanCache) Stats() PlanCacheStats {
	if pc == nil {
		return PlanCacheStats{}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Size: pc.ll.Len(), Cap: pc.cap,
		Hits: pc.hits, Misses: pc.misses,
		Evictions: pc.evicted, Invalidations: pc.inval,
	}
}

// PlanCacheSnapshot is the /debug/plancache payload: the counters plus
// every live entry, most recently used first.
type PlanCacheSnapshot struct {
	PlanCacheStats
	Entries []*PlanEntry `json:"entries"`
}

// Snapshot returns stats plus entry listings (entries are copies — the
// live plan trees are not exposed). Nil-safe.
func (pc *PlanCache) Snapshot() PlanCacheSnapshot {
	if pc == nil {
		return PlanCacheSnapshot{Entries: []*PlanEntry{}}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	snap := PlanCacheSnapshot{
		PlanCacheStats: PlanCacheStats{
			Size: pc.ll.Len(), Cap: pc.cap,
			Hits: pc.hits, Misses: pc.misses,
			Evictions: pc.evicted, Invalidations: pc.inval,
		},
		Entries: []*PlanEntry{},
	}
	for el := pc.ll.Front(); el != nil; el = el.Next() {
		ent := *el.Value.(*PlanEntry)
		ent.Query = nil
		snap.Entries = append(snap.Entries, &ent)
	}
	return snap
}

// normalizeSQL collapses whitespace runs to single spaces and strips a
// trailing semicolon, so trivially reformatted repeats of one query
// share a cache entry. Case is preserved: identifiers resolve
// case-insensitively anyway, and folding would conflate string
// literals.
func normalizeSQL(sql string) string {
	sql = strings.TrimSpace(sql)
	sql = strings.TrimSuffix(sql, ";")
	var b strings.Builder
	b.Grow(len(sql))
	space := false
	for _, r := range sql {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(r)
	}
	return b.String()
}

// optionsFingerprint encodes the technique switches that shape plan
// decisions. The drift calibration and the plan cache's own toggle stay
// out — neither changes what the optimizer would decide.
func optionsFingerprint(o Options) string {
	var b strings.Builder
	flag := func(on bool, c byte) {
		if on {
			b.WriteByte(c)
		}
	}
	flag(o.Fusion, 'F')
	flag(o.ScalarOnly, 'S')
	flag(o.Offload, 'O')
	flag(o.Reorder, 'R')
	flag(o.AggFusion, 'A')
	flag(o.Cache, 'C')
	// Tier pinning changes which execution tier a cached plan's wrappers
	// carry, so forced tiers get their own cache partitions ("auto"/""
	// stays unmarked — the default decision).
	flag(o.Tier == "vm", 'V')
	flag(o.Tier == "closure", 'v')
	flag(o.Tier == "inline", 'I')
	return b.String()
}

// planCacheKey derives the full cache key for sql against an engine:
// profile identity (name encodes the execution model + transport),
// resolved worker count (parallelism shifts cost-model terms and
// partitioning choices), option fingerprint, then the normalized text.
// The catalog epoch is deliberately *not* part of the key string — it
// is checked at lookup so a stale entry is detected and evicted rather
// than stranded unreachable.
func planCacheKey(eng *sqlengine.Engine, o Options, sql string) string {
	var b strings.Builder
	b.WriteString(eng.Name)
	b.WriteByte('/')
	b.WriteString(eng.Mode.String())
	b.WriteByte('/')
	// Workers resolves 0=auto to the live core count.
	b.WriteString(strconv.Itoa(eng.Workers()))
	b.WriteByte('/')
	b.WriteString(optionsFingerprint(o))
	b.WriteByte('|')
	b.WriteString(normalizeSQL(sql))
	return b.String()
}
