package core_test

// Integration tests for the relational-inlining tier: a fully inlined
// query must produce engine-native results while performing zero FFI
// calls, never touching the wrapper cache or arming the UDF breaker —
// even when the engine side fails mid-query. Plus plan-cache replay of
// the inlining decision and the epoch fence on UDF redefinition.

import (
	"context"
	"strings"
	"testing"

	"qfusor/internal/core"
	"qfusor/internal/engines"
	"qfusor/internal/faultinject"
	"qfusor/internal/obs"
)

const inlineTestUDFs = `
@scalarudf
def boost(x: int) -> int:
    if x is None:
        return None
    return x * 2 + 1

@scalarudf
def shout(s: str) -> str:
    if s is None:
        return None
    return s.strip().upper()
`

// inlineTestDB launches a fresh Monet instance with guarded, inlinable
// UDFs over a small table that includes NULLs in both columns.
func inlineTestDB(t *testing.T) *engines.Instance {
	t.Helper()
	in := engines.Launch(engines.Config{Profile: engines.Monet, JIT: true})
	if err := in.Define(inlineTestUDFs); err != nil {
		t.Fatal(err)
	}
	if err := in.Eng.Exec("CREATE TABLE nums (id int, n int, s string)"); err != nil {
		t.Fatal(err)
	}
	if err := in.Eng.Exec(`INSERT INTO nums VALUES
		(1, 10, '  alpha  '), (2, NULL, 'beta'), (3, -4, NULL),
		(4, 7, 'Gamma Ray'), (5, 0, '')`); err != nil {
		t.Fatal(err)
	}
	return in
}

// TestInlinedQueryZeroFFI is the tier's core regression contract: an
// inlined query performs zero FFI calls (ledger counter and the source
// UDF's call stats both stay at zero) and never arms the UDF breaker —
// including after an induced engine-side error, which on the fusion
// ladder would count against a wrapper's circuit.
func TestInlinedQueryZeroFFI(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	in := inlineTestDB(t)
	defer func() { in.QF.Opts.Tier = "auto" }()
	const sql = "SELECT id, boost(n) AS b, shout(s) AS u FROM nums ORDER BY id"

	native, err := in.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	boost, ok := in.Eng.Catalog.UDF("boost")
	if !ok {
		t.Fatal("boost not in catalog")
	}
	stats0 := boost.Stats.Snapshot()
	breaker0 := in.QF.Breaker.Snapshot()

	in.QF.Opts.Tier = "inline"
	q, rep, err := in.QF.Process(in.Eng, sql)
	if err != nil {
		t.Fatal(err)
	}
	if q.HasUDF(in.Eng.Catalog) {
		t.Fatalf("rewritten query still references UDFs:\n%s", q.Explain())
	}
	sites := 0
	for _, d := range rep.Inlined {
		sites += d.Sites
	}
	if sites != 2 {
		t.Fatalf("want 2 inlined sites, got %d (%+v)", sites, rep.Inlined)
	}
	wantTier := false
	for _, tier := range rep.Tiers {
		if tier == "inlined" {
			wantTier = true
		}
	}
	if !wantTier {
		t.Fatalf("tier=inlined missing from report tiers %v", rep.Tiers)
	}

	led := obs.NewLedger()
	ctx := obs.ContextWithLedger(context.Background(), led)
	res, err := in.Eng.ExecuteCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderTable(res), renderTable(native); got != want {
		t.Fatalf("inlined result diverges from native:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if n := led.Snapshot().FFICalls; n != 0 {
		t.Fatalf("inlined query crossed the FFI %d times", n)
	}
	if d := boost.Stats.Snapshot().Sub(stats0); d.Calls != 0 || d.InRows != 0 {
		t.Fatalf("inlined query invoked the source UDF: %+v", d)
	}

	// Induced engine-side failure: the error must surface without a
	// single FFI call and without touching any breaker circuit.
	if err := faultinject.Enable("morsel.worker", faultinject.Spec{
		Kind: faultinject.Error}); err != nil {
		t.Fatal(err)
	}
	led2 := obs.NewLedger()
	_, err = in.Eng.ExecuteCtx(obs.ContextWithLedger(context.Background(), led2), q)
	faultinject.Reset()
	if err == nil {
		t.Fatal("injected morsel fault did not surface")
	}
	if n := led2.Snapshot().FFICalls; n != 0 {
		t.Fatalf("failed inlined query crossed the FFI %d times", n)
	}
	if d := boost.Stats.Snapshot().Sub(stats0); d.Calls != 0 {
		t.Fatalf("failed inlined query invoked the source UDF: %+v", d)
	}
	if b := in.QF.Breaker.Snapshot(); b != breaker0 {
		t.Fatalf("inlined query touched the breaker: %+v -> %+v", breaker0, b)
	}
}

// TestInlinePlanCacheReplay: a warm query replays the recorded inlining
// decision from the plan cache instead of re-running the pass.
func TestInlinePlanCacheReplay(t *testing.T) {
	in := inlineTestDB(t)
	defer func() { in.QF.Opts.Tier = "auto" }()
	in.QF.Opts.Tier = "inline"
	const sql = "SELECT id, boost(n) AS b FROM nums ORDER BY id"

	_, cold, err := in.QF.Process(in.Eng, sql)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanCache != "miss" {
		t.Fatalf("cold run plancache = %q", cold.PlanCache)
	}
	_, warm, err := in.QF.Process(in.Eng, sql)
	if err != nil {
		t.Fatal(err)
	}
	if warm.PlanCache != "hit" {
		t.Fatalf("warm run plancache = %q", warm.PlanCache)
	}
	if len(warm.Inlined) != len(cold.Inlined) || len(warm.Inlined) == 0 {
		t.Fatalf("inline decisions not replayed: cold=%+v warm=%+v",
			cold.Inlined, warm.Inlined)
	}
	for i := range warm.Inlined {
		if warm.Inlined[i] != cold.Inlined[i] {
			t.Fatalf("decision %d diverged on replay: %+v vs %+v",
				i, cold.Inlined[i], warm.Inlined[i])
		}
	}
}

// TestInlineEpochFence: redefining a UDF flushes its cached inlining
// classification exactly like the closure/VM compile caches, so a body
// swap to a non-inlinable form immediately routes the query back onto
// the fusion ladder with correct results.
func TestInlineEpochFence(t *testing.T) {
	in := inlineTestDB(t)
	defer func() { in.QF.Opts.Tier = "auto" }()
	in.QF.Opts.Tier = "inline"
	const sql = "SELECT id, boost(n) AS b FROM nums ORDER BY id"

	res1, err := in.QueryFused(sql)
	if err != nil {
		t.Fatal(err)
	}
	want := renderTable(res1)

	// Same semantics, but the loop makes it structurally opaque.
	if err := in.Define(`
@scalarudf
def boost(x: int) -> int:
    if x is None:
        return None
    acc = x
    i = 0
    while i < 1:
        acc = acc * 2 + 1
        i = i + 1
    return acc
`); err != nil {
		t.Fatal(err)
	}
	_, rep, err := in.QF.Process(in.Eng, sql)
	if err != nil {
		t.Fatal(err)
	}
	var d *core.InlineDecision
	for i := range rep.Inlined {
		if rep.Inlined[i].UDF == "boost" {
			d = &rep.Inlined[i]
		}
	}
	if d == nil || d.Inlinable {
		t.Fatalf("redefined boost still classified inlinable: %+v", rep.Inlined)
	}
	if !strings.Contains(d.Reason, "while loop") {
		t.Fatalf("unexpected opacity reason %q", d.Reason)
	}
	res2, err := in.QueryFused(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderTable(res2); got != want {
		t.Fatalf("post-redefinition result diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
