package core

import (
	"fmt"
	"strings"

	"qfusor/internal/sqlengine"
)

// RenderSQL implements the paper's rewrite path 1 (§5.4): the rewritten
// plan is expressed as a standard SQL statement that calls the fused
// wrapper UDFs as table functions, suitable for re-submission to the
// engine. executable reports whether the rendering round-trips through
// this engine's dialect (join-heavy plans render display-SQL only).
func RenderSQL(q *sqlengine.Query) (sql string, executable bool) {
	r := &sqlRenderer{executable: true}
	var b strings.Builder
	if len(q.CTEs) > 0 {
		b.WriteString("WITH ")
		for i, cte := range q.CTEs {
			if i > 0 {
				b.WriteString(",\n     ")
			}
			names := cte.Plan.Schema.Names()
			fmt.Fprintf(&b, "%s(%s) AS (%s)", cte.Name, strings.Join(names, ", "),
				r.render(cte.Plan))
		}
		b.WriteString("\n")
	}
	b.WriteString(r.render(q.Root))
	return b.String(), r.executable
}

type sqlRenderer struct {
	executable bool
	aliasN     int
}

func (r *sqlRenderer) alias() string {
	r.aliasN++
	return fmt.Sprintf("__t%d", r.aliasN)
}

// render emits a SELECT-able expression for the plan node.
func (r *sqlRenderer) render(p *sqlengine.Plan) string {
	switch p.Op {
	case sqlengine.OpScan, sqlengine.OpCTERef:
		return "SELECT * FROM " + p.Table
	case sqlengine.OpProject:
		if len(p.Children) == 0 {
			return "SELECT " + r.items(p)
		}
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s",
			r.items(p), r.render(p.Children[0]), r.alias())
	case sqlengine.OpFilter:
		return fmt.Sprintf("SELECT * FROM (%s) AS %s WHERE %s",
			r.render(p.Children[0]), r.alias(), exprSQL(p.Exprs[0]))
	case sqlengine.OpFused, sqlengine.OpFusedAgg, sqlengine.OpTableFunc:
		inner := "SELECT * FROM __empty"
		if len(p.Children) > 0 {
			inner = r.render(p.Children[0])
		}
		if p.Op == sqlengine.OpFused && len(p.TFArgs) > 0 {
			// Narrow the input to the wrapper's argument columns.
			cols := make([]string, len(p.TFArgs))
			for i, a := range p.TFArgs {
				cols[i] = exprSQL(a)
			}
			inner = fmt.Sprintf("SELECT %s FROM (%s) AS %s",
				strings.Join(cols, ", "), inner, r.alias())
		}
		if p.Op == sqlengine.OpFusedAgg {
			// Keys are computed engine-side; the table-function call form
			// cannot carry them — display only.
			r.executable = false
		}
		extras := ""
		for _, a := range p.TFArgs {
			if p.Op == sqlengine.OpTableFunc {
				extras += ", " + exprSQL(a)
			}
		}
		return fmt.Sprintf("SELECT * FROM %s((%s)%s) AS %s",
			p.UDF.Name, inner, extras, r.alias())
	case sqlengine.OpExpand:
		// Expand UDFs appear in SELECT position.
		keeps := make([]string, 0, len(p.KeepCols)+1)
		child := p.Children[0]
		for _, ci := range p.KeepCols {
			keeps = append(keeps, child.Schema[ci].Name)
		}
		args := make([]string, len(p.TFArgs))
		for i, a := range p.TFArgs {
			args[i] = exprSQL(a)
		}
		keeps = append(keeps, fmt.Sprintf("%s(%s) AS %s",
			p.UDF.Name, strings.Join(args, ", "), p.Schema[len(p.KeepCols)].Name))
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s",
			strings.Join(keeps, ", "), r.render(child), r.alias())
	case sqlengine.OpAggregate:
		var items []string
		for i, k := range p.GroupBy {
			items = append(items, fmt.Sprintf("%s AS %s", exprSQL(k), p.Schema[i].Name))
		}
		for i, a := range p.Aggs {
			call := a.Name + "(*)"
			if !a.Star {
				args := make([]string, len(a.Args))
				for j, e := range a.Args {
					args[j] = exprSQL(e)
				}
				call = a.Name + "(" + strings.Join(args, ", ") + ")"
			}
			items = append(items, fmt.Sprintf("%s AS %s", call, p.Schema[len(p.GroupBy)+i].Name))
		}
		sql := fmt.Sprintf("SELECT %s FROM (%s) AS %s",
			strings.Join(items, ", "), r.render(p.Children[0]), r.alias())
		if len(p.GroupBy) > 0 {
			keys := make([]string, len(p.GroupBy))
			for i, k := range p.GroupBy {
				keys[i] = exprSQL(k)
			}
			sql += " GROUP BY " + strings.Join(keys, ", ")
		}
		return sql
	case sqlengine.OpSort:
		keys := make([]string, len(p.SortItems))
		for i, s := range p.SortItems {
			keys[i] = exprSQL(s.Expr)
			if s.Desc {
				keys[i] += " DESC"
			}
		}
		return fmt.Sprintf("%s ORDER BY %s", r.render(p.Children[0]), strings.Join(keys, ", "))
	case sqlengine.OpDistinct:
		return fmt.Sprintf("SELECT DISTINCT * FROM (%s) AS %s",
			r.render(p.Children[0]), r.alias())
	case sqlengine.OpLimit:
		sql := fmt.Sprintf("%s LIMIT %d", r.render(p.Children[0]), p.LimitN)
		if p.OffsetN > 0 {
			sql += fmt.Sprintf(" OFFSET %d", p.OffsetN)
		}
		return sql
	case sqlengine.OpUnion:
		op := "UNION"
		if p.UnionAll {
			op = "UNION ALL"
		}
		return fmt.Sprintf("%s %s %s", r.render(p.Children[0]), op, r.render(p.Children[1]))
	case sqlengine.OpJoin:
		// Qualified-name recovery across joins is lossy; render display
		// SQL only.
		r.executable = false
		kind := p.JoinKind
		if kind == "" {
			kind = "CROSS"
		}
		on := ""
		if p.JoinOn != nil {
			on = " ON " + exprSQL(p.JoinOn)
		}
		return fmt.Sprintf("SELECT * FROM (%s) AS %s %s JOIN (%s) AS %s%s",
			r.render(p.Children[0]), r.alias(), kind,
			r.render(p.Children[1]), r.alias(), on)
	}
	r.executable = false
	return "SELECT /* unsupported operator " + p.Op.String() + " */ *"
}

func (r *sqlRenderer) items(p *sqlengine.Plan) string {
	out := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = exprSQL(e)
		if i < len(p.Schema) && p.Schema[i].Name != "" {
			out[i] += " AS " + p.Schema[i].Name
		}
	}
	return strings.Join(out, ", ")
}

// exprSQL renders a bound expression back to SQL text (Lit.String
// handles NULL spelling and quote doubling).
func exprSQL(e sqlengine.SQLExpr) string { return e.String() }
