package core

import "sync/atomic"

// CostModel implements §5.2: hybrid cost-based + rule-based decisions.
// UDF costs come from the stateful statistics dictionary (ffi.Stats,
// learned across executions); wrapper costs are concrete and measured;
// relational costs use engine-style per-tuple constants. All units are
// nanoseconds per tuple.
type CostModel struct {
	// WIn / WOut: wrapper cost per tuple for converting one value into /
	// out of the UDF environment (Table 1's W_in, W_out).
	WIn  float64
	WOut float64
	// CRel: per-tuple engine-side cost of relational operators (C_r).
	CRel map[OpKind]float64
	// UDFFactor: relational operators executed inside the UDF
	// environment cost CRel * UDFFactor (C_ru).
	UDFFactor float64
	// UDFDefault: per-row cost assumed for a UDF with no statistics and
	// no developer-supplied estimate (the cold-start case).
	UDFDefault float64
	// CrossCost: fixed cost of one engine↔UDF boundary crossing
	// (per batch for vectorized transports, amortized here per tuple).
	CrossCost float64
	// ScaleEff: marginal efficiency of each morsel partition beyond the
	// first (1.0 = perfect scaling; merge overhead and skew keep it
	// below that in practice).
	ScaleEff float64
	// MorselRows: rows per morsel in the executor — inputs smaller than
	// one morsel never partition, so their cost is unchanged.
	MorselRows float64

	// WVMIn / WVMOut: per-tuple boundary cost when a fused section runs
	// on the vectorized VM tier — column values load unboxed into
	// registers (no clone, no per-call frame) and outputs append without
	// marshalling, so both sit well below WIn/WOut. The gap is the VM
	// tier's modeled advantage.
	WVMIn  float64
	WVMOut float64

	// Drift is the per-section calibration store fed by measured fused
	// execution costs (see drift.go); each realized section's recorded
	// prediction is scaled by the learned factor so repeated queries
	// converge on reality. Nil disables calibration (factor 1.0
	// everywhere). A pointer keeps the struct copyable — copies share
	// the learned state, like CRel.
	Drift *DriftCal

	// workers is the executor parallelism last reported via SetWorkers
	// (0 until a query runs, which keeps costs identical to the serial
	// model — important for tests and cold estimates). Accessed
	// atomically (plain int64 keeps the struct copyable for tests).
	workers int64
}

// SetWorkers records the executor's worker count so per-row costs are
// divided by the expected morsel speedup for inputs large enough to
// partition.
func (cm *CostModel) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&cm.workers, int64(n))
}

// speedup returns the modeled parallel speedup for an operator over the
// given row count: partitions = min(workers, rows/MorselRows), each
// extra partition contributing ScaleEff of a worker.
func (cm *CostModel) speedup(rows float64) float64 {
	return 1 + float64(cm.partitions(rows)-1)*cm.ScaleEff
}

// partitions returns how many morsel partitions the executor would use
// for the given row count under the reported worker budget.
func (cm *CostModel) partitions(rows float64) int64 {
	w := atomic.LoadInt64(&cm.workers)
	if w <= 1 || cm.ScaleEff <= 0 || cm.MorselRows <= 0 {
		return 1
	}
	parts := int64(rows / cm.MorselRows)
	if parts < 1 {
		parts = 1
	}
	if parts > w {
		parts = w
	}
	return parts
}

// DefaultCostModel returns constants calibrated against the ffi
// transports on this substrate.
func DefaultCostModel() *CostModel {
	return &CostModel{
		WIn:  60,
		WOut: 80,
		CRel: map[OpKind]float64{
			KRelExpr:      25,
			KRelFilter:    15,
			KRelAggNative: 20,
			KRelGroupBy:   60,
			KRelDistinct:  50,
		},
		UDFFactor:  3,
		UDFDefault: 800,
		CrossCost:  200,
		ScaleEff:   0.7,
		MorselRows: 2048,
		WVMIn:      12,
		WVMOut:     18,
		Drift:      NewDriftCal(),
	}
}

// VMAdvantage models the per-section saving (in nanoseconds) of
// running a fused section on the VM tier instead of the closure tier:
// every row's input conversions drop from WIn to WVMIn per external
// input and its output conversion from WOut to WVMOut. Positive means
// the VM tier wins (§5.2 extended with the tier term). Bailing rows
// erode the saving at run time; selection stays optimistic and the
// tier metrics expose the reality.
func (cm *CostModel) VMAdvantage(rows float64, extIn int) float64 {
	if rows < 1 {
		rows = 1
	}
	return rows * ((cm.WIn-cm.WVMIn)*float64(max(1, extIn)) + (cm.WOut - cm.WVMOut))
}

// InlineAdvantage models the per-site saving (in nanoseconds) of
// relationally inlining a scalar UDF call instead of running it behind
// the FFI: every row stops paying input conversion per argument, the
// output conversion, the UDF's own per-row interpreter cost (learned
// from statistics, or declared, or the cold default) and — amortized —
// a boundary crossing, and instead pays engine-side expression
// evaluation proportional to the inlined template's node count.
// Positive means inlining wins (§5.2 extended with the inline term —
// the FFI cost of an inlined section is zero by construction). Small
// templates therefore inline at any cardinality, Froid-style, while a
// template near the node budget can still lose to a cheap learned UDF.
func (cm *CostModel) InlineAdvantage(rows float64, args, ops int, udfNanos float64) float64 {
	if rows < 1 {
		rows = 1
	}
	if udfNanos <= 0 {
		udfNanos = cm.UDFDefault
	}
	return rows*(cm.WIn*float64(max(1, args))+cm.WOut+udfNanos-cm.relRowCost(KRelExpr)*float64(max(1, ops))) + cm.CrossCost
}

// udfRowCost returns the learned (or declared, or default) per-row
// processing cost of a UDF node.
func (cm *CostModel) udfRowCost(n *DFGNode) float64 {
	if n.UDF == nil {
		return cm.UDFDefault
	}
	if n.UDF.Stats.InRows.Load() > 0 {
		c := n.UDF.Stats.NanosPerRow() - n.UDF.Stats.WrapNanosPerRow()
		if c > 0 {
			return c
		}
	}
	if n.UDF.EstCost > 0 {
		return n.UDF.EstCost
	}
	return cm.UDFDefault
}

// relRowCost returns the engine-side per-tuple cost of a relational op.
func (cm *CostModel) relRowCost(k OpKind) float64 {
	if c, ok := cm.CRel[k]; ok {
		return c
	}
	return 25
}

// Single returns F({v}): the cost of executing v unfused.
func (cm *CostModel) Single(n *DFGNode) float64 {
	rows := n.Rows
	if rows < 1 {
		rows = 1
	}
	uses := float64(max(1, n.Uses))
	switch {
	case n.Kind.IsUDF():
		// Each isolated UDF pays wrapper input conversion per argument,
		// output conversion per produced value, and a boundary crossing
		// — once per (unfused) use of the shared call. Morsel execution
		// spreads the per-row work across partitions but pays one
		// boundary crossing per partition.
		return uses * (rows*(cm.WIn*float64(max(1, len(n.In)))+cm.WOut*n.Sel*float64(max(1, len(n.Out)))+cm.udfRowCost(n))/cm.speedup(rows) + cm.CrossCost*float64(cm.partitions(rows)))
	default:
		return rows * cm.relRowCost(n.Kind) / cm.speedup(rows)
	}
}

// Fused returns F(S) for a (closed) section: the fused wrapper converts
// the section's external inputs once, runs every UDF at its processing
// cost, executes offloaded relational operators at C_ru, and converts
// only the final outputs back.
func (cm *CostModel) Fused(nodes []*DFGNode, extIn, extOut int, entryRows float64) float64 {
	if entryRows < 1 {
		entryRows = 1
	}
	// Fused wrappers run under the same morsel executor (per-worker
	// interpreter clones), so per-row terms scale with the entry rows'
	// speedup while each partition pays its own boundary crossing.
	sp := cm.speedup(entryRows)
	cost := entryRows*cm.WIn*float64(extIn)/sp + cm.CrossCost*float64(cm.partitions(entryRows))
	outRows := entryRows
	for _, n := range nodes {
		rows := n.Rows
		if rows < 1 {
			rows = 1
		}
		if n.Kind.IsUDF() {
			cost += rows * cm.udfRowCost(n) / sp
		} else if n.Kind == KRelGroupBy {
			// Offloaded through the engine-FFI: engine cost, no penalty.
			cost += rows * cm.relRowCost(n.Kind) / sp
		} else {
			cost += rows * cm.relRowCost(n.Kind) * cm.UDFFactor / sp
		}
		if n.Sel > 0 {
			outRows = rows * n.Sel
		}
	}
	// Final output conversion: one boundary crossing per produced row.
	// (Per-column final materialization is paid identically by the
	// unfused plan, so only the single crossing differentiates.)
	_ = extOut
	cost += outRows * cm.WOut / sp
	return cost
}

// ShouldOffload evaluates the Table 1 inequality for a relational
// operator r considered for execution inside the UDF environment:
//
//	Σ_u |u|·(W_in + W_out·σ_u)  −  |u_f|·(W_in + W_out·σ_uf)
//	        >  |r|·(C_ru·σ_r − C_r·σ_r)
//
// The left side is the wrapper saving of fusing the N affected UDFs
// into one; the right side the loss of running r in the UDF environment
// instead of the engine. If the right side is negative (a gain), r is
// always offloaded.
func (cm *CostModel) ShouldOffload(r *DFGNode, udfs []*DFGNode, fusedRows, fusedSel float64) bool {
	var save float64
	for _, u := range udfs {
		rows := u.Rows
		if rows < 1 {
			rows = 1
		}
		save += rows * (cm.WIn + cm.WOut*u.Sel)
	}
	if fusedRows < 1 {
		fusedRows = 1
	}
	save -= fusedRows * (cm.WIn + cm.WOut*fusedSel)
	rRows := r.Rows
	if rRows < 1 {
		rRows = 1
	}
	cr := cm.relRowCost(r.Kind)
	loss := rRows * (cr*cm.UDFFactor*r.Sel - cr*r.Sel)
	if loss <= 0 {
		return true
	}
	return save > loss
}

// Heuristics (§5.2.4) — the cold-start rules applied when statistics
// are missing or the engine is purely rule-based.

// HeuristicFuseFilter: fuse a filter with adjacent UDFs unless it is
// highly selective below them (in which case reordering it engine-side
// first is better — that is F3's job, not fusion's).
func HeuristicFuseFilter(sel float64, beforeUDFs bool) bool {
	if beforeUDFs {
		// A pre-filter that drops most rows should run in the engine
		// first (push-down); one that keeps ≥80% can ride along fused.
		return sel >= 0.8
	}
	// Post-UDF filters always save output conversions when fused.
	return true
}

// HeuristicFuseDistinct: fuse DISTINCT only when it is highly selective
// (removes more than ~90% of its input).
func HeuristicFuseDistinct(sel float64) bool { return sel <= 0.1 }

// HeuristicFuseGroupBy: group-bys fuse whenever the engine FFI is
// available (it is, on this substrate).
func HeuristicFuseGroupBy() bool { return true }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
