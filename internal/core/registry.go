// Package core implements QFusor itself: the UDF registration mechanism
// (§4.1), the data-flow-graph construction over engine plans (§5.1,
// Alg. 1), the fusible-section discovery dynamic program (§5.2, Alg. 2),
// the hybrid cost model (Table 1), the TF1–TF8 fused-wrapper code
// generator with relational-operator offloading (§5.3, Tables 2–3), and
// the query rewriter (§5.4).
package core

import (
	"fmt"
	"strings"
	"sync"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/pylite"
	"qfusor/internal/sqlengine"
)

// UDFSpec describes one UDF being registered: the developer-facing
// metadata that the paper's decorators (@scalarudf, ...) carry.
type UDFSpec struct {
	Name     string
	Kind     ffi.UDFKind
	In       []data.Kind
	Out      []data.Kind
	OutNames []string
	Params   []string
	// Cost optionally supplies CREATE FUNCTION ... COST metadata
	// (nanoseconds per row).
	Cost float64
}

// Registry is the UDF registration mechanism: it owns a PyLite runtime,
// executes UDF sources into it, wraps functions per their specs and
// registers the resulting C-UDF equivalents into engine catalogs.
type Registry struct {
	RT *pylite.Interp

	mu   sync.Mutex
	udfs map[string]*ffi.UDF
	srcs []string
}

// NewRegistry creates a registry whose runtime JIT-compiles functions
// after hotThreshold interpreted calls (0 disables the tracing JIT —
// the "native CPython" baseline).
func NewRegistry(hotThreshold int) *Registry {
	rt := pylite.NewInterp()
	rt.HotThreshold = hotThreshold
	if err := rt.Exec(helperSource); err != nil {
		// The helper module is a compile-time constant; failing to load
		// it is a programming error.
		panic(fmt.Sprintf("core: helper module: %v", err))
	}
	return &Registry{RT: rt, udfs: make(map[string]*ffi.UDF)}
}

// Define executes UDF source code in the runtime (the developer's
// module: imports, helpers, and the decorated functions/classes). It
// also auto-registers any definitions carrying UDF decorators.
func (r *Registry) Define(src string) error {
	mod, err := pylite.Parse(src)
	if err != nil {
		return err
	}
	if err := r.RT.RunModule(mod); err != nil {
		return err
	}
	r.mu.Lock()
	r.srcs = append(r.srcs, src)
	r.mu.Unlock()
	// Auto-registration from decorators + annotations.
	for _, st := range mod.Body {
		spec, ok := specFromDecorators(st)
		if !ok {
			continue
		}
		if _, err := r.Register(spec); err != nil {
			return err
		}
	}
	return nil
}

// specFromDecorators derives a UDFSpec from @scalarudf-style decorators
// and type annotations.
func specFromDecorators(st pylite.Stmt) (UDFSpec, bool) {
	kindOf := func(decorators []string) (ffi.UDFKind, bool) {
		for _, d := range decorators {
			switch strings.ToLower(d) {
			case "scalarudf":
				return ffi.Scalar, true
			case "aggregateudf":
				return ffi.Aggregate, true
			case "tableudf":
				return ffi.Table, true
			case "expandudf":
				return ffi.Expand, true
			}
		}
		return 0, false
	}
	switch def := st.(type) {
	case *pylite.FuncDef:
		kind, ok := kindOf(def.Decorators)
		if !ok {
			return UDFSpec{}, false
		}
		spec := UDFSpec{Name: def.Name, Kind: kind}
		for _, p := range def.Params {
			spec.Params = append(spec.Params, p.Name)
			k := data.KindString
			if p.Annotation != "" {
				if kk, err := data.KindFromName(p.Annotation); err == nil {
					k = kk
				}
			}
			spec.In = append(spec.In, k)
		}
		out := data.KindString
		if def.Returns != "" {
			if kk, err := data.KindFromName(def.Returns); err == nil {
				out = kk
			}
		}
		spec.Out = []data.Kind{out}
		return spec, true
	case *pylite.ClassDef:
		kind, ok := kindOf(def.Decorators)
		if !ok {
			return UDFSpec{}, false
		}
		return UDFSpec{Name: def.Name, Kind: kind, Out: []data.Kind{data.KindFloat}}, true
	}
	return UDFSpec{}, false
}

// Register wraps an already-defined function per its spec. This is the
// paper's wrapper-generation step: the produced ffi.UDF is the
// "compiled shared library" an engine's CREATE FUNCTION points at.
func (r *Registry) Register(spec UDFSpec) (*ffi.UDF, error) {
	fn, ok := r.RT.Global(spec.Name)
	if !ok {
		return nil, fmt.Errorf("core: UDF %s is not defined in the runtime", spec.Name)
	}
	if len(spec.Out) == 0 {
		spec.Out = []data.Kind{data.KindString}
	}
	u := &ffi.UDF{
		Name:     spec.Name,
		Kind:     spec.Kind,
		Params:   spec.Params,
		InKinds:  spec.In,
		OutKinds: spec.Out,
		OutNames: spec.OutNames,
		Fn:       fn,
		RT:       r.RT,
		EstCost:  spec.Cost,
	}
	r.mu.Lock()
	r.udfs[strings.ToLower(spec.Name)] = u
	r.mu.Unlock()
	return u, nil
}

// RegisterFused registers a fusion-generated wrapper (not exposed via
// decorators; called by the code generator).
func (r *Registry) RegisterFused(u *ffi.UDF) {
	r.mu.Lock()
	r.udfs[strings.ToLower(u.Name)] = u
	r.mu.Unlock()
}

// UDF returns a registered UDF.
func (r *Registry) UDF(name string) (*ffi.UDF, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.udfs[strings.ToLower(name)]
	return u, ok
}

// UDFs lists all registered UDFs.
func (r *Registry) UDFs() []*ffi.UDF {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*ffi.UDF, 0, len(r.udfs))
	for _, u := range r.udfs {
		out = append(out, u)
	}
	return out
}

// Attach issues the CREATE FUNCTION statements: every registered UDF
// becomes visible in the engine's catalog.
func (r *Registry) Attach(eng *sqlengine.Engine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range r.udfs {
		eng.Catalog.PutUDF(u)
	}
}

// Sources returns the module sources defined so far (used to clone a
// registry for another engine instance).
func (r *Registry) Sources() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.srcs...)
}

// Clone builds a fresh registry (own runtime, own stats) with the same
// sources and specs — each engine instance gets an isolated UDF
// environment, like separate database processes would.
func (r *Registry) Clone(hotThreshold int) (*Registry, error) {
	nr := NewRegistry(hotThreshold)
	for _, src := range r.Sources() {
		if err := nr.Define(src); err != nil {
			return nil, err
		}
	}
	// Re-register manually registered specs that decorators didn't cover.
	r.mu.Lock()
	specs := make([]UDFSpec, 0, len(r.udfs))
	for _, u := range r.udfs {
		if u.Fused {
			continue
		}
		specs = append(specs, UDFSpec{Name: u.Name, Kind: u.Kind, In: u.InKinds,
			Out: u.OutKinds, OutNames: u.OutNames, Params: u.Params, Cost: u.EstCost})
	}
	r.mu.Unlock()
	for _, spec := range specs {
		if _, ok := nr.UDF(spec.Name); ok {
			continue
		}
		if _, err := nr.Register(spec); err != nil {
			return nil, err
		}
	}
	return nr, nil
}
