package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// qgen generates random UDF queries over the fixture's people table.
type qgen struct {
	r *rand.Rand
}

// scalarChain emits a random nesting of scalar UDFs over a column.
func (g *qgen) scalarChain() (expr string, kind byte) {
	strFns := []string{"upname", "firstword", "cleandate"}
	switch g.r.Intn(4) {
	case 0: // int chain over age
		e := "age"
		for d := 0; d <= g.r.Intn(2); d++ {
			e = "addten(" + e + ")"
		}
		return e, 'i'
	case 1: // string chain over name
		e := "name"
		for d := 0; d <= g.r.Intn(3); d++ {
			e = strFns[g.r.Intn(len(strFns))] + "(" + e + ")"
		}
		return e, 's'
	case 2: // string chain over city
		e := "city"
		if g.r.Intn(2) == 0 {
			e = "upname(" + e + ")"
		}
		return e, 's'
	default: // date cleansing over joined
		return "cleandate(joined)", 's'
	}
}

func (g *qgen) predicate() string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("addten(age) > %d", 20+g.r.Intn(50))
	case 1:
		return "upname(city) != 'XXZY'"
	case 2:
		return fmt.Sprintf("cleandate(joined) >= '20%02d-01-01'", 17+g.r.Intn(6))
	default:
		return fmt.Sprintf("age %s %d AND firstword(name) IS NOT NULL",
			[]string{"<", ">", ">="}[g.r.Intn(3)], 20+g.r.Intn(30))
	}
}

// generate builds one SQL query: projection / filter / optional expand /
// optional aggregation over random UDF chains.
func (g *qgen) generate() string {
	var b strings.Builder
	useAgg := g.r.Intn(3) == 0
	useExpand := !useAgg && g.r.Intn(3) == 0
	useWhere := g.r.Intn(2) == 0

	b.WriteString("SELECT ")
	if useAgg {
		key, _ := g.scalarChain()
		aggArg, kind := g.scalarChain()
		agg := "COUNT(*)"
		switch {
		case kind == 'i' && g.r.Intn(2) == 0:
			agg = "SUM(" + aggArg + ")"
		case kind == 's' && g.r.Intn(2) == 0:
			agg = "strjoin(" + aggArg + ")"
		}
		fmt.Fprintf(&b, "%s AS k, %s AS v FROM people", key, agg)
		if useWhere {
			b.WriteString(" WHERE " + g.predicate())
		}
		b.WriteString(" GROUP BY k")
		return b.String()
	}
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		e, _ := g.scalarChain()
		fmt.Fprintf(&b, "%s AS c%d", e, i)
	}
	if useExpand {
		fmt.Fprintf(&b, ", explode(upname(name)) AS w")
	}
	b.WriteString(" FROM people")
	if useWhere {
		b.WriteString(" WHERE " + g.predicate())
	}
	return b.String()
}

// TestRandomQueryFusionParityProperty is the headline invariant of
// DESIGN.md §6: for randomly generated UDF queries (scalar chains,
// filters, expands, aggregates), QFusor's fused execution returns the
// same row multiset as engine-native execution.
func TestRandomQueryFusionParityProperty(t *testing.T) {
	eng, qf := buildEngine(t)
	f := func(seed int64) bool {
		g := &qgen{r: rand.New(rand.NewSource(seed))}
		sql := g.generate()
		want, err := eng.Query(sql)
		if err != nil {
			t.Logf("generated query invalid: %v\n%s", err, sql)
			return false
		}
		q, rep, err := qf.Process(eng, sql)
		if err != nil {
			t.Logf("process: %v\n%s", err, sql)
			return false
		}
		got, err := eng.Execute(q)
		if err != nil {
			t.Logf("fused exec: %v\n%s\nsources:\n%s", err, sql, strings.Join(rep.Sources, "\n"))
			return false
		}
		if want.NumRows() != got.NumRows() {
			t.Logf("rows %d vs %d\n%s\nplan:\n%s", want.NumRows(), got.NumRows(), sql, q.Explain())
			return false
		}
		wk, gk := rowKeys(want), rowKeys(got)
		for k, cnt := range wk {
			if gk[k] != cnt {
				t.Logf("row %q: %d vs %d\n%s\nsources:\n%s", k, cnt, gk[k], sql,
					strings.Join(rep.Sources, "\n"))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
