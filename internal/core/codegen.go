package core

import (
	"fmt"
	"sort"
	"strings"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/sqlengine"
)

// fusedResult is the realization of one fusible section: replacement
// plan nodes (bottom-up, children unwired) plus generated sources.
type fusedResult struct {
	// MovedPreds are filter predicates reordered out of the section
	// (F3), to run engine-side below the fused node. Bound against the
	// child schema.
	MovedPreds []sqlengine.SQLExpr
	// Nodes are the fused plan node(s), bottom-up (two when an
	// aggregate section is split).
	Nodes []*sqlengine.Plan
	// Sources are the generated wrapper sources (for EXPLAIN/examples).
	Sources []string
	// SpanLo/SpanHi is the replaced plan-node range in the segment.
	SpanLo, SpanHi int
	// Wrapper is the registered wrapper's name; Cached reports whether it
	// was reused from the compile cache rather than freshly generated.
	Wrapper string
	Cached  bool
	// Tier is the execution tier the wrapper was planned onto:
	// "vm" (vectorized bytecode VM) or "closure" (compiled trace loop).
	Tier string
}

// generateSection lowers a discovered section into fused wrapper(s)
// following the loop-fusion templates (Table 2) and the relational
// offloading rules (Table 3).
func (qf *QFusor) generateSection(seg *Segment, g *DFG, sec *Section) (*fusedResult, error) {
	inSec := map[int]bool{}
	for _, v := range sec.Nodes {
		inSec[v] = true
	}
	lo, hi := spanOf(g, inSec)
	top := seg.Chain[hi]

	if top.Op == sqlengine.OpAggregate && keysHaveUDF(top, qf.catalog()) {
		// Group keys calling UDFs are not resolvable to trace registers;
		// shrink the section below the aggregate (the keys then run
		// through the engine's vectorized UDF path).
		return qf.generateShrunk(seg, g, sec, hi)
	}

	res, err := qf.emitWrapper(seg, g, inSec, lo, hi, nil)
	if err != nil {
		return nil, err
	}
	res.MovedPreds, err = qf.movedPredicates(seg, g, sec.Reordered, lo)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// generateShrunk drops the nodes at plan index hi and realizes the rest.
func (qf *QFusor) generateShrunk(seg *Segment, g *DFG, sec *Section, hi int) (*fusedResult, error) {
	var rest []int
	for _, v := range sec.Nodes {
		if g.Nodes[v].PlanIdx < hi {
			rest = append(rest, v)
		}
	}
	if len(rest) < 2 {
		return nil, nil
	}
	var moved []int
	for _, v := range sec.Reordered {
		if g.Nodes[v].PlanIdx < hi {
			moved = append(moved, v)
		}
	}
	return qf.generateSection(seg, g, &Section{Nodes: rest, Reordered: moved})
}

// keysHaveUDF reports whether any group key calls a UDF.
func keysHaveUDF(p *sqlengine.Plan, cat *sqlengine.Catalog) bool {
	for _, k := range p.GroupBy {
		if exprCallsUDF(k, cat) {
			return true
		}
	}
	return false
}

func exprCallsUDF(e sqlengine.SQLExpr, cat *sqlengine.Catalog) bool {
	found := false
	sqlengine.WalkExpr(e, func(x sqlengine.SQLExpr) bool {
		if f, ok := x.(*sqlengine.FuncExpr); ok {
			if _, ok := cat.UDF(f.Name); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func fieldAt(g *DFG, pi, col int) string {
	var fields []string
	if pi < 0 {
		fields = g.BaseFields
	} else if pi < len(g.PlanFields) {
		fields = g.PlanFields[pi]
	}
	if col < 0 || col >= len(fields) {
		return ""
	}
	return fields[col]
}

func fieldsBelow(g *DFG, lo int) []string {
	if lo == 0 {
		return g.BaseFields
	}
	return g.PlanFields[lo-1]
}

// movedPredicates rebinds reordered filters against the child schema.
func (qf *QFusor) movedPredicates(seg *Segment, g *DFG, moved []int, lo int) ([]sqlengine.SQLExpr, error) {
	below := fieldsBelow(g, lo)
	pos := map[string]int{}
	for i, f := range below {
		pos[f] = i
	}
	childSchema := childSchemaOf(seg, lo)
	var out []sqlengine.SQLExpr
	for _, id := range moved {
		nd := g.Nodes[id]
		if nd.Kind != KRelFilter || nd.Expr == nil {
			continue
		}
		e, err := substFieldRefs(nd.Expr, pos, childSchema)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func childSchemaOf(seg *Segment, lo int) data.Schema {
	if lo == 0 {
		if seg.Base != nil {
			return seg.Base.Schema
		}
		return data.Schema{}
	}
	return seg.Chain[lo-1].Schema
}

// substFieldRefs replaces DFG-field placeholders with plan column refs.
func substFieldRefs(e sqlengine.SQLExpr, pos map[string]int, schema data.Schema) (sqlengine.SQLExpr, error) {
	var err error
	out := cloneViaWalk(e, func(x sqlengine.SQLExpr) sqlengine.SQLExpr {
		if f, ok := asFieldRef(x); ok {
			i, found := pos[f]
			if !found {
				err = fmt.Errorf("core: field %s not available below the fused section", f)
				return x
			}
			name := fmt.Sprintf("c%d", i)
			if i < len(schema) {
				name = schema[i].Name
			}
			return &sqlengine.ColRef{Name: name, Index: i}
		}
		return x
	})
	return out, err
}

// cloneViaWalk deep-copies e, applying fn to every node (post-copy).
func cloneViaWalk(e sqlengine.SQLExpr, fn func(sqlengine.SQLExpr) sqlengine.SQLExpr) sqlengine.SQLExpr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlengine.ColRef:
		cp := *x
		return fn(&cp)
	case *sqlengine.Lit:
		cp := *x
		return fn(&cp)
	case *sqlengine.FuncExpr:
		cp := &sqlengine.FuncExpr{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			cp.Args = append(cp.Args, cloneViaWalk(a, fn))
		}
		return fn(cp)
	case *sqlengine.BinExpr:
		return fn(&sqlengine.BinExpr{Op: x.Op, L: cloneViaWalk(x.L, fn), R: cloneViaWalk(x.R, fn)})
	case *sqlengine.UnaryExpr:
		return fn(&sqlengine.UnaryExpr{Op: x.Op, E: cloneViaWalk(x.E, fn)})
	case *sqlengine.CaseExpr:
		cp := &sqlengine.CaseExpr{}
		if x.Operand != nil {
			cp.Operand = cloneViaWalk(x.Operand, fn)
		}
		for i := range x.Whens {
			cp.Whens = append(cp.Whens, cloneViaWalk(x.Whens[i], fn))
			cp.Thens = append(cp.Thens, cloneViaWalk(x.Thens[i], fn))
		}
		if x.Else != nil {
			cp.Else = cloneViaWalk(x.Else, fn)
		}
		return fn(cp)
	case *sqlengine.BetweenExpr:
		return fn(&sqlengine.BetweenExpr{E: cloneViaWalk(x.E, fn), Lo: cloneViaWalk(x.Lo, fn),
			Hi: cloneViaWalk(x.Hi, fn), Not: x.Not})
	case *sqlengine.InExpr:
		cp := &sqlengine.InExpr{E: cloneViaWalk(x.E, fn), Not: x.Not}
		for _, it := range x.List {
			cp.List = append(cp.List, cloneViaWalk(it, fn))
		}
		return fn(cp)
	case *sqlengine.IsNullExpr:
		return fn(&sqlengine.IsNullExpr{E: cloneViaWalk(x.E, fn), Not: x.Not})
	case *sqlengine.CastExpr:
		return fn(&sqlengine.CastExpr{E: cloneViaWalk(x.E, fn), Kind: x.Kind})
	}
	return fn(e)
}

// ---------------------------------------------------------------------
// Wrapper emission
// ---------------------------------------------------------------------

// wrapperGen holds per-wrapper emission state.
type wrapperGen struct {
	qf  *QFusor
	seg *Segment
	g   *DFG

	below    []string       // fields available from the child
	belowPos map[string]int // field -> child column index
	inputs   []int          // child column indexes used, in param order
	inputOf  map[int]int    // child column index -> param index

	varOf map[string]string // field -> PyLite variable
	body  *pyBuilder        // loop body
	pre   *pyBuilder        // pre-loop (aggregate state setup)
	post  *pyBuilder        // post-loop (aggregate finals)
	vn    int
}

// emitWrapper generates the fused wrapper for section nodes covering
// plan indexes [lo..hi] and builds the OpFused/OpFusedAgg plan node.
func (qf *QFusor) emitWrapper(seg *Segment, g *DFG, inSec map[int]bool, lo, hi int, extraBelow []string) (*fusedResult, error) {
	w := &wrapperGen{
		qf: qf, seg: seg, g: g,
		below:    fieldsBelow(g, lo),
		belowPos: map[string]int{},
		inputOf:  map[int]int{},
		varOf:    map[string]string{},
		body:     &pyBuilder{},
		pre:      &pyBuilder{},
		post:     &pyBuilder{},
	}
	for i, f := range w.below {
		w.belowPos[f] = i
	}
	colVar := func(cr *sqlengine.ColRef) (string, error) {
		if cr.Table == fieldTable {
			return w.fieldVar(cr.Name)
		}
		return "", fmt.Errorf("core: unexpected plan-bound column %s in wrapper emission", cr)
	}
	w.body.colVar = colVar
	w.pre.colVar = colVar
	w.post.colVar = colVar

	top := seg.Chain[hi]
	isAgg := top.Op == sqlengine.OpAggregate
	tableBottom := seg.Chain[lo].Op == sqlengine.OpTableFunc
	if tableBottom {
		// The table UDF consumes the child's entire row set: every child
		// column is a wrapper input, in order.
		for ci := range w.below {
			w.inputs = append(w.inputs, ci)
			w.inputOf[ci] = ci
		}
	}

	// Walk the plan nodes, emitting loop-body code.
	w.body.indent = 1 // inside the row loop
	var aggFinalsOuts []string
	for pi := lo; pi <= hi; pi++ {
		p := seg.Chain[pi]
		switch p.Op {
		case sqlengine.OpProject:
			if err := w.emitValueNodes(pi, inSec); err != nil {
				return nil, err
			}
		case sqlengine.OpFilter:
			if err := w.emitValueNodes(pi, inSec); err != nil {
				return nil, err
			}
			fn := w.findStructural(pi, KRelFilter, inSec)
			if fn != nil {
				pred, err := translateExpr(fn.Expr, w.body)
				if err != nil {
					return nil, err
				}
				w.body.line("if not %s:", pred)
				w.body.indent++
				w.body.line("continue")
				w.body.indent--
			}
		case sqlengine.OpExpand:
			if err := w.emitValueNodes(pi, inSec); err != nil {
				return nil, err
			}
			nd := w.findStructural(pi, KUDFTable, inSec)
			if nd == nil {
				return nil, fmt.Errorf("core: expand node missing from section")
			}
			args := make([]string, 0, len(nd.In))
			for _, f := range nd.In {
				v, err := w.fieldVar(f)
				if err != nil {
					return nil, err
				}
				args = append(args, v)
			}
			ev := w.newVar("__e")
			w.body.line("for %s in %s(%s):", ev, nd.Name, strings.Join(args, ", "))
			w.body.indent++
			if len(nd.Out) == 1 {
				w.varOf[nd.Out[0]] = ev
			} else {
				for i, f := range nd.Out {
					v := w.newVar("__ec")
					w.body.line("%s = %s[%d]", v, ev, i)
					w.varOf[f] = v
				}
			}
		case sqlengine.OpTableFunc:
			if pi != lo {
				return nil, fmt.Errorf("core: table UDF not at section bottom")
			}
			// Handled by the loop opening (see assemble).
			nd := w.findStructural(pi, KUDFTable, inSec)
			if nd == nil {
				return nil, fmt.Errorf("core: table function node missing from section")
			}
			rv := w.newVar("__r")
			if len(nd.Out) == 1 {
				w.varOf[nd.Out[0]] = rv
			} else {
				for i, f := range nd.Out {
					v := w.newVar("__rc")
					w.body.line("%s = %s[%d]", v, rv, i)
					w.varOf[f] = v
				}
			}
		case sqlengine.OpDistinct:
			keys := make([]string, 0, len(g.PlanFields[pi]))
			for _, f := range g.PlanFields[pi] {
				v, err := w.fieldVar(f)
				if err != nil {
					return nil, err
				}
				keys = append(keys, v)
			}
			w.pre.line("__seen%d = set()", pi)
			w.body.line("__k%d = [%s]", pi, strings.Join(keys, ", "))
			w.body.line("if __k%d in __seen%d:", pi, pi)
			w.body.indent++
			w.body.line("continue")
			w.body.indent--
			w.body.line("__seen%d.add(__k%d)", pi, pi)
		case sqlengine.OpAggregate:
			if err := w.emitValueNodes(pi, inSec); err != nil {
				return nil, err
			}
			outs, err := w.emitAggregate(p, pi, inSec)
			if err != nil {
				return nil, err
			}
			aggFinalsOuts = outs
		default:
			return nil, fmt.Errorf("core: cannot fuse plan operator %s", p.Op)
		}
	}

	// Group keys may reference child columns the wrapper body never
	// touched; register them as inputs so the trace can group on them.
	if isAgg {
		var kerr error
		for _, k := range top.GroupBy {
			sqlengine.WalkExpr(k, func(x sqlengine.SQLExpr) bool {
				if cr, ok := x.(*sqlengine.ColRef); ok {
					f := fieldAt(g, hi-1, cr.Index)
					if f != "" {
						if _, have := w.varOf[f]; !have {
							if _, err := w.fieldVar(f); err != nil && kerr == nil {
								kerr = err
							}
						}
					}
				}
				return true
			})
		}
		if kerr != nil {
			return nil, kerr
		}
	}

	// Outputs.
	name := qf.nextName()
	var outAppend []string
	var outFields []string
	if isAgg {
		outFields = aggFinalsOuts // already emitted into post
	} else {
		outFields = g.PlanFields[hi]
		for j, f := range outFields {
			v, err := w.fieldVar(f)
			if err != nil {
				return nil, err
			}
			outAppend = append(outAppend, fmt.Sprintf("__o%d.append(%s)", j, v))
		}
		for _, l := range outAppend {
			w.body.line("%s", l)
		}
	}

	src, err := w.assemble(name, lo, hi, isAgg, tableBottom, len(outFields))
	if err != nil {
		return nil, err
	}

	// Register (or reuse from the wrapper cache).
	outKinds, outNames := w.outTypes(top, isAgg)
	u, cached, err := qf.registerWrapper(name, src, outNames, outKinds, isAgg)
	if err != nil {
		return nil, err
	}
	if u.Trace() == nil {
		// Compile the wrapper's hot loop to a native trace (the final
		// JIT tier); unsupported shapes keep the PyLite wrapper.
		tr, terr := qf.buildTrace(seg, g, inSec, lo, hi, w.inputs)
		if terr == nil && tr != nil {
			u.SetTrace(tr)
		}
		if isAgg && u.Trace() == nil {
			// Aggregating sections require the traced group-by (the
			// legacy wrapper groups before fused filters).
			if terr == nil {
				terr = fmt.Errorf("core: aggregate section not traceable")
			}
			return nil, terr
		}
	}
	tier := qf.applyTier(u, top.EstRows, len(w.inputs))

	// Plan node.
	node := &sqlengine.Plan{
		Schema:  top.Schema,
		Quals:   top.Quals,
		UDF:     u,
		EstRows: top.EstRows,
	}
	for pi := lo; pi <= hi; pi++ {
		switch seg.Chain[pi].Op {
		case sqlengine.OpDistinct, sqlengine.OpTableFunc:
			// The wrapper carries cross-row state (distinct set) or
			// consumes the whole input stream (FROM-position table UDF).
			node.NoPartition = true
		}
	}
	childSchema := childSchemaOf(seg, lo)
	for _, ci := range w.inputs {
		name := fmt.Sprintf("c%d", ci)
		if ci < len(childSchema) {
			name = childSchema[ci].Name
		}
		node.TFArgs = append(node.TFArgs, &sqlengine.ColRef{Name: name, Index: ci})
	}
	if isAgg {
		node.Op = sqlengine.OpFusedAgg
		keys, err := qf.rebindKeys(top, g, lo, hi)
		if err != nil {
			return nil, err
		}
		node.GroupBy = keys
	} else {
		node.Op = sqlengine.OpFused
	}
	return &fusedResult{Nodes: []*sqlengine.Plan{node}, Sources: []string{src},
		SpanLo: lo, SpanHi: hi, Wrapper: u.Name, Cached: cached, Tier: tier}, nil
}

// applyTier selects the execution tier for a traced wrapper and
// publishes the decision on the UDF (epoch-fenced for free: a UDF
// redefinition produces fresh FuncValues, whose bytecode caches start
// empty, and flushes the wrapper compile cache via syncUDFEpoch).
// Options.Tier "closure" pins the closure tier; "vm" forces the VM
// whenever the trace lowers; ""/"auto" asks the cost model whether the
// per-row boundary saving is positive (it is for any real section, so
// auto takes the VM wherever eligible — ineligible shapes keep the
// closure tier silently). Returns the tier chosen: "vm" or "closure".
func (qf *QFusor) applyTier(u *ffi.UDF, rows float64, extIn int) string {
	if qf.Opts.Tier == "closure" {
		u.SetVMTierOff(true)
		return "closure"
	}
	u.SetVMTierOff(false)
	tr := u.Trace()
	if tr == nil {
		return "closure"
	}
	if vp := u.VMProg(); vp != nil {
		return "vm" // cached wrapper, already lowered
	}
	vp := ffi.CompileTraceVM(tr)
	if vp == nil {
		return "closure"
	}
	if qf.Opts.Tier != "vm" && qf.CM.VMAdvantage(rows, extIn) <= 0 {
		return "closure"
	}
	u.SetVMProg(vp)
	return "vm"
}

// emitValueNodes emits assignments for the section's value-producing
// nodes at plan index pi (UDF calls and relational expressions), in
// dependency (ID) order.
func (w *wrapperGen) emitValueNodes(pi int, inSec map[int]bool) error {
	for id, nd := range w.g.Nodes {
		if nd.PlanIdx != pi || !inSec[id] {
			continue
		}
		switch nd.Kind {
		case KUDFScalar, KRelExpr:
			expr, err := translateExpr(nd.Expr, w.body)
			if err != nil {
				return err
			}
			v := w.newVar("__v")
			w.body.line("%s = %s", v, expr)
			w.varOf[nd.Out[0]] = v
		}
	}
	return nil
}

// findStructural returns the section node of the given kind at plan pi.
func (w *wrapperGen) findStructural(pi int, kind OpKind, inSec map[int]bool) *DFGNode {
	for id, nd := range w.g.Nodes {
		if nd.PlanIdx == pi && nd.Kind == kind && inSec[id] {
			return nd
		}
	}
	return nil
}

// fieldVar returns the PyLite variable holding a field, registering a
// wrapper input when the field comes from below the section.
func (w *wrapperGen) fieldVar(f string) (string, error) {
	if v, ok := w.varOf[f]; ok {
		return v, nil
	}
	ci, ok := w.belowPos[f]
	if !ok {
		return "", fmt.Errorf("core: field %s has no producer in the fused section", f)
	}
	pidx, seen := w.inputOf[ci]
	if !seen {
		pidx = len(w.inputs)
		w.inputs = append(w.inputs, ci)
		w.inputOf[ci] = pidx
	}
	v := fmt.Sprintf("__b%d", pidx)
	w.varOf[f] = v
	return v, nil
}

func (w *wrapperGen) newVar(prefix string) string {
	w.vn++
	return fmt.Sprintf("%s%d", prefix, w.vn)
}

// emitAggregate generates per-group state, steps and finals for the
// aggregate plan node (TF2/TF7 and the native sum/count/min/max/avg
// offloads). Returns the output field list (one per aggregate).
func (w *wrapperGen) emitAggregate(p *sqlengine.Plan, pi int, inSec map[int]bool) ([]string, error) {
	var outs []string
	aggID := 0
	for id, nd := range w.g.Nodes {
		if nd.PlanIdx != pi || !inSec[id] {
			continue
		}
		if nd.Kind != KRelAggNative && nd.Kind != KUDFAggregate {
			continue
		}
		j := aggID
		aggID++
		outs = append(outs, nd.Out[0])

		// Argument expression (computed per row before stepping).
		argVar := ""
		if nd.Expr != nil {
			s, err := translateExpr(nd.Expr, w.body)
			if err != nil {
				return nil, err
			}
			argVar = w.newVar("__a")
			w.body.line("%s = %s", argVar, s)
		}

		switch nd.Kind {
		case KUDFAggregate:
			w.pre.line("__st%d = []", j)
			w.pre.line("__xi%d = 0", j)
			w.pre.line("while __xi%d < __g:", j)
			w.pre.indent++
			w.pre.line("__ag = %s()", nd.UDF.Name)
			w.pre.line("__ag.init()")
			w.pre.line("__st%d.append(__ag)", j)
			w.pre.line("__xi%d = __xi%d + 1", j, j)
			w.pre.indent--
			if argVar == "" {
				argVar = "None"
			}
			w.body.line("__st%d[__gid].step(%s)", j, argVar)
			w.post.line("__o%d.append(__st%d[__gi].final())", j, j)
		case KRelAggNative:
			switch nd.Name {
			case "count":
				w.pre.line("__st%d = [0] * __g", j)
				if argVar == "" { // COUNT(*)
					w.body.line("__st%d[__gid] = __st%d[__gid] + 1", j, j)
				} else {
					w.body.line("if %s is not None:", argVar)
					w.body.indent++
					w.body.line("__st%d[__gid] = __st%d[__gid] + 1", j, j)
					w.body.indent--
				}
				w.post.line("__o%d.append(__st%d[__gi])", j, j)
			case "sum", "avg":
				w.pre.line("__st%d = [None] * __g", j)
				w.pre.line("__ct%d = [0] * __g", j)
				w.body.line("if %s is not None:", argVar)
				w.body.indent++
				w.body.line("__ct%d[__gid] = __ct%d[__gid] + 1", j, j)
				w.body.line("if __st%d[__gid] is None:", j)
				w.body.indent++
				w.body.line("__st%d[__gid] = %s", j, argVar)
				w.body.indent--
				w.body.line("else:")
				w.body.indent++
				w.body.line("__st%d[__gid] = __st%d[__gid] + %s", j, j, argVar)
				w.body.indent--
				w.body.indent--
				if nd.Name == "avg" {
					w.post.line("if __st%d[__gi] is None:", j)
					w.post.indent++
					w.post.line("__o%d.append(None)", j)
					w.post.indent--
					w.post.line("else:")
					w.post.indent++
					w.post.line("__o%d.append(float(__st%d[__gi]) / __ct%d[__gi])", j, j, j)
					w.post.indent--
				} else {
					w.post.line("__o%d.append(__st%d[__gi])", j, j)
				}
			case "min", "max":
				cmp := "<"
				if nd.Name == "max" {
					cmp = ">"
				}
				w.pre.line("__st%d = [None] * __g", j)
				w.body.line("if %s is not None:", argVar)
				w.body.indent++
				w.body.line("if __st%d[__gid] is None or %s %s __st%d[__gid]:", j, argVar, cmp, j)
				w.body.indent++
				w.body.line("__st%d[__gid] = %s", j, argVar)
				w.body.indent--
				w.body.indent--
				w.post.line("__o%d.append(__st%d[__gi])", j, j)
			default:
				return nil, fmt.Errorf("core: cannot offload aggregate %s", nd.Name)
			}
		}
	}
	return outs, nil
}

// assemble composes the final wrapper source.
func (w *wrapperGen) assemble(name string, lo, hi int, isAgg, tableBottom bool, nOuts int) (string, error) {
	var src strings.Builder
	params := make([]string, 0, len(w.inputs)+3)
	for i := range w.inputs {
		params = append(params, fmt.Sprintf("__b%dcol", i))
	}
	if isAgg {
		params = append(params, "__gids", "__g")
	}
	params = append(params, "__n")

	if tableBottom {
		// Input generator feeding the table UDF (the paper's
		// inp_datagen).
		fmt.Fprintf(&src, "def %s_gen(%s):\n", name, strings.Join(params, ", "))
		src.WriteString("    __i = 0\n")
		src.WriteString("    while __i < __n:\n")
		if len(w.inputs) == 1 {
			src.WriteString("        yield __b0col[__i]\n")
		} else {
			cols := make([]string, len(w.inputs))
			for i := range w.inputs {
				cols[i] = fmt.Sprintf("__b%dcol[__i]", i)
			}
			fmt.Fprintf(&src, "        yield [%s]\n", strings.Join(cols, ", "))
		}
		src.WriteString("        __i = __i + 1\n")
		src.WriteString("\n")
	}

	fmt.Fprintf(&src, "def %s(%s):\n", name, strings.Join(params, ", "))
	// Output accumulators.
	for j := 0; j < nOuts; j++ {
		fmt.Fprintf(&src, "    __o%d = []\n", j)
	}
	// Pre-loop (aggregate state, distinct sets).
	for _, l := range strings.Split(strings.TrimRight(w.pre.b.String(), "\n"), "\n") {
		if l != "" {
			fmt.Fprintf(&src, "    %s\n", l)
		}
	}
	// Loop opening.
	if tableBottom {
		tfNode := w.seg.Chain[lo]
		extras := ""
		for _, a := range tfNode.TFArgs {
			if lit, ok := a.(*sqlengine.Lit); ok {
				extras += ", " + pyLit(lit.Value)
			} else {
				return "", fmt.Errorf("core: non-constant table UDF argument")
			}
		}
		rv := "__r1" // the variable bound by OpTableFunc emission
		_ = rv
		fmt.Fprintf(&src, "    for %s in %s(%s_gen(%s)%s):\n",
			w.tableRowVar(lo), tfNode.UDF.Name, name, strings.Join(params, ", "), extras)
	} else {
		src.WriteString("    __i = 0\n")
		src.WriteString("    while __i < __n:\n")
	}
	// Input bindings (plus the engine-provided group id, which must be
	// read before __i advances).
	bind := &strings.Builder{}
	if !tableBottom {
		for i := range w.inputs {
			fmt.Fprintf(bind, "        __b%d = __b%dcol[__i]\n", i, i)
		}
		if isAgg {
			bind.WriteString("        __gid = __gids[__i]\n")
		}
	}
	src.WriteString(bind.String())
	// Body: advance __i FIRST so `continue` (offloaded filters,
	// distinct) cannot skip it.
	if !tableBottom {
		src.WriteString("        __i = __i + 1\n")
	}
	for _, l := range strings.Split(strings.TrimRight(w.body.b.String(), "\n"), "\n") {
		if l != "" {
			fmt.Fprintf(&src, "    %s\n", l)
		}
	}
	if strings.TrimSpace(w.body.b.String()) == "" {
		src.WriteString("        pass\n")
	}
	// Finals.
	if isAgg {
		src.WriteString("    __gi = 0\n")
		src.WriteString("    while __gi < __g:\n")
		for _, l := range strings.Split(strings.TrimRight(w.post.b.String(), "\n"), "\n") {
			if l != "" {
				fmt.Fprintf(&src, "        %s\n", l)
			}
		}
		src.WriteString("        __gi = __gi + 1\n")
	}
	// Return.
	rets := make([]string, nOuts)
	for j := 0; j < nOuts; j++ {
		rets[j] = fmt.Sprintf("__o%d", j)
	}
	fmt.Fprintf(&src, "    return [%s]\n", strings.Join(rets, ", "))
	return src.String(), nil
}

// tableRowVar returns the row variable bound for a bottom table UDF.
func (w *wrapperGen) tableRowVar(lo int) string {
	// OpTableFunc emission registered vars for the UDF's outputs; the
	// first assigned variable is the row variable for single-column
	// outputs. For multi-column outputs, the body indexes __r1.
	for id, nd := range w.g.Nodes {
		_ = id
		if nd.PlanIdx == lo && nd.Kind == KUDFTable {
			if len(nd.Out) == 1 {
				return w.varOf[nd.Out[0]]
			}
			return "__r1"
		}
	}
	return "__r1"
}

// outTypes derives the fused node's output names/kinds.
func (w *wrapperGen) outTypes(top *sqlengine.Plan, isAgg bool) ([]data.Kind, []string) {
	if !isAgg {
		kinds := make([]data.Kind, len(top.Schema))
		names := make([]string, len(top.Schema))
		for i, f := range top.Schema {
			kinds[i] = f.Kind
			names[i] = f.Name
		}
		return kinds, names
	}
	// Aggregating traces output keys + aggregates (the full schema).
	kinds := make([]data.Kind, len(top.Schema))
	names := make([]string, len(top.Schema))
	for i, f := range top.Schema {
		kinds[i] = f.Kind
		names[i] = f.Name
	}
	return kinds, names
}

// rebindKeys maps the aggregate's group keys onto the fused node's
// input (child) columns. hi is the aggregate's plan index.
func (qf *QFusor) rebindKeys(top *sqlengine.Plan, g *DFG, lo, hi int) ([]sqlengine.SQLExpr, error) {
	below := fieldsBelow(g, lo)
	pos := map[string]int{}
	for i, f := range below {
		pos[f] = i
	}
	srcIdx := hi - 1
	var out []sqlengine.SQLExpr
	for _, k := range top.GroupBy {
		var err error
		nk := cloneViaWalk(k, func(x sqlengine.SQLExpr) sqlengine.SQLExpr {
			cr, ok := x.(*sqlengine.ColRef)
			if !ok || cr.Table == fieldTable {
				return x
			}
			f := fieldAt(g, srcIdx, cr.Index)
			ni, found := pos[f]
			if !found {
				err = fmt.Errorf("core: group key field %s not below fused section", f)
				return x
			}
			cp := *cr
			cp.Index = ni
			return &cp
		})
		if err != nil {
			// Keys computed inside the span: keep the original expression
			// (the compiled trace does the grouping; GroupBy is
			// explain-only for traced aggregates).
			nk = k
		}
		out = append(out, nk)
	}
	return out, nil
}

// sortInts is a tiny helper kept for deterministic section handling.
func sortInts(xs []int) { sort.Ints(xs) }
