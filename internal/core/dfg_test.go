package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/pylite"
	"qfusor/internal/sqlengine"
)

// dfgFixture builds an engine + plan for DFG tests (internal package:
// white-box access to the algorithms).
func dfgFixture(t *testing.T, sql string) (*sqlengine.Engine, *Segment, *DFG) {
	t.Helper()
	eng := sqlengine.New("t", sqlengine.ModeColumnar, ffi.VectorInvoker{})
	tbl := data.NewTable("t", data.Schema{
		{Name: "a", Kind: data.KindString},
		{Name: "b", Kind: data.KindString},
		{Name: "c", Kind: data.KindInt},
	})
	_ = tbl.AppendRow(data.Str("x y"), data.Str("p"), data.Int(1))
	_ = tbl.AppendRow(data.Str("z"), data.Str("q"), data.Int(2))
	eng.Catalog.PutTable(tbl)
	reg := NewRegistry(4)
	if err := reg.Define(`
@scalarudf
def u1(s: str) -> str:
    return s.upper()

@scalarudf
def u2(s: str) -> str:
    return s + "!"

@expandudf
def ex(s: str) -> str:
    for w in s.split(" "):
        yield w
`); err != nil {
		t.Fatal(err)
	}
	reg.Attach(eng)
	q, err := eng.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	segs := FindSegments(q.Root)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	g, err := BuildDFG(segs[0], eng.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	return eng, segs[0], g
}

// TestBernsteinEdges: an edge u→v exists iff u.Out ∩ v.In ≠ ∅ and u
// precedes v (Algorithm 1's RAW condition).
func TestBernsteinEdges(t *testing.T) {
	_, _, g := dfgFixture(t, "SELECT u2(u1(a)) AS x, u1(b) AS y, c FROM t WHERE c > 0")
	for vi, v := range g.Nodes {
		preds := map[int]bool{}
		for _, u := range g.Pred[vi] {
			preds[u] = true
		}
		for ui, u := range g.Nodes {
			if ui >= vi {
				continue
			}
			intersects := false
			for _, f := range v.In {
				for _, o := range u.Out {
					if f == o {
						intersects = true
					}
				}
			}
			if intersects != preds[ui] {
				t.Errorf("edge %d->%d: intersects=%v edge=%v\n%s", ui, vi, intersects, preds[ui], g.String())
			}
		}
	}
}

// TestDFGTopoOrderAcyclic: extraction order is topological (every edge
// goes forward), hence acyclic.
func TestDFGTopoOrderAcyclic(t *testing.T) {
	_, _, g := dfgFixture(t, "SELECT ex(u2(u1(a))) AS w, u1(b) AS y FROM t")
	for u := range g.Nodes {
		for _, v := range g.Succ[u] {
			if v <= u {
				t.Fatalf("backward edge %d -> %d", u, v)
			}
		}
	}
}

// TestSectionsNonOverlappingAndOrdered: Algorithm 2's output sections
// never share nodes, and each section lists nodes in topological order.
func TestSectionsNonOverlappingAndOrdered(t *testing.T) {
	eng, _, g := dfgFixture(t, "SELECT ex(u2(u1(a))) AS w, u1(b) AS y FROM t")
	secs := DiscoverSections(g, DefaultCostModel(), eng.Catalog)
	seen := map[int]bool{}
	for _, s := range secs {
		last := -1
		for _, n := range s.Nodes {
			if seen[n] {
				t.Fatalf("node %d in two sections", n)
			}
			seen[n] = true
			if n <= last {
				t.Fatalf("section %v not in topo order", s.Nodes)
			}
			last = n
		}
		if s.Gain() <= 0 {
			t.Fatalf("selected section %v with non-positive gain %f", s.Nodes, s.Gain())
		}
	}
}

// TestCSESharesIdenticalCalls: the same UDF over the same column becomes
// one node with Uses == number of call sites.
func TestCSESharesIdenticalCalls(t *testing.T) {
	_, _, g := dfgFixture(t, "SELECT u1(a) AS x, u1(a) AS y, u1(b) AS z FROM t")
	countU1 := 0
	for _, nd := range g.Nodes {
		if nd.Name == "u1" {
			countU1++
			if nd.In[0] == "p-1.c0" && nd.Uses != 2 {
				t.Fatalf("u1(a) Uses = %d, want 2", nd.Uses)
			}
		}
	}
	if countU1 != 2 { // u1(a) shared + u1(b)
		t.Fatalf("u1 nodes = %d, want 2", countU1)
	}
}

// randSQLExpr generates a random UDF-free SQL expression over three
// int/string fields (as DFG field placeholders).
func randSQLExpr(r *rand.Rand, depth int) sqlengine.SQLExpr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return fieldRefExpr("f0") // int
		case 1:
			return fieldRefExpr("f1") // int
		case 2:
			return &sqlengine.Lit{Value: data.Int(int64(r.Intn(20) - 10))}
		default:
			return &sqlengine.Lit{Value: data.Str(string(rune('a' + r.Intn(4))))}
		}
	}
	switch r.Intn(8) {
	case 0:
		ops := []string{"+", "-", "*"}
		return &sqlengine.BinExpr{Op: ops[r.Intn(3)],
			L: randNumExpr(r, depth-1), R: randNumExpr(r, depth-1)}
	case 1:
		ops := []string{"<", "<=", ">", ">=", "=", "!="}
		return &sqlengine.BinExpr{Op: ops[r.Intn(6)],
			L: randNumExpr(r, depth-1), R: randNumExpr(r, depth-1)}
	case 2:
		return &sqlengine.BinExpr{Op: "AND",
			L: randBoolExpr(r, depth-1), R: randBoolExpr(r, depth-1)}
	case 3:
		return &sqlengine.CaseExpr{
			Whens: []sqlengine.SQLExpr{randBoolExpr(r, depth-1)},
			Thens: []sqlengine.SQLExpr{randNumExpr(r, depth-1)},
			Else:  randNumExpr(r, depth-1),
		}
	case 4:
		return &sqlengine.BetweenExpr{E: randNumExpr(r, depth-1),
			Lo: &sqlengine.Lit{Value: data.Int(-5)}, Hi: &sqlengine.Lit{Value: data.Int(5)}}
	case 5:
		return &sqlengine.IsNullExpr{E: randNumExpr(r, depth-1), Not: r.Intn(2) == 0}
	case 6:
		return &sqlengine.InExpr{E: randNumExpr(r, depth-1),
			List: []sqlengine.SQLExpr{
				&sqlengine.Lit{Value: data.Int(1)},
				&sqlengine.Lit{Value: data.Int(3)},
			}}
	default:
		return &sqlengine.UnaryExpr{Op: "NOT", E: randBoolExpr(r, depth-1)}
	}
}

func randNumExpr(r *rand.Rand, depth int) sqlengine.SQLExpr {
	if depth <= 0 || r.Intn(2) == 0 {
		if r.Intn(2) == 0 {
			return fieldRefExpr(fmt.Sprintf("f%d", r.Intn(2)))
		}
		return &sqlengine.Lit{Value: data.Int(int64(r.Intn(20) - 10))}
	}
	ops := []string{"+", "-", "*"}
	return &sqlengine.BinExpr{Op: ops[r.Intn(3)],
		L: randNumExpr(r, depth-1), R: randNumExpr(r, depth-1)}
}

func randBoolExpr(r *rand.Rand, depth int) sqlengine.SQLExpr {
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	return &sqlengine.BinExpr{Op: ops[r.Intn(6)],
		L: randNumExpr(r, depth), R: randNumExpr(r, depth)}
}

// TestTranslateMatchesEvalPure: the SQL→PyLite translation of offloaded
// relational expressions computes the same values as the engine's pure
// evaluator — the semantic-preservation invariant of §5.3.2.
func TestTranslateMatchesEvalPure(t *testing.T) {
	reg := NewRegistry(0)
	rt := reg.RT
	f := func(seed int64, a, b int8) bool {
		r := rand.New(rand.NewSource(seed))
		e := randSQLExpr(r, 3)

		// Engine side: EvalPure over a register row.
		regBound, err := (&QFusor{}).rebindToRegs(e, map[string]int{"f0": 0, "f1": 1})
		if err != nil {
			return false
		}
		row := []data.Value{data.Int(int64(a)), data.Int(int64(b))}
		want, werr := sqlengine.EvalPure(regBound, row)

		// UDF side: translate to PyLite and execute.
		pb := &pyBuilder{indent: 1}
		pb.colVar = func(cr *sqlengine.ColRef) (string, error) {
			if cr.Table == fieldTable {
				if cr.Name == "f0" {
					return "a", nil
				}
				return "b", nil
			}
			return "", fmt.Errorf("unexpected ref")
		}
		expr, terr := translateExpr(e, pb)
		if terr != nil {
			t.Logf("translate: %v for %s", terr, e)
			return false
		}
		src := "def f(a, b):\n" + pb.b.String() + "    return " + expr + "\n"
		fname := fmt.Sprintf("f_%d", seed&0xffff)
		src = "def " + fname + src[5:]
		if err := rt.Exec(src); err != nil {
			t.Logf("exec: %v\n%s", err, src)
			return false
		}
		fnv, _ := rt.Global(fname)
		got, gerr := rt.Call(fnv, row)
		if werr != nil || gerr != nil {
			// Errors should agree (both nil in this grammar).
			return (werr == nil) == (gerr == nil)
		}
		// SQL FALSE/NULL vs Python False: compare truthiness for bools,
		// numerics numerically.
		if want.IsNull() && got.IsNull() {
			return true
		}
		wf, wok := want.AsFloat()
		gf, gok := got.AsFloat()
		if wok && gok {
			if wf != gf {
				t.Logf("mismatch: sql=%v py=%v\nexpr: %s\n%s", want, got, e, src)
				return false
			}
			return true
		}
		if want.String() != got.String() {
			t.Logf("mismatch: sql=%v py=%v\nexpr: %s\n%s", want, got, e, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCostMonotonicity: the Table 1 inequality decision is monotone —
// raising wrapper costs can only make offloading more attractive.
func TestCostMonotonicity(t *testing.T) {
	r := &DFGNode{Kind: KRelFilter, Rows: 1000, Sel: 0.5}
	udfs := []*DFGNode{{Kind: KUDFScalar, Rows: 1000, Sel: 1, Uses: 1}}
	base := DefaultCostModel()
	prev := false
	for w := 10.0; w <= 2000; w *= 2 {
		cm := *base
		cm.WIn, cm.WOut = w, w
		dec := cm.ShouldOffload(r, udfs, 1000, 0.5)
		if prev && !dec {
			t.Fatalf("offload decision flipped off as wrapper cost grew (w=%v)", w)
		}
		prev = dec
	}
	if !prev {
		t.Fatal("offload never chosen even at extreme wrapper cost")
	}
}

// TestNullSemanticsInOffloadedFilters: SQL NULL comparisons are false in
// offloaded predicates (matching the engine).
func TestNullSemanticsInOffloadedFilters(t *testing.T) {
	reg := NewRegistry(0)
	rt := reg.RT
	src := `
def nulltest(x):
    return __qf_lt(x, 5) or __qf_eq(x, None)
`
	if err := rt.Exec(src); err != nil {
		t.Fatal(err)
	}
	fnv, _ := rt.Global("nulltest")
	got, err := rt.Call(fnv, []data.Value{data.Null})
	if err != nil {
		t.Fatal(err)
	}
	if got.Truthy() {
		t.Fatal("NULL < 5 or NULL = NULL must be false under SQL semantics")
	}
}

var _ = pylite.Parse // keep import for fixture extensions
