package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/obs"
	"qfusor/internal/pylite"
	"qfusor/internal/resilience"
	"qfusor/internal/sqlengine"
)

// Analysis is a per-query EXPLAIN ANALYZE handle: the executed result
// plus the full query-lifecycle span tree (optimizer phases, one span
// per plan operator), per-UDF time split into wrapper vs body, and the
// engine-wide metrics delta attributable to this query. Unlike the
// legacy LastReport field it is returned per query, so concurrent
// queries cannot clobber each other's measurements.
type Analysis struct {
	// SQL is the analyzed query text.
	SQL string
	// Result is the executed query's output table.
	Result *data.Table
	// Report carries the optimizer measurements (Fig. 4 bottom).
	Report Report
	// Root is the span tree: phase:plan_probe, phase:dfg_build,
	// phase:discover, phase:codegen, phase:rewrite and phase:execute
	// (with op:* operator spans) hang off it.
	Root *obs.Span
	// Plan is the rewritten plan's EXPLAIN text.
	Plan string
	// UDFs summarizes per-UDF work done during this query, most
	// expensive first.
	UDFs []UDFUsage
	// Metrics is the obs.Default delta over this query (counters and
	// histograms subtract; gauges read current).
	Metrics obs.Snapshot
	// HotLines is the PyLite sampling-profiler window for this query:
	// per-statement sample counts attributed to UDF source lines, hottest
	// first. Empty unless a profiler is active (StartUDFProfiler).
	HotLines *pylite.ProfileSnapshot
	// Resources is the query's resource-ledger snapshot (nil when
	// accounting is off; see obs.SetAccounting).
	Resources *obs.LedgerSnapshot
	// Admission is the serving plane's admission verdict (queue wait,
	// queue depth, tenant); nil for queries that never went through the
	// admission controller.
	Admission *obs.AdmissionInfo
}

// UDFUsage is one UDF's contribution to a query. Wrapper is time spent
// at the FFI boundary (boxing columns in, unboxing results out); Body
// is the remainder — time inside the UDF's own logic.
type UDFUsage struct {
	Name  string
	Fused bool
	// Tier is the execution tier a fused wrapper was planned onto
	// ("vm" or "closure"; empty for source UDFs and PyLite wrappers).
	Tier    string
	Calls   int64
	RowsIn  int64
	RowsOut int64
	Wall    time.Duration
	Wrapper time.Duration
	Body    time.Duration
}

// QueryAnalyze runs the full QFusor pipeline with tracing enabled,
// executes the (possibly rewritten) query, and returns the annotated
// analysis — EXPLAIN ANALYZE for UDF queries.
func (qf *QFusor) QueryAnalyze(eng *sqlengine.Engine, sql string) (*Analysis, error) {
	return qf.QueryAnalyzeCtx(context.Background(), eng, sql)
}

// QueryAnalyzeCtx is QueryAnalyze under a context: cancellation reaches
// the executors and the UDF runtime exactly as in QueryCtx, and a
// fused-path failure degrades to the native plan under a
// phase:fallback span instead of failing the analysis.
func (qf *QFusor) QueryAnalyzeCtx(ctx context.Context, eng *sqlengine.Engine, sql string) (*Analysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	led := obs.LedgerFromContext(ctx)
	if led == nil && obs.AccountingEnabled() {
		led = obs.NewLedger()
		ctx = obs.ContextWithLedger(ctx, led)
	}
	root := obs.NewTracer().Start("query")
	adm := admissionSpan(ctx, root)

	// Per-UDF stats baseline: wrappers registered during Process simply
	// have no baseline entry, which reads as zero.
	base := map[string]ffi.StatsSnapshot{}
	for _, u := range eng.Catalog.UDFs() {
		base[u.Name] = u.Stats.Snapshot()
	}
	m0 := obs.Default.Snapshot()
	var prof0 pylite.ProfileSnapshot
	if p := pylite.ActiveProfiler(); p != nil {
		prof0 = p.Snapshot()
	}

	q, rep, err := qf.ProcessTraced(eng, sql, root)
	led.MarkPhase("optimize")
	if err != nil {
		return nil, err
	}
	secBase := qf.sectionBaselines(rep)
	ex := root.Child("phase:execute")
	res, err := execTracedRecovered(ctx, eng, q, ex)
	ex.End()
	led.MarkPhase("execute")
	if err == nil {
		qf.observeSectionCosts(rep, secBase)
	}
	if err != nil && !isCancellation(ctx, err) {
		// Degrade exactly like QueryCtx, but keep the span tree: the
		// analysis shows the failed fused execute and the native rerun.
		led.AddRetry()
		fb := root.Child("phase:fallback")
		fb.SetAttr("cause", err.Error())
		var nq *sqlengine.Query
		nq, perr := eng.Plan(sql)
		if perr == nil {
			res, perr = execTracedRecovered(ctx, eng, nq, fb)
		}
		fb.End()
		led.MarkPhase("fallback")
		if perr != nil {
			root.End()
			return nil, qerr(sql, "fallback", errors.Join(err, perr))
		}
		mFallbacks.Inc()
		rep.Fallback = true
		rep.FallbackReason = err.Error()
		q = nq
		err = nil
	}
	root.End()
	if err != nil {
		if isCancellation(ctx, err) {
			mCancelled.Inc()
			err = qerr(sql, "cancelled", err)
		}
		fillLedgerUDFs(led, eng, base)
		qf.recordFlight("analyze", sql, start, nil, rep, err, root, led, adm)
		return nil, err
	}
	fillLedgerUDFs(led, eng, base)

	a := &Analysis{
		SQL:       sql,
		Result:    res,
		Report:    *rep,
		Root:      root,
		Plan:      q.Explain(),
		Metrics:   obs.Default.Snapshot().Diff(m0),
		Admission: adm,
	}
	if p := pylite.ActiveProfiler(); p != nil {
		win := p.Snapshot().Diff(prof0)
		a.HotLines = &win
	}
	qf.recordFlight("analyze", sql, start, res, rep, nil, root, led, adm)
	a.Resources = led.Snapshot()
	tierOf := map[string]string{}
	for i, w := range rep.Wrappers {
		if i < len(rep.Tiers) {
			tierOf[w] = rep.Tiers[i]
		}
	}
	for _, u := range eng.Catalog.UDFs() {
		d := u.Stats.Snapshot().Sub(base[u.Name])
		if d.IsZero() {
			continue
		}
		wall := time.Duration(d.WallNanos)
		wrap := time.Duration(d.WrapNanos)
		a.UDFs = append(a.UDFs, UDFUsage{
			Name: u.Name, Fused: u.Fused, Tier: tierOf[u.Name],
			Calls: d.Calls, RowsIn: d.InRows, RowsOut: d.OutRows,
			Wall: wall, Wrapper: wrap, Body: wall - wrap,
		})
	}
	sort.Slice(a.UDFs, func(i, j int) bool {
		if a.UDFs[i].Wall != a.UDFs[j].Wall {
			return a.UDFs[i].Wall > a.UDFs[j].Wall
		}
		return a.UDFs[i].Name < a.UDFs[j].Name
	})
	return a, nil
}

// Render formats the analysis for terminals: the annotated span tree,
// the per-UDF time table and the optimizer summary line.
func (a *Analysis) Render() string {
	var b strings.Builder
	b.WriteString(a.Root.Render())
	if a.Admission != nil {
		fmt.Fprintf(&b, "\nadmission: tenant=%s wait=%s queue_depth=%d\n",
			admissionTenantLabel(a.Admission.Tenant),
			fmtAnalyzeDur(a.Admission.Wait), a.Admission.QueueDepth)
	}
	if len(a.UDFs) > 0 {
		b.WriteString("\nUDF time (wrapper = FFI boxing/unboxing, body = UDF logic):\n")
		for _, u := range a.UDFs {
			tag := ""
			if u.Fused {
				tag = " [fused]"
				if u.Tier != "" {
					tag = " [fused tier=" + u.Tier + "]"
				}
			}
			fmt.Fprintf(&b, "  %-22s calls=%d rows_in=%d rows_out=%d wall=%s wrapper=%s body=%s%s\n",
				u.Name, u.Calls, u.RowsIn, u.RowsOut,
				fmtAnalyzeDur(u.Wall), fmtAnalyzeDur(u.Wrapper), fmtAnalyzeDur(u.Body), tag)
		}
	}
	if len(a.Report.Inlined) > 0 {
		b.WriteString("\nInlined UDFs (relational inlining; inlined sites never cross the FFI):\n")
		for _, d := range a.Report.Inlined {
			switch {
			case d.Sites > 0:
				fmt.Fprintf(&b, "  %-22s tier=inlined sites=%d expr=%s\n", d.UDF, d.Sites, d.Expr)
			case d.Inlinable:
				fmt.Fprintf(&b, "  %-22s inlinable (kept on the fusion ladder) expr=%s\n", d.UDF, d.Expr)
			default:
				fmt.Fprintf(&b, "  %-22s opaque (%s)\n", d.UDF, d.Reason)
			}
		}
	}
	if len(a.Report.SectionCosts) > 0 {
		b.WriteString("\nCost-model drift (predicted vs measured per fused section):\n")
		renderDrift(&b, a.Report.SectionCosts)
	}
	if a.Resources != nil && a.Resources.VMRows > 0 {
		fmt.Fprintf(&b, "\nVM tier: rows=%d bail_rows=%d\n",
			a.Resources.VMRows, a.Resources.VMBailRows)
	}
	if a.HotLines != nil && len(a.HotLines.Samples) > 0 {
		b.WriteString("\n")
		b.WriteString(a.HotLines.ReportText(10))
	}
	// wrapper_cache_hits counts wrapper-compile-cache reuse (the name
	// "cache_hits" was misleading once a plan-decision cache existed);
	// plancache reports this query's plan-decision cache outcome.
	fmt.Fprintf(&b, "\nsections=%d inlined=%d wrapper_cache_hits=%d plancache=%s fus_optim=%s code_gen=%s\n",
		a.Report.Sections, inlineSitesOf(&a.Report), a.Report.CacheHits, planCacheLabel(a.Report.PlanCache),
		fmtAnalyzeDur(a.Report.FusOptim), fmtAnalyzeDur(a.Report.CodeGen))
	return b.String()
}

// admissionTenantLabel stabilizes the Render label for sessions that
// never named a tenant.
func admissionTenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// planCacheLabel stabilizes the Render/flight label for queries that
// never entered the fusion front-end.
func planCacheLabel(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// fmtAnalyzeDur matches the span renderer's compact duration format.
func fmtAnalyzeDur(d time.Duration) string {
	switch {
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < 10*time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return d.Round(time.Millisecond).String()
	}
}

// execTracedRecovered executes a planned query under ctx and the given
// span with panic containment.
func execTracedRecovered(ctx context.Context, eng *sqlengine.Engine, q *sqlengine.Query, sp *obs.Span) (_ *data.Table, err error) {
	defer resilience.Recover(&err)
	return eng.ExecuteTracedCtx(ctx, q, sp)
}
