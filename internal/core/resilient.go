package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"time"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/obs"
	"qfusor/internal/pylite"
	"qfusor/internal/resilience"
	"qfusor/internal/sqlengine"
)

// Degradation metrics (obs.Default): how often the optimized path was
// abandoned and why. qfusor.fallbacks stays the reason-agnostic total
// (dashboards from PR 3 keep working); the labeled series break it down
// by cause for /metrics.
var (
	mFallbacks    = obs.Default.Counter("qfusor.fallbacks")
	mBreakerTrips = obs.Default.Counter("qfusor.breaker_trips")
	mBreakerSkips = obs.Default.Counter("qfusor.breaker_open_skips")
	mCancelled    = obs.Default.Counter("qfusor.cancelled")

	mFallbackBreaker = obs.Default.Counter(obs.LabeledName("qfusor.fallbacks", "reason", "breaker_open"))
	mFallbackPanic   = obs.Default.Counter(obs.LabeledName("qfusor.fallbacks", "reason", "panic"))
	mFallbackError   = obs.Default.Counter(obs.LabeledName("qfusor.fallbacks", "reason", "exec_error"))

	// Breaker census gauges, refreshed after every resilient query.
	gBreakerOpen     = obs.Default.Gauge("qfusor.breaker.open")
	gBreakerHalfOpen = obs.Default.Gauge("qfusor.breaker.half_open")
	gBreakerTracked  = obs.Default.Gauge("qfusor.breaker.tracked")
)

// updateBreakerGauges publishes the breaker's circuit census (strictly
// open, half-open, tracked keys) to /metrics. Nil-breaker safe.
func (qf *QFusor) updateBreakerGauges() {
	st := qf.Breaker.Snapshot()
	gBreakerOpen.Set(int64(st.Open))
	gBreakerHalfOpen.Set(int64(st.HalfOpen))
	gBreakerTracked.Set(int64(st.Tracked))
}

// fallbackReason increments the labeled breakdown for one fallback.
func fallbackReason(breakerOpen bool, cause error) {
	switch {
	case breakerOpen:
		mFallbackBreaker.Inc()
	case isPanic(cause):
		mFallbackPanic.Inc()
	default:
		mFallbackError.Inc()
	}
}

func isPanic(err error) bool {
	var pe *resilience.PanicError
	return errors.As(err, &pe)
}

// queryKey is the circuit-breaker key for a query text.
func queryKey(sql string) string {
	h := sha256.Sum256([]byte(sql))
	return "query:" + hex.EncodeToString(h[:16])
}

// QueryCtx is the resilient query path: it runs the full QFusor
// pipeline under ctx and degrades gracefully when the optimized path
// fails. The ladder is fused → native → typed error:
//
//  1. If the per-query circuit breaker is open (the fused path failed
//     repeatedly for this SQL), the native plan runs directly.
//  2. Otherwise the fused plan runs; any failure that is not a
//     cancellation — wrapper error, injected fault, worker crash,
//     recovered panic — trips the breaker and transparently re-executes
//     the query on the unfused native plan.
//  3. A cancellation (context done, deadline, PyLite step budget) is
//     returned as a *resilience.QueryError with Stage "cancelled" and
//     is never retried: the caller asked the query to stop.
//  4. If the native plan also fails, both causes come back joined in a
//     *resilience.QueryError with Stage "fallback".
//
// Fallbacks are recorded on the returned Report (Fallback /
// FallbackReason) and the qfusor.fallbacks / qfusor.breaker_* metrics.
func (qf *QFusor) QueryCtx(ctx context.Context, eng *sqlengine.Engine, sql string) (*data.Table, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Flight recorder: the diagnostics server's trace-all switch makes
	// every query build a span tree; otherwise root stays nil and every
	// span hook is a pointer compare (the nil-tracer guarantee).
	start := time.Now()
	// Resource ledger: ride the one the embedder attached (engines
	// attaches at its entry points), or open one here for direct callers.
	led := obs.LedgerFromContext(ctx)
	if led == nil && obs.AccountingEnabled() {
		led = obs.NewLedger()
		ctx = obs.ContextWithLedger(ctx, led)
	}
	var base map[string]ffi.StatsSnapshot
	if led != nil {
		base = udfBaselines(eng)
	}
	var root *obs.Span
	if obs.DefaultFlight.TraceAll() {
		root = obs.NewSpan("query")
	}
	adm := admissionSpan(ctx, root)
	t, rep, err := qf.queryResilient(ctx, eng, sql, root)
	root.End()
	qf.updateBreakerGauges()
	fillLedgerUDFs(led, eng, base)
	qf.recordFlight("fused", sql, start, t, rep, err, root, led, adm)
	return t, rep, err
}

// admissionSpan copies serving-plane admission metadata (when ctx
// carries it) onto the query's span tree as a phase:admission span and
// returns it for the flight record. Queries that never crossed the
// admission controller (direct API callers, the CLIs without -serve)
// carry none and pay one context lookup.
func admissionSpan(ctx context.Context, root *obs.Span) *obs.AdmissionInfo {
	ai := obs.AdmissionFromContext(ctx)
	if ai == nil {
		return nil
	}
	sp := root.Child("phase:admission")
	sp.SetInt("wait_ns", ai.Wait.Nanoseconds())
	sp.SetInt("queue_depth", int64(ai.QueueDepth))
	if ai.Tenant != "" {
		sp.SetAttr("tenant", ai.Tenant)
	}
	if ai.Session != "" {
		sp.SetAttr("session", ai.Session)
	}
	sp.End()
	return ai
}

// udfBaselines snapshots every catalog UDF's stats at query start (the
// EXPLAIN ANALYZE attribution pattern, reused by the resource ledger).
func udfBaselines(eng *sqlengine.Engine) map[string]ffi.StatsSnapshot {
	base := map[string]ffi.StatsSnapshot{}
	for _, u := range eng.Catalog.UDFs() {
		base[u.Name] = u.Stats.Snapshot()
	}
	return base
}

// fillLedgerUDFs attributes per-UDF usage the live FFI threading did
// not catch (the per-row scalar invoker paths) from the catalog stats
// delta. UDFFillMissing skips UDFs with threaded entries, so the two
// sources never double count. Per-engine deltas make this approximate
// when concurrent queries share one engine.
func fillLedgerUDFs(led *obs.ResourceLedger, eng *sqlengine.Engine, base map[string]ffi.StatsSnapshot) {
	if led == nil || base == nil {
		return
	}
	for _, u := range eng.Catalog.UDFs() {
		d := u.Stats.Snapshot().Sub(base[u.Name])
		if d.IsZero() {
			continue
		}
		led.UDFFillMissing(u.Name, d.Calls, d.InRows, d.OutRows, d.WallNanos, d.WrapNanos)
	}
}

// recordFlight stores one completed query in the process flight
// recorder (nil-safe span snapshot; no-op cost is one mutex-guarded
// ring write).
func (qf *QFusor) recordFlight(path, sql string, start time.Time, t *data.Table, rep *Report, err error, root *obs.Span, led *obs.ResourceLedger, adm *obs.AdmissionInfo) {
	rec := &obs.QueryRecord{
		QID:       led.QID(),
		SQL:       sql,
		Path:      path,
		Start:     start,
		Duration:  time.Since(start),
		Trace:     root.Snapshot(),
		Admission: adm,
	}
	if t != nil {
		rec.Rows = t.NumRows()
	}
	if rep != nil {
		rec.Sections = rep.Sections
		rec.Wrappers = rep.Wrappers
		rec.CacheHits = rep.CacheHits
		rec.PlanCache = rep.PlanCache
		rec.Fallback = rep.Fallback
		rec.FallbackReason = rep.FallbackReason
		rec.BreakerOpen = rep.FallbackReason == breakerOpenReason
		for _, d := range rep.Inlined {
			rec.Inlined = append(rec.Inlined, obs.InlineInfo{
				UDF: d.UDF, Inlinable: d.Inlinable, Reason: d.Reason, Sites: d.Sites,
			})
		}
		if rep.Fallback {
			led.AddFallback()
		}
	}
	if err != nil {
		rec.Err = err.Error()
	}
	rec.Resources = led.Snapshot()
	// Funnel order matters: the detector writes rec.Regressions, so it
	// runs before Record hands the (then-immutable) record to readers;
	// the query log runs after so its line carries the assigned ID.
	obs.DefaultRegressions.Observe(rec)
	obs.DefaultFlight.Record(rec)
	obs.DefaultQueryLog.Emit(rec)
}

// breakerOpenReason is the FallbackReason for breaker-routed queries.
const breakerOpenReason = "circuit breaker open"

// queryResilient is QueryCtx's ladder body (split out so the flight
// recorder wraps exactly one attempt).
func (qf *QFusor) queryResilient(ctx context.Context, eng *sqlengine.Engine, sql string, root *obs.Span) (*data.Table, *Report, error) {
	key := queryKey(sql)
	led := obs.LedgerFromContext(ctx)
	if qf.Breaker != nil && !qf.Breaker.Allow(key) {
		mBreakerSkips.Inc()
		rep := &Report{Fallback: true, FallbackReason: breakerOpenReason}
		t, err := qf.execNative(ctx, eng, sql, root)
		led.MarkPhase("execute")
		if err != nil {
			qf.setReport(*rep)
			return nil, rep, qerr(sql, "native", err)
		}
		mFallbacks.Inc()
		fallbackReason(true, nil)
		qf.setReport(*rep)
		return t, rep, nil
	}

	t, rep, ferr := qf.queryFusedOnce(ctx, eng, sql, root)
	if rep == nil {
		rep = &Report{}
	}
	if ferr == nil {
		if qf.Breaker != nil {
			qf.Breaker.Success(key)
			for _, k := range rep.wrapKeysUsed(qf) {
				qf.Breaker.Success(k)
			}
		}
		return t, rep, nil
	}
	if isCancellation(ctx, ferr) {
		mCancelled.Inc()
		return nil, rep, qerr(sql, "cancelled", ferr)
	}

	// The optimized path failed on a live query: record the failure
	// against the query and every wrapper it used, then degrade to the
	// engine's native plan.
	if qf.Breaker != nil {
		if qf.Breaker.Failure(key) {
			mBreakerTrips.Inc()
		}
		for _, k := range rep.wrapKeysUsed(qf) {
			if qf.Breaker.Failure(k) {
				mBreakerTrips.Inc()
			}
		}
	}
	// A failing plan must not be served from the plan-decision cache
	// again: evict this query's entry and every entry calling any of the
	// wrappers involved (a wrapper whose breaker is accumulating
	// failures — or has just opened — may be cached under other queries
	// too).
	qf.planCacheEvictFailure(eng, sql, rep)
	led.AddRetry()
	fb := root.Child("phase:fallback")
	fb.SetAttr("cause", ferr.Error())
	nt, nerr := qf.execNative(ctx, eng, sql, fb)
	fb.End()
	led.MarkPhase("fallback")
	if nerr != nil {
		if isCancellation(ctx, nerr) {
			mCancelled.Inc()
			return nil, rep, qerr(sql, "cancelled", nerr)
		}
		// Both paths failed: surface both causes in one chain.
		return nil, rep, qerr(sql, "fallback", errors.Join(ferr, nerr))
	}
	mFallbacks.Inc()
	fallbackReason(false, ferr)
	rep.Fallback = true
	rep.FallbackReason = ferr.Error()
	qf.setReport(*rep)
	return nt, rep, nil
}

// queryFusedOnce runs one attempt of the optimized path (Process +
// execute) with panic containment, and — on success — closes the §5.2
// drift loop by recording each fused section's measured cost against
// its prediction. The Report is returned even on failure so the caller
// knows which wrappers were involved.
func (qf *QFusor) queryFusedOnce(ctx context.Context, eng *sqlengine.Engine, sql string, root *obs.Span) (_ *data.Table, rep *Report, err error) {
	defer resilience.Recover(&err)
	led := obs.LedgerFromContext(ctx)
	q, rep, perr := qf.ProcessTraced(eng, sql, root)
	led.MarkPhase("optimize")
	if perr != nil {
		return nil, rep, perr
	}
	base := qf.sectionBaselines(rep)
	sp := root.Child("phase:execute")
	t, xerr := eng.ExecuteTracedCtx(ctx, q, sp)
	sp.End()
	led.MarkPhase("execute")
	if xerr == nil {
		qf.observeSectionCosts(rep, base)
	}
	return t, rep, xerr
}

// execNative plans and executes sql without any QFusor rewrite, with
// panic containment (the degradation target must not be able to crash
// the process either). span, when non-nil, receives the native plan's
// operator spans.
func (qf *QFusor) execNative(ctx context.Context, eng *sqlengine.Engine, sql string, span *obs.Span) (_ *data.Table, err error) {
	defer resilience.Recover(&err)
	q, perr := eng.Plan(sql)
	if perr != nil {
		return nil, perr
	}
	return eng.ExecuteTracedCtx(ctx, q, span)
}

// isCancellation reports whether err (or the context itself) represents
// a caller-requested stop rather than a fault: context cancellation,
// deadline expiry, or the PyLite interrupt/step budget. These are never
// retried on the native plan — re-running a cancelled query would
// violate the caller's request, and an exhausted step budget stays
// exhausted.
func isCancellation(ctx context.Context, err error) bool {
	if ctx != nil && ctx.Err() != nil {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ie *pylite.InterruptError
	return errors.As(err, &ie)
}

// qerr wraps err as a typed query error unless it already is one.
func qerr(sql, stage string, err error) error {
	var qe *resilience.QueryError
	if errors.As(err, &qe) {
		return err
	}
	return &resilience.QueryError{SQL: sql, Stage: stage, Err: err}
}

// planCacheEvictFailure drops the plan-cache entries implicated in a
// fused-path failure: the query's own entry plus any entry whose plan
// calls one of the wrappers this query used. Nil-safe / off-safe.
func (qf *QFusor) planCacheEvictFailure(eng *sqlengine.Engine, sql string, rep *Report) {
	if !qf.planCacheOn() {
		return
	}
	qf.PlanCache.Invalidate(planCacheKey(eng, qf.Opts, sql))
	for _, k := range rep.wrapKeysUsed(qf) {
		qf.PlanCache.InvalidateWrapper(k)
	}
}

// wrapKeysUsed maps the wrappers this query's Process registered (or
// reused) to their breaker keys.
func (rep *Report) wrapKeysUsed(qf *QFusor) []string {
	return qf.wc.breakerKeys(rep.Wrappers)
}
