package core

import (
	"fmt"
	"strings"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/sqlengine"
)

// fuseScalarChains is expression-level scalar fusion (fusion case F1
// restricted to scalar UDFs — the YeSQL baseline, and QFusor's fallback
// when a section cannot be realized as a plan rewrite): every maximal
// scalar-UDF subtree with at least two UDF calls is replaced by one
// fused scalar wrapper. The plan's shape is untouched.
func (qf *QFusor) fuseScalarChains(seg *Segment, rep *Report) error {
	for _, p := range seg.Chain {
		var childSchema data.Schema
		if len(p.Children) == 1 {
			childSchema = p.Children[0].Schema
		}
		exprLists := [][]sqlengine.SQLExpr{p.Exprs, p.GroupBy, p.TFArgs}
		for _, list := range exprLists {
			for i, e := range list {
				ne, err := qf.fuseExprChains(e, childSchema, rep)
				if err != nil {
					return err
				}
				list[i] = ne
			}
		}
		for ai := range p.Aggs {
			for i, a := range p.Aggs[ai].Args {
				ne, err := qf.fuseExprChains(a, childSchema, rep)
				if err != nil {
					return err
				}
				p.Aggs[ai].Args[i] = ne
			}
		}
	}
	return nil
}

// fuseExprChains rewrites e, replacing fusible scalar-UDF subtrees.
func (qf *QFusor) fuseExprChains(e sqlengine.SQLExpr, childSchema data.Schema, rep *Report) (sqlengine.SQLExpr, error) {
	if e == nil {
		return nil, nil
	}
	// Try the whole subtree when rooted at a UDF call.
	if f, ok := e.(*sqlengine.FuncExpr); ok {
		if u, isUDF := qf.catalog().UDF(f.Name); isUDF && u.Kind == ffi.Scalar {
			if qf.scalarChainEligible(e) && countScalarUDFs(e, qf.catalog()) >= 2 {
				return qf.emitScalarWrapper(e, childSchema, rep)
			}
		}
	}
	// Otherwise recurse into children.
	var outerErr error
	out := cloneViaWalk(e, func(x sqlengine.SQLExpr) sqlengine.SQLExpr { return x })
	rewriteChildren(out, func(child sqlengine.SQLExpr) sqlengine.SQLExpr {
		ne, err := qf.fuseExprChains(child, childSchema, rep)
		if err != nil {
			outerErr = err
			return child
		}
		return ne
	})
	return out, outerErr
}

// rewriteChildren applies fn to each direct child expression of e.
func rewriteChildren(e sqlengine.SQLExpr, fn func(sqlengine.SQLExpr) sqlengine.SQLExpr) {
	switch x := e.(type) {
	case *sqlengine.FuncExpr:
		for i, a := range x.Args {
			x.Args[i] = fn(a)
		}
	case *sqlengine.BinExpr:
		x.L = fn(x.L)
		x.R = fn(x.R)
	case *sqlengine.UnaryExpr:
		x.E = fn(x.E)
	case *sqlengine.CaseExpr:
		if x.Operand != nil {
			x.Operand = fn(x.Operand)
		}
		for i := range x.Whens {
			x.Whens[i] = fn(x.Whens[i])
			x.Thens[i] = fn(x.Thens[i])
		}
		if x.Else != nil {
			x.Else = fn(x.Else)
		}
	case *sqlengine.BetweenExpr:
		x.E = fn(x.E)
		x.Lo = fn(x.Lo)
		x.Hi = fn(x.Hi)
	case *sqlengine.InExpr:
		x.E = fn(x.E)
		for i := range x.List {
			x.List[i] = fn(x.List[i])
		}
	case *sqlengine.IsNullExpr:
		x.E = fn(x.E)
	case *sqlengine.CastExpr:
		x.E = fn(x.E)
	}
}

// scalarChainEligible: the subtree contains only scalar UDFs, native
// helpers, literals and column refs.
func (qf *QFusor) scalarChainEligible(e sqlengine.SQLExpr) bool {
	ok := true
	sqlengine.WalkExpr(e, func(x sqlengine.SQLExpr) bool {
		switch f := x.(type) {
		case *sqlengine.FuncExpr:
			if u, isUDF := qf.catalog().UDF(f.Name); isUDF {
				if u.Kind != ffi.Scalar {
					ok = false
					return false
				}
				return true
			}
			if _, native := nativeHelper[strings.ToLower(f.Name)]; !native {
				ok = false
				return false
			}
		case *sqlengine.ColRef, *sqlengine.Lit, *sqlengine.BinExpr,
			*sqlengine.UnaryExpr, *sqlengine.CaseExpr, *sqlengine.BetweenExpr,
			*sqlengine.InExpr, *sqlengine.IsNullExpr, *sqlengine.CastExpr:
			// fine
		default:
			ok = false
			return false
		}
		return true
	})
	return ok
}

func countScalarUDFs(e sqlengine.SQLExpr, cat *sqlengine.Catalog) int {
	n := 0
	sqlengine.WalkExpr(e, func(x sqlengine.SQLExpr) bool {
		if f, ok := x.(*sqlengine.FuncExpr); ok {
			if _, isUDF := cat.UDF(f.Name); isUDF {
				n++
			}
		}
		return true
	})
	return n
}

// emitScalarWrapper generates the TF1 wrapper for a scalar subtree and
// returns the replacement call expression.
func (qf *QFusor) emitScalarWrapper(e sqlengine.SQLExpr, childSchema data.Schema, rep *Report) (sqlengine.SQLExpr, error) {
	// Collect distinct input columns in first-use order.
	var cols []*sqlengine.ColRef
	seen := map[int]int{}
	sqlengine.WalkExpr(e, func(x sqlengine.SQLExpr) bool {
		if cr, ok := x.(*sqlengine.ColRef); ok {
			if _, dup := seen[cr.Index]; !dup {
				seen[cr.Index] = len(cols)
				cols = append(cols, cr)
			}
		}
		return true
	})
	name := qf.nextName()
	pb := &pyBuilder{indent: 2}
	pb.colVar = func(cr *sqlengine.ColRef) (string, error) {
		pi, ok := seen[cr.Index]
		if !ok {
			return "", fmt.Errorf("core: unseen column %s", cr)
		}
		return fmt.Sprintf("__b%d", pi), nil
	}
	expr, err := translateExpr(e, pb)
	if err != nil {
		return nil, err
	}
	var src strings.Builder
	params := make([]string, 0, len(cols)+1)
	for i := range cols {
		params = append(params, fmt.Sprintf("__b%dcol", i))
	}
	params = append(params, "__n")
	fmt.Fprintf(&src, "def %s(%s):\n", name, strings.Join(params, ", "))
	src.WriteString("    __o0 = []\n")
	src.WriteString("    __i = 0\n")
	src.WriteString("    while __i < __n:\n")
	for i := range cols {
		fmt.Fprintf(&src, "        __b%d = __b%dcol[__i]\n", i, i)
	}
	src.WriteString("        __i = __i + 1\n")
	for _, l := range strings.Split(strings.TrimRight(pb.b.String(), "\n"), "\n") {
		if l != "" {
			fmt.Fprintf(&src, "%s\n", l)
		}
	}
	fmt.Fprintf(&src, "        __o0.append(%s)\n", expr)
	src.WriteString("    return [__o0]\n")

	outKind := data.KindString
	if f, ok := e.(*sqlengine.FuncExpr); ok {
		if u, isUDF := qf.catalog().UDF(f.Name); isUDF {
			outKind = u.OutKind()
		}
	}
	u, cached, err := qf.registerWrapper(name, src.String(), []string{name}, []data.Kind{outKind}, false)
	if err != nil {
		return nil, err
	}
	if cached {
		rep.CacheHits++
	}
	u.Kind = ffi.Scalar
	inKinds := make([]data.Kind, len(cols))
	for i, cr := range cols {
		inKinds[i] = data.KindString
		if cr.Index >= 0 && cr.Index < len(childSchema) {
			inKinds[i] = childSchema[cr.Index].Kind
		}
	}
	u.InKinds = inKinds
	// The engine must resolve the wrapper by name during execution.
	qf.catalog().PutUDF(u)
	rep.Sections++
	rep.Sources = append(rep.Sources, src.String())
	rep.Wrappers = append(rep.Wrappers, u.Name)
	// Scalar-chain wrappers have no trace, so they always run closure-tier.
	rep.Tiers = append(rep.Tiers, "closure")

	args := make([]sqlengine.SQLExpr, len(cols))
	for i, cr := range cols {
		cp := *cr
		args[i] = &cp
	}
	// A cache hit returns a previously registered wrapper: the call must
	// use its name, not the freshly allocated one.
	return &sqlengine.FuncExpr{Name: u.Name, Args: args}, nil
}
