package core_test

import (
	"testing"

	"qfusor/internal/core"
	"qfusor/internal/ffi"
)

// TestProfilerPopulatesColdStats: probing a cold scalar UDF must leave
// measured statistics in its stateful dictionary (ffi.Stats), so
// Algorithm 2 decides from learned costs instead of defaults.
func TestProfilerPopulatesColdStats(t *testing.T) {
	eng, _ := buildEngine(t)
	u, ok := eng.Catalog.UDF("upname")
	if !ok {
		t.Fatal("upname not registered")
	}
	if !u.Stats.Snapshot().IsZero() {
		t.Fatalf("expected cold stats before probing, got %+v", u.Stats.Snapshot())
	}
	probed := core.NewProfiler().ProfileColdUDFs(eng, "people")
	if probed == 0 {
		t.Fatal("no UDFs probed")
	}
	s := u.Stats.Snapshot()
	if s.Calls == 0 || s.InRows == 0 || s.OutRows == 0 {
		t.Fatalf("probe did not populate stats: %+v", s)
	}
	// Probing again must not re-probe warmed UDFs.
	if again := core.NewProfiler().ProfileColdUDFs(eng, "people"); again != 0 {
		t.Fatalf("warm UDFs re-probed: %d", again)
	}
}

// TestProfilerFailingProbeLeavesCold: a probe that errors must leave
// the UDF fully cold — no partial statistics the cost model could
// mistake for learned values.
func TestProfilerFailingProbeLeavesCold(t *testing.T) {
	eng, _ := buildEngine(t)
	reg := core.NewRegistry(0)
	if err := reg.Define(`
@scalarudf
def explodes(s: str) -> str:
    return s.definitely_not_a_method()
`); err != nil {
		t.Fatal(err)
	}
	reg.Attach(eng)
	core.NewProfiler().ProfileColdUDFs(eng, "people")
	u, ok := eng.Catalog.UDF("explodes")
	if !ok {
		t.Fatal("explodes not registered")
	}
	if !u.Stats.Snapshot().IsZero() {
		t.Fatalf("failing probe left partial stats: %+v", u.Stats.Snapshot())
	}
}

// TestStatsResetClearsEveryField exercises the (*Stats).Reset the
// profiler's error path relies on.
func TestStatsResetClearsEveryField(t *testing.T) {
	var s ffi.Stats
	s.Calls.Add(3)
	s.InRows.Add(96)
	s.OutRows.Add(96)
	s.WallNanos.Add(12345)
	s.WrapNanos.Add(234)
	if s.Snapshot().IsZero() {
		t.Fatal("stats should be non-zero before reset")
	}
	s.Reset()
	if !s.Snapshot().IsZero() {
		t.Fatalf("Reset left fields set: %+v", s.Snapshot())
	}
}

// TestCostBucketRoundTrip: a bucket's representative value must
// quantize back to the same bucket across the half-decade range the
// dictionary stores, and the representative cost must grow by ~sqrt(10)
// per bucket.
func TestCostBucketRoundTrip(t *testing.T) {
	for b := 0; b <= 24; b++ {
		v := core.BucketedCost(b)
		if got := core.CostBucket(v); got != b {
			t.Errorf("bucket %d: representative %.3g re-quantized to %d", b, v, got)
		}
	}
	if core.BucketedCost(2) != 10 {
		t.Errorf("bucket 2 representative = %v, want 10 (one decade = two buckets)", core.BucketedCost(2))
	}
	// Non-positive costs collapse to bucket 0.
	if core.CostBucket(0) != 0 || core.CostBucket(-17) != 0 {
		t.Error("non-positive costs must map to bucket 0")
	}
	// Known half-decade anchors.
	anchors := map[float64]int{1: 0, 3.16: 1, 10: 2, 100: 4, 1000: 6, 1e6: 12}
	for v, want := range anchors {
		if got := core.CostBucket(v); got != want {
			t.Errorf("CostBucket(%g) = %d, want %d", v, got, want)
		}
	}
}

// TestProfilerSkipsUnsampleableUDFs: UDFs whose declared inputs cannot
// be matched to table columns stay cold without error.
func TestProfilerSkipsUnsampleableUDFs(t *testing.T) {
	eng, _ := buildEngine(t)
	reg := core.NewRegistry(0)
	if err := reg.Define(`
@scalarudf
def needsfloat(x: float) -> float:
    return x * 2.0
`); err != nil {
		t.Fatal(err)
	}
	reg.Attach(eng)
	// people has no float column, so needsfloat cannot be sampled.
	core.NewProfiler().ProfileColdUDFs(eng, "people")
	u, _ := eng.Catalog.UDF("needsfloat")
	if u == nil {
		t.Fatal("needsfloat not registered")
	}
	if !u.Stats.Snapshot().IsZero() {
		t.Fatalf("unsampleable UDF gained stats: %+v", u.Stats.Snapshot())
	}
}
