package core_test

// Differential fuzz harness for the plan-decision cache and the fused
// execution tiers: every generated UDF-bearing query is executed five
// ways — engine-native (no fusion), fused on the closure tier, fused on
// the VM tier (cold, warm from the plan cache, and with every third UDF
// call force-bailed to the closure tier), relationally inlined
// (tier=inlined), and inlined-with-forced-opaque-fallback (the inline
// pass classifies but every site falls back to the fusion ladder) —
// and all arms must be bit-identical. The generator is a tiny grammar
// over the test UDFs: opaque ones (scalar slug, expand pieces,
// aggregate longest) and guarded inlinable ones (clip, shout, score)
// whose bodies exercise CASE-producing conditionals, string builtins
// and NULL-guard refinements. Any byte string maps to a valid
// deterministic query; go test runs the seed corpus, `go test -fuzz
// FuzzDiff` explores beyond it.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"qfusor/internal/core"
	"qfusor/internal/data"
	"qfusor/internal/engines"
	"qfusor/internal/ffi"
)

// diffFixture is the process-wide instance the harness queries. Shared
// across fuzz iterations (launching an engine per input would dominate
// runtime); diffMu serializes iterations so purge/lookup accounting
// stays coherent. Never closed — Monet is in-process.
var (
	diffOnce sync.Once
	diffInst *engines.Instance
	diffErr  error
	diffMu   sync.Mutex
)

const diffUDFs = `
@scalarudf
def slug(s: str) -> str:
    return s.strip().lower().replace(" ", "-")

@expandudf
def pieces(s: str) -> str:
    for p in s.split("-"):
        yield p

@aggregateudf
class longest:
    def init(self):
        self.best = ""
    def step(self, s):
        if s is not None and len(s) > len(self.best):
            self.best = s
    def final(self):
        return self.best

@scalarudf
def clip(x: int) -> int:
    if x is None:
        return None
    if x > 3:
        return 3
    return x

@scalarudf
def shout(s: str) -> str:
    if s is None:
        return ""
    return s.strip().upper()

@scalarudf
def score(x: int) -> float:
    if x is None or x < 0:
        return 0.0
    return round(x * 7 / 2, 1)
`

func diffDB(t *testing.T) *engines.Instance {
	t.Helper()
	diffOnce.Do(func() {
		in := engines.Launch(engines.Config{Profile: engines.Monet, JIT: true})
		if err := in.Define(diffUDFs); err != nil {
			diffErr = err
			return
		}
		if err := in.Eng.Exec("CREATE TABLE notes (id int, title string)"); err != nil {
			diffErr = err
			return
		}
		if err := in.Eng.Exec(`INSERT INTO notes VALUES
			(1, '  Hello World  '), (2, 'Go Databases'), (3, 'Query Fusion Rocks'),
			(4, 'a'), (5, 'UDF queries in SQL engines'), (6, 'Plan Cache Hit')`); err != nil {
			diffErr = err
			return
		}
		// vals carries NULLs in both value columns so the inlined arms'
		// NULL-guard CASE translations face real NULL inputs.
		if err := in.Eng.Exec("CREATE TABLE vals (k int, v int, s string)"); err != nil {
			diffErr = err
			return
		}
		if err := in.Eng.Exec(`INSERT INTO vals VALUES
			(1, 1, '  alpha  '), (2, NULL, 'beta'), (3, -4, NULL),
			(4, 7, '  Gamma Ray'), (5, 0, ''), (6, 42, ' mixed Case '),
			(7, 3, 'BETA')`); err != nil {
			diffErr = err
			return
		}
		diffInst = in
	})
	if diffErr != nil {
		t.Fatalf("diff fixture: %v", diffErr)
	}
	return diffInst
}

// Grammar dimensions. Every combination is a valid query, so arbitrary
// fuzz bytes always decode to something executable.
var (
	diffScalars = []string{
		"slug(title)",
		"slug(slug(title))",
		"slug(slug(slug(title)))",
	}
	diffPreds = []string{
		"",
		" WHERE id > 1",
		" WHERE id < 5",
		" WHERE slug(title) = 'go-databases'",
	}
	// Inline-tier dimensions over vals: guarded inlinable scalars (CASE
	// conditionals, string builtins, arithmetic/round/division) alone,
	// nested, and feeding opaque UDFs (partial inlining).
	diffVScalars = []string{
		"clip(v)",
		"shout(s)",
		"shout(shout(s))",
		"slug(shout(s))",
		"score(clip(v))",
	}
	diffVPreds = []string{
		"",
		" WHERE k > 2",
		" WHERE clip(v) = 3",
		" WHERE shout(s) = 'BETA'",
	}
)

const (
	diffNumShapes = 8
	// DiffSeedSpace is the exhaustive seed count TestDiffSeeds covers:
	// shapes 0-5 draw from the notes dimensions, shapes 6-7 from the
	// vals (inline-tier) dimensions.
	diffSeedSpace = 6*3*4 + 2*5*4
)

// buildDiffQuery maps fuzz bytes to a deterministic UDF query. Missing
// bytes read as zero, so short inputs are valid too.
func buildDiffQuery(dat []byte) string {
	pick := func(i, n int) int {
		if i < len(dat) {
			return int(dat[i]) % n
		}
		return 0
	}
	scalar := diffScalars[pick(1, len(diffScalars))]
	pred := diffPreds[pick(2, len(diffPreds))]
	vscalar := diffVScalars[pick(1, len(diffVScalars))]
	vpred := diffVPreds[pick(2, len(diffVPreds))]
	switch pick(0, diffNumShapes) {
	case 0:
		return fmt.Sprintf("SELECT id, %s AS s FROM notes%s ORDER BY id", scalar, pred)
	case 1:
		return fmt.Sprintf("SELECT longest(%s) AS l FROM notes%s", scalar, pred)
	case 2:
		return fmt.Sprintf("SELECT p FROM (SELECT pieces(%s) AS p FROM notes%s) AS x ORDER BY p", scalar, pred)
	case 3:
		return fmt.Sprintf("SELECT longest(p) AS l FROM (SELECT pieces(%s) AS p FROM notes%s) AS x", scalar, pred)
	case 4:
		// Grouped aggregation over a UDF key: the trace carries KeyRegs
		// and both a native and a UDF aggregate — the VM-tier agg path.
		return fmt.Sprintf("SELECT s, COUNT(*) AS n, longest(s) AS l FROM (SELECT %s AS s FROM notes%s) AS x GROUP BY s ORDER BY s", scalar, pred)
	case 5:
		return fmt.Sprintf("SELECT id, %s AS a, slug(title) AS b FROM notes%s ORDER BY id", scalar, pred)
	case 6:
		// Inline-tier projection over NULL-bearing columns.
		return fmt.Sprintf("SELECT k, %s AS a FROM vals%s ORDER BY k", vscalar, vpred)
	default:
		// Inlinable scalar feeding an opaque aggregate: the argument
		// inlines while the aggregate stays on the fusion ladder.
		return fmt.Sprintf("SELECT longest(shout(s)) AS l, COUNT(*) AS n FROM (SELECT s, %s AS a FROM vals%s) AS x", vscalar, vpred)
	}
}

// renderTable flattens a result to a comparable string: schema header
// then every cell via the value formatter (bit-identical comparison).
func renderTable(t *data.Table) string {
	var b strings.Builder
	for i, f := range t.Schema {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s:%s", f.Name, f.Kind)
	}
	b.WriteByte('\n')
	for r := 0; r < t.NumRows(); r++ {
		for i, c := range t.Cols {
			if i > 0 {
				b.WriteByte('|')
			}
			if c.IsNull(r) {
				b.WriteString("<null>")
			} else {
				b.WriteString(c.Get(r).String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runDiff executes one differential check, five ways: native, fused on
// the closure tier, fused on the VM tier (cold, warm from the plan
// cache, and with forced per-call bailouts), relationally inlined, and
// inlined with the forced-opaque fallback hook. All arms must agree
// exactly.
func runDiff(t *testing.T, dat []byte) {
	in := diffDB(t)
	sql := buildDiffQuery(dat)
	diffMu.Lock()
	defer diffMu.Unlock()
	defer func() {
		in.QF.Opts.Tier = "auto"
		ffi.SetVMBailEvery(0)
		core.SetInlineForceOpaque(false)
	}()

	nat, nerr := in.Query(sql)

	// Arm 2: closure tier pinned.
	in.QF.Opts.Tier = "closure"
	in.QF.PlanCache.Purge()
	clo, cloErr := in.QueryFused(sql)

	// Arms 3+4: VM tier pinned, cold then warm (plan-cache hit).
	in.QF.Opts.Tier = "vm"
	in.QF.PlanCache.Purge()
	s0 := in.QF.PlanCache.Stats()
	cold, cerr := in.QueryFused(sql)
	warm, werr := in.QueryFused(sql)

	// Arm 5: VM tier with every 3rd VM call force-bailed to the closure
	// tier — exercises the bailout protocol on rows that would stay on
	// the VM otherwise.
	ffi.SetVMBailEvery(3)
	bailed, berr := in.QueryFused(sql)
	ffi.SetVMBailEvery(0)

	// Arm 6: relational inlining forced past the cost model — inlinable
	// call sites substitute into engine expressions; fully inlined
	// queries skip fusion discovery entirely (tier=inlined).
	in.QF.Opts.Tier = "inline"
	in.QF.PlanCache.Purge()
	inl, ierr := in.QueryFused(sql)

	// Arm 7: the forced-opaque fallback hook — the inline pass still
	// classifies every UDF but applies no substitution, so the query
	// takes the VM/closure ladder it would have taken pre-inlining.
	core.SetInlineForceOpaque(true)
	in.QF.PlanCache.Purge()
	fop, ferr := in.QueryFused(sql)
	core.SetInlineForceOpaque(false)

	if nerr != nil || cloErr != nil || cerr != nil || werr != nil || berr != nil || ierr != nil || ferr != nil {
		if nerr != nil && cloErr != nil && cerr != nil && werr != nil && berr != nil && ierr != nil && ferr != nil {
			return // all arms agree the query fails
		}
		t.Fatalf("error disagreement for %q:\n native:        %v\n closure:       %v\n vm-cold:       %v\n vm-warm:       %v\n vm-bailout:    %v\n inlined:       %v\n inline-opaque: %v",
			sql, nerr, cloErr, cerr, werr, berr, ierr, ferr)
	}
	want := renderTable(nat)
	if got := renderTable(clo); got != want {
		t.Fatalf("fused-closure mismatch for %q:\ngot:\n%s\nwant:\n%s", sql, got, want)
	}
	if got := renderTable(cold); got != want {
		t.Fatalf("fused-vm-cold mismatch for %q:\ngot:\n%s\nwant:\n%s", sql, got, want)
	}
	if got := renderTable(warm); got != want {
		t.Fatalf("fused-vm-warm mismatch for %q:\ngot:\n%s\nwant:\n%s", sql, got, want)
	}
	if got := renderTable(bailed); got != want {
		t.Fatalf("fused-vm-bailout mismatch for %q:\ngot:\n%s\nwant:\n%s", sql, got, want)
	}
	if got := renderTable(inl); got != want {
		t.Fatalf("inlined mismatch for %q:\ngot:\n%s\nwant:\n%s", sql, got, want)
	}
	if got := renderTable(fop); got != want {
		t.Fatalf("inline-forced-opaque mismatch for %q:\ngot:\n%s\nwant:\n%s", sql, got, want)
	}
	s1 := in.QF.PlanCache.Stats()
	if s1.Hits <= s0.Hits {
		t.Fatalf("warm run of %q was not served from the plan cache (stats %+v -> %+v)",
			sql, s0, s1)
	}
}

// FuzzDiff is the fuzz entry point. The seed corpus spans every shape
// and most predicate/scalar combinations; fuzzing mutates beyond it.
func FuzzDiff(f *testing.F) {
	for _, seed := range [][]byte{
		{0, 0, 0}, {0, 2, 3}, {1, 1, 0}, {1, 2, 1}, {2, 0, 2},
		{2, 1, 3}, {3, 2, 0}, {3, 0, 1}, {4, 1, 2}, {4, 2, 3},
		{6, 0, 0}, {6, 1, 2}, {6, 2, 3}, {6, 3, 1}, {6, 4, 2},
		{7, 0, 0}, {7, 2, 2}, {7, 4, 3},
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, dat []byte) {
		runDiff(t, dat)
	})
}

// TestDiffSeeds exhaustively covers the generator's whole space (every
// shape x scalar x predicate, with shapes 6-7 drawing from the
// inline-tier dimensions), so plain `go test` already checks every
// distinct query without the fuzz engine.
func TestDiffSeeds(t *testing.T) {
	n := 0
	for shape := 0; shape < diffNumShapes; shape++ {
		nsc, npr := len(diffScalars), len(diffPreds)
		if shape >= 6 {
			nsc, npr = len(diffVScalars), len(diffVPreds)
		}
		for sc := 0; sc < nsc; sc++ {
			for pr := 0; pr < npr; pr++ {
				runDiff(t, []byte{byte(shape), byte(sc), byte(pr)})
				n++
			}
		}
	}
	if n != diffSeedSpace {
		t.Fatalf("covered %d seeds, want %d", n, diffSeedSpace)
	}
}

// TestDiffWarmConcurrent hammers one cached plan from many goroutines
// (meaningful under -race): concurrent executions share the cached
// *sqlengine.Query, so any plan-tree mutation by an executor — or any
// unsynchronized cache bookkeeping — trips the detector.
func TestDiffWarmConcurrent(t *testing.T) {
	in := diffDB(t)
	const sql = "SELECT id, slug(slug(title)) AS s FROM notes ORDER BY id"
	diffMu.Lock()
	defer diffMu.Unlock()
	nat, err := in.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want := renderTable(nat)
	if _, err := in.QueryFused(sql); err != nil { // prime the cache
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				res, err := in.QueryFused(sql)
				if err != nil {
					t.Error(err)
					return
				}
				if got := renderTable(res); got != want {
					t.Errorf("concurrent warm mismatch:\ngot:\n%s\nwant:\n%s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
