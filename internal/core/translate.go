package core

import (
	"fmt"
	"strconv"
	"strings"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/sqlengine"
)

// helperSource defines the NULL-aware relational primitives the code
// generator references when it offloads relational operators into the
// UDF environment (§5.3.2: "rewriting the relational operator in the
// UDF's language"). Defined once per runtime.
const helperSource = `
def __qf_lt(a, b):
    return a is not None and b is not None and a < b

def __qf_le(a, b):
    return a is not None and b is not None and a <= b

def __qf_gt(a, b):
    return a is not None and b is not None and a > b

def __qf_ge(a, b):
    return a is not None and b is not None and a >= b

def __qf_eq(a, b):
    return a is not None and b is not None and a == b

def __qf_ne(a, b):
    return a is not None and b is not None and a != b

def __qf_add(a, b):
    if a is None or b is None:
        return None
    return a + b

def __qf_sub(a, b):
    if a is None or b is None:
        return None
    return a - b

def __qf_mul(a, b):
    if a is None or b is None:
        return None
    return a * b

def __qf_div(a, b):
    if a is None or b is None or b == 0:
        return None
    return a / b

def __qf_mod(a, b):
    if a is None or b is None or b == 0:
        return None
    return a % b

def __qf_neg(a):
    if a is None:
        return None
    return -a

def __qf_concat(a, b):
    if a is None or b is None:
        return None
    return str(a) + str(b)

def __qf_like(s, pat):
    if s is None or pat is None:
        return False
    import re
    rx = ""
    for ch in pat:
        if ch == "%":
            rx = rx + ".*"
        elif ch == "_":
            rx = rx + "."
        elif ch in ".^$*+?()[]{}|\\":
            rx = rx + "\\" + ch
        else:
            rx = rx + ch
    return re.match("(?is)" + rx + "$", str(s)) is not None

def __qf_length(a):
    if a is None:
        return None
    return len(str(a))

def __qf_abs(a):
    if a is None:
        return None
    return abs(a)

def __qf_round(a, nd=0):
    if a is None:
        return None
    return round(a, nd)

def __qf_coalesce(*args):
    for a in args:
        if a is not None:
            return a
    return None

def __qf_nullif(a, b):
    if a == b:
        return None
    return a

def __qf_substr(s, start, n=None):
    if s is None:
        return None
    s = str(s)
    if start > 0:
        start = start - 1
    elif start < 0:
        start = start + len(s)
    if start < 0:
        start = 0
    if n is None:
        return s[start:]
    return s[start:start + n]

def __qf_instr(a, b):
    if a is None or b is None:
        return None
    return str(a).find(str(b)) + 1

def __qf_trim(a):
    if a is None:
        return None
    return str(a).strip()

def __qf_upper(a):
    if a is None:
        return None
    return str(a).upper()

def __qf_lower(a):
    if a is None:
        return None
    return str(a).lower()

def __qf_cast_int(a):
    if a is None:
        return None
    try:
        return int(float(str(a)))
    except ValueError:
        return 0

def __qf_cast_float(a):
    if a is None:
        return None
    try:
        return float(str(a))
    except ValueError:
        return 0.0

def __qf_cast_str(a):
    if a is None:
        return None
    return str(a)
`

// pyBuilder accumulates generated PyLite source with indentation.
type pyBuilder struct {
	b      strings.Builder
	indent int
	tmpN   int
	// colVar maps a column reference (plan-bound or DFG field
	// placeholder) to its PyLite variable text.
	colVar func(cr *sqlengine.ColRef) (string, error)
}

func (pb *pyBuilder) line(format string, args ...any) {
	pb.b.WriteString(strings.Repeat("    ", pb.indent))
	fmt.Fprintf(&pb.b, format, args...)
	pb.b.WriteByte('\n')
}

func (pb *pyBuilder) tmp() string {
	pb.tmpN++
	return fmt.Sprintf("__t%d", pb.tmpN)
}

// pyLit renders a constant as PyLite source.
func pyLit(v data.Value) string {
	switch v.Kind {
	case data.KindNull:
		return "None"
	case data.KindBool:
		if v.I != 0 {
			return "True"
		}
		return "False"
	case data.KindInt:
		return strconv.FormatInt(v.I, 10)
	case data.KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case data.KindString:
		return pyQuote(v.S)
	default:
		return pyQuote(data.MarshalJSONValue(v))
	}
}

func pyQuote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString("\\\"")
		case '\\':
			b.WriteString("\\\\")
		case '\n':
			b.WriteString("\\n")
		case '\t':
			b.WriteString("\\t")
		case '\r':
			b.WriteString("\\r")
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// translateExpr lowers a bound SQL expression into a PyLite expression
// string, emitting helper statements into pb where needed (CASE). UDF
// calls translate to direct calls — they live in the same runtime, so
// the tracing JIT sees one continuous trace.
func translateExpr(e sqlengine.SQLExpr, pb *pyBuilder) (string, error) {
	switch x := e.(type) {
	case *sqlengine.ColRef:
		return pb.colVar(x)
	case *sqlengine.Lit:
		return pyLit(x.Value), nil
	case *sqlengine.BinExpr:
		l, err := translateExpr(x.L, pb)
		if err != nil {
			return "", err
		}
		r, err := translateExpr(x.R, pb)
		if err != nil {
			return "", err
		}
		switch x.Op {
		case "AND":
			return fmt.Sprintf("(%s and %s)", l, r), nil
		case "OR":
			return fmt.Sprintf("(%s or %s)", l, r), nil
		case "=":
			return fmt.Sprintf("__qf_eq(%s, %s)", l, r), nil
		case "!=":
			return fmt.Sprintf("__qf_ne(%s, %s)", l, r), nil
		case "<":
			return fmt.Sprintf("__qf_lt(%s, %s)", l, r), nil
		case "<=":
			return fmt.Sprintf("__qf_le(%s, %s)", l, r), nil
		case ">":
			return fmt.Sprintf("__qf_gt(%s, %s)", l, r), nil
		case ">=":
			return fmt.Sprintf("__qf_ge(%s, %s)", l, r), nil
		case "+":
			return fmt.Sprintf("__qf_add(%s, %s)", l, r), nil
		case "-":
			return fmt.Sprintf("__qf_sub(%s, %s)", l, r), nil
		case "*":
			return fmt.Sprintf("__qf_mul(%s, %s)", l, r), nil
		case "/":
			return fmt.Sprintf("__qf_div(%s, %s)", l, r), nil
		case "%":
			return fmt.Sprintf("__qf_mod(%s, %s)", l, r), nil
		case "||":
			return fmt.Sprintf("__qf_concat(%s, %s)", l, r), nil
		case "LIKE":
			return fmt.Sprintf("__qf_like(%s, %s)", l, r), nil
		}
		return "", fmt.Errorf("core: cannot offload operator %q", x.Op)
	case *sqlengine.UnaryExpr:
		s, err := translateExpr(x.E, pb)
		if err != nil {
			return "", err
		}
		if x.Op == "NOT" {
			return fmt.Sprintf("(not %s)", s), nil
		}
		return fmt.Sprintf("__qf_neg(%s)", s), nil
	case *sqlengine.FuncExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			s, err := translateExpr(a, pb)
			if err != nil {
				return "", err
			}
			args[i] = s
		}
		name := strings.ToLower(x.Name)
		if native, ok := nativeHelper[name]; ok {
			return fmt.Sprintf("%s(%s)", native, strings.Join(args, ", ")), nil
		}
		// UDF (or fused wrapper sub-call): direct call in the runtime.
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", ")), nil
	case *sqlengine.CaseExpr:
		out := pb.tmp()
		var operand string
		if x.Operand != nil {
			s, err := translateExpr(x.Operand, pb)
			if err != nil {
				return "", err
			}
			op := pb.tmp()
			pb.line("%s = %s", op, s)
			operand = op
		}
		pb.line("%s = None", out)
		for i := range x.Whens {
			cond, err := translateExpr(x.Whens[i], pb)
			if err != nil {
				return "", err
			}
			if operand != "" {
				cond = fmt.Sprintf("__qf_eq(%s, %s)", operand, cond)
			}
			kw := "if"
			if i > 0 {
				kw = "elif"
			}
			pb.line("%s %s:", kw, cond)
			pb.indent++
			then, err := translateExpr(x.Thens[i], pb)
			if err != nil {
				return "", err
			}
			pb.line("%s = %s", out, then)
			pb.indent--
		}
		if x.Else != nil {
			pb.line("else:")
			pb.indent++
			els, err := translateExpr(x.Else, pb)
			if err != nil {
				return "", err
			}
			pb.line("%s = %s", out, els)
			pb.indent--
		}
		return out, nil
	case *sqlengine.BetweenExpr:
		v, err := translateExpr(x.E, pb)
		if err != nil {
			return "", err
		}
		tv := pb.tmp()
		pb.line("%s = %s", tv, v)
		lo, err := translateExpr(x.Lo, pb)
		if err != nil {
			return "", err
		}
		hi, err := translateExpr(x.Hi, pb)
		if err != nil {
			return "", err
		}
		expr := fmt.Sprintf("(__qf_ge(%s, %s) and __qf_le(%s, %s))", tv, lo, tv, hi)
		if x.Not {
			expr = "(not " + expr + ")"
		}
		return expr, nil
	case *sqlengine.InExpr:
		v, err := translateExpr(x.E, pb)
		if err != nil {
			return "", err
		}
		tv := pb.tmp()
		pb.line("%s = %s", tv, v)
		var terms []string
		for _, item := range x.List {
			s, err := translateExpr(item, pb)
			if err != nil {
				return "", err
			}
			terms = append(terms, fmt.Sprintf("__qf_eq(%s, %s)", tv, s))
		}
		expr := "(" + strings.Join(terms, " or ") + ")"
		if x.Not {
			expr = "(not " + expr + ")"
		}
		return expr, nil
	case *sqlengine.IsNullExpr:
		s, err := translateExpr(x.E, pb)
		if err != nil {
			return "", err
		}
		if x.Not {
			return fmt.Sprintf("(%s is not None)", s), nil
		}
		return fmt.Sprintf("(%s is None)", s), nil
	case *sqlengine.CastExpr:
		s, err := translateExpr(x.E, pb)
		if err != nil {
			return "", err
		}
		switch x.Kind {
		case data.KindInt:
			return fmt.Sprintf("__qf_cast_int(%s)", s), nil
		case data.KindFloat:
			return fmt.Sprintf("__qf_cast_float(%s)", s), nil
		case data.KindBool:
			return fmt.Sprintf("bool(%s)", s), nil
		default:
			return fmt.Sprintf("__qf_cast_str(%s)", s), nil
		}
	}
	return "", fmt.Errorf("core: cannot translate %T to the UDF language", e)
}

// nativeHelper maps engine-native scalar functions to their offloaded
// PyLite implementations.
var nativeHelper = map[string]string{
	"length":   "__qf_length",
	"abs":      "__qf_abs",
	"round":    "__qf_round",
	"coalesce": "__qf_coalesce",
	"ifnull":   "__qf_coalesce",
	"nullif":   "__qf_nullif",
	"substr":   "__qf_substr",
	"instr":    "__qf_instr",
	"trim":     "__qf_trim",
	"sqlupper": "__qf_upper",
	"sqllower": "__qf_lower",
}

// translatable reports whether e can be lowered to the UDF language:
// every node type supported and every function either native-
// offloadable, a registered scalar UDF, or a (caller-handled) aggregate.
func translatable(e sqlengine.SQLExpr, cat *sqlengine.Catalog) bool {
	ok := true
	sqlengine.WalkExpr(e, func(x sqlengine.SQLExpr) bool {
		switch f := x.(type) {
		case *sqlengine.FuncExpr:
			name := strings.ToLower(f.Name)
			if _, native := nativeHelper[name]; native {
				return true
			}
			if u, isUDF := cat.UDF(f.Name); isUDF {
				if u.Kind == ffi.Scalar || u.Kind == ffi.Aggregate {
					return true
				}
				ok = false
				return false
			}
			if sqlengine.IsNativeAggregate(f.Name) {
				return true
			}
			ok = false
			return false
		case *sqlengine.ColRef, *sqlengine.Lit, *sqlengine.BinExpr,
			*sqlengine.UnaryExpr, *sqlengine.CaseExpr, *sqlengine.BetweenExpr,
			*sqlengine.InExpr, *sqlengine.IsNullExpr, *sqlengine.CastExpr:
			return true
		default:
			ok = false
			return false
		}
	})
	return ok
}
