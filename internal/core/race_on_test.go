//go:build race

package core_test

// raceEnabled reports that this test binary runs under the race
// detector, whose instrumentation makes wall-clock measurements too
// noisy for timing-convergence assertions.
const raceEnabled = true
