package core

// Per-construct inlining-decision tests: one case per PyLite AST shape,
// asserting both the classification verdict (inlinable vs opaque, with
// the exact reason) and the exact engine-expression template the
// translator emits. The NULL-propagation cases are the load-bearing
// ones — PyLite raises TypeError where SQL propagates NULL, so every
// strict operation must be provably non-NULL via the Froid guard idiom
// before it may translate.

import (
	"strings"
	"testing"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
)

// classifySrc defines a UDF module and classifies the named UDF.
func classifySrc(t *testing.T, src, name string) *inlineInfo {
	t.Helper()
	reg := NewRegistry(0)
	if err := reg.Define(src); err != nil {
		t.Fatalf("define: %v", err)
	}
	u, ok := reg.UDF(name)
	if !ok {
		t.Fatalf("UDF %s not registered", name)
	}
	return classifyUDF(u)
}

func TestInlineClassification(t *testing.T) {
	cases := []struct {
		name string
		src  string
		udf  string
		// want is the exact template rendering when inlinable; empty
		// means the case expects an opaque verdict.
		want string
		// reason is the exact opaque reason (matched verbatim).
		reason string
	}{
		{
			name: "guarded arithmetic straight-line",
			src: `@scalarudf
def f(x: int) -> int:
    if x is None:
        return None
    return x * 2 + 1
`,
			udf:  "f",
			want: "((x * 2) + 1)",
		},
		{
			name: "unguarded arithmetic is opaque (NULL would TypeError in Python)",
			src: `@scalarudf
def f(x: int) -> int:
    return x * 2
`,
			udf:    "f",
			reason: "* on possibly-None operands",
		},
		{
			name: "is-not-None guard refines the then branch",
			src: `@scalarudf
def f(x: int) -> int:
    if x is not None:
        return x + 10
    return None
`,
			udf:  "f",
			want: "CASE WHEN (x IS NOT NULL) THEN (x + 10) ELSE NULL END",
		},
		{
			name: "truthiness guard proves non-None (truthy implies not None)",
			src: `@scalarudf
def f(x: int) -> int:
    if x:
        return x - 1
    return 0
`,
			udf:  "f",
			want: "CASE WHEN x THEN (x - 1) ELSE 0 END",
		},
		{
			name: "and-guard refines its right operand",
			src: `@scalarudf
def f(x: int) -> bool:
    return x is not None and x > 0
`,
			udf:  "f",
			want: "((x IS NOT NULL) AND (x > 0))",
		},
		{
			name: "or propagates refinement through the false branch",
			src: `@scalarudf
def f(x: int) -> int:
    if x is None or x < 0:
        return 0
    return x
`,
			udf:  "f",
			want: "CASE WHEN ((x IS NULL) OR (x < 0)) THEN 0 ELSE x END",
		},
		{
			name: "unguarded comparison is opaque (None < n raises in Python)",
			src: `@scalarudf
def f(x: int) -> bool:
    return x < 10
`,
			udf:    "f",
			reason: "< on possibly-None operands",
		},
		{
			name: "unguarded equality is opaque (None == n is False in Python, NULL in SQL)",
			src: `@scalarudf
def f(s: str) -> bool:
    return s == "a"
`,
			udf:    "f",
			reason: "== on possibly-None operands",
		},
		{
			name: "chained comparison becomes AND of pairs",
			src: `@scalarudf
def f(x: int) -> bool:
    if x is None:
        return None
    return 0 < x < 10
`,
			udf:  "f",
			want: "CASE WHEN (x IS NULL) THEN NULL ELSE ((0 < x) AND (x < 10)) END",
		},
		{
			name: "mixed-kind ordering is opaque (SQL falls back to text, Python raises)",
			src: `@scalarudf
def f(x: int, s: str) -> bool:
    if x is None or s is None:
        return None
    return x < s
`,
			udf:    "f",
			reason: "< on mixed-kind operands",
		},
		{
			name: "string concat becomes ||",
			src: `@scalarudf
def f(s: str) -> str:
    if s is None:
        return None
    return s + "!"
`,
			udf:  "f",
			want: "(s || '!')",
		},
		{
			name: "strip/lower chain becomes trim+sqllower with Python's cutset",
			src: `@scalarudf
def f(s: str) -> str:
    if s is None:
        return None
    return s.strip().lower()
`,
			udf:  "f",
			want: "sqllower(trim(s, ' \t\n\r'))",
		},
		{
			name: "upper and len",
			src: `@scalarudf
def f(s: str) -> int:
    if s is None:
        return 0
    return len(s.upper())
`,
			udf:  "f",
			want: "CASE WHEN (s IS NULL) THEN 0 ELSE length(sqlupper(s)) END",
		},
		{
			name: "replace is not in the method whitelist",
			src: `@scalarudf
def f(s: str) -> str:
    if s is None:
        return None
    return s.replace(" ", "-")
`,
			udf:    "f",
			reason: "unsupported string method replace",
		},
		{
			name: "abs preserves kind, round(x) casts the integral float to int",
			src: `@scalarudf
def f(x: float) -> int:
    if x is None:
        return None
    return round(abs(x))
`,
			udf:  "f",
			want: "CAST(round(abs(x)) AS int)",
		},
		{
			name: "two-argument round stays float",
			src: `@scalarudf
def f(x: float) -> float:
    if x is None:
        return None
    return round(x, 2)
`,
			udf:  "f",
			want: "round(x, 2)",
		},
		{
			name: "str/int/float casts",
			src: `@scalarudf
def f(x: int) -> str:
    if x is None:
        return None
    return str(x + 1)
`,
			udf:  "f",
			want: "CAST((x + 1) AS string)",
		},
		{
			name: "int() on a string is opaque (CAST parses padded text, Python raises)",
			src: `@scalarudf
def f(s: str) -> int:
    if s is None:
        return None
    return int(s)
`,
			udf:    "f",
			reason: "call to non-inlinable int",
		},
		{
			name: "division needs a nonzero literal divisor and casts through float",
			src: `@scalarudf
def f(x: int) -> float:
    if x is None:
        return None
    return x / 4
`,
			udf:  "f",
			want: "(CAST(x AS float) / 4.0)",
		},
		{
			name: "division by literal zero is opaque (Python raises, SQL yields NULL)",
			src: `@scalarudf
def f(x: int) -> float:
    if x is None:
        return None
    return x / 0
`,
			udf:    "f",
			reason: "/ by literal zero",
		},
		{
			name: "division by a non-literal is opaque (zero divisor diverges)",
			src: `@scalarudf
def f(x: int, y: int) -> float:
    if x is None or y is None:
        return None
    return x / y
`,
			udf:    "f",
			reason: "/ with non-literal divisor",
		},
		{
			name: "unary minus on guarded int",
			src: `@scalarudf
def f(x: int) -> int:
    if x is None:
        return None
    return -x
`,
			udf:  "f",
			want: "(- x)",
		},
		{
			name: "unary minus on float is opaque (-0.0 renders differently)",
			src: `@scalarudf
def f(x: float) -> float:
    if x is None:
        return None
    return -x
`,
			udf:    "f",
			reason: "unary minus needs a non-None int",
		},
		{
			name: "not translates via the condition path (total on None)",
			src: `@scalarudf
def f(b: bool) -> bool:
    return not b
`,
			udf:  "f",
			want: "(NOT b)",
		},
		{
			name: "assignment and augmented assignment substitute symbolically",
			src: `@scalarudf
def f(x: int) -> int:
    if x is None:
        return 0
    y = x * 3
    y += 1
    return y
`,
			udf:  "f",
			want: "CASE WHEN (x IS NULL) THEN 0 ELSE ((x * 3) + 1) END",
		},
		{
			name: "conditional expression (ternary) with guard refinement",
			src: `@scalarudf
def f(x: int) -> int:
    return x + 1 if x is not None else 0
`,
			udf:  "f",
			want: "CASE WHEN (x IS NOT NULL) THEN (x + 1) ELSE 0 END",
		},
		{
			name: "elif ladder tail-duplicates into nested CASE",
			src: `@scalarudf
def f(x: int) -> str:
    if x is None:
        return "none"
    if x < 0:
        return "neg"
    return "pos"
`,
			udf:  "f",
			want: "CASE WHEN (x IS NULL) THEN 'none' ELSE CASE WHEN (x < 0) THEN 'neg' ELSE 'pos' END END",
		},
		{
			name: "fall-off-the-end is implicit return None",
			src: `@scalarudf
def f(x: int) -> int:
    if x is not None:
        return x
`,
			udf:  "f",
			want: "CASE WHEN (x IS NOT NULL) THEN x ELSE NULL END",
		},
		{
			name: "mixed branch kinds are opaque",
			src: `@scalarudf
def f(x: int) -> int:
    if x is None:
        return "oops"
    return x
`,
			udf:    "f",
			reason: "branches produce mixed kinds (string vs int)",
		},
		{
			name: "body kind must match the declared return kind",
			src: `@scalarudf
def f(x: int) -> str:
    if x is None:
        return None
    return x + 1
`,
			udf:    "f",
			reason: "body produces int, declared string",
		},
		{
			name: "is-comparison against non-None is opaque",
			src: `@scalarudf
def f(x: int) -> bool:
    return x is 5
`,
			udf:    "f",
			reason: "is-comparison against non-None",
		},
		{
			name: "and/or in value position is opaque (Python yields an operand)",
			src: `@scalarudf
def f(x: int, y: int) -> int:
    if x is None or y is None:
        return None
    return x or y
`,
			udf:    "f",
			reason: "and/or outside a condition",
		},
		{
			name: "loops are vetoed structurally",
			src: `@scalarudf
def f(s: str) -> int:
    n = 0
    while s:
        n += 1
    return n
`,
			udf:    "f",
			reason: "while loop",
		},
		{
			name: "try/except is vetoed structurally",
			src: `@scalarudf
def f(x: int) -> int:
    try:
        return x
    except Exception:
        return 0
`,
			udf:    "f",
			reason: "try/except",
		},
		{
			name: "subscripts are vetoed structurally",
			src: `@scalarudf
def f(s: str) -> str:
    if s is None:
        return None
    return s[0]
`,
			udf:    "f",
			reason: "subscript expression",
		},
		{
			name: "expand UDFs never inline",
			src: `@expandudf
def f(s: str) -> str:
    for p in s.split("-"):
        yield p
`,
			udf:    "f",
			reason: "not a scalar UDF",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info := classifySrc(t, tc.src, tc.udf)
			if tc.want != "" {
				if info.template == nil {
					t.Fatalf("want inlinable, got opaque: %s", info.reason)
				}
				if got := inlineTemplateString(info.template); got != tc.want {
					t.Fatalf("template mismatch:\ngot:  %s\nwant: %s", got, tc.want)
				}
				if info.ops <= 0 {
					t.Fatalf("inlinable template recorded %d ops", info.ops)
				}
				return
			}
			if info.template != nil {
				t.Fatalf("want opaque (%s), got inlinable: %s",
					tc.reason, inlineTemplateString(info.template))
			}
			if info.reason != tc.reason {
				t.Fatalf("reason mismatch:\ngot:  %s\nwant: %s", info.reason, tc.reason)
			}
		})
	}
}

// TestInlineNodeBudget: a body past the node budget classifies opaque —
// templates expand once per call site, so unbounded bodies would bloat
// every plan.
func TestInlineNodeBudget(t *testing.T) {
	var b strings.Builder
	b.WriteString("@scalarudf\ndef f(x: int) -> int:\n    if x is None:\n        return None\n    return x")
	for i := 0; i < inlineNodeBudget; i++ {
		b.WriteString(" + x")
	}
	b.WriteString("\n")
	info := classifySrc(t, b.String(), "f")
	if info.template != nil {
		t.Fatalf("want budget rejection, got inlinable (%d ops)", info.ops)
	}
	if info.reason != "body too large to inline" {
		t.Fatalf("reason = %q", info.reason)
	}
}

// TestInlineNativeGoUDFOpaque: Go-native scalar UDFs have no PyLite
// body to translate.
func TestInlineNativeGoUDFOpaque(t *testing.T) {
	u := &ffi.UDF{
		Name: "native", Kind: ffi.Scalar,
		InKinds:  []data.Kind{data.KindInt},
		OutKinds: []data.Kind{data.KindInt},
		GoFn:     func(args []data.Value) (data.Value, error) { return args[0], nil },
	}
	info := classifyUDF(u)
	if info.template != nil || info.reason != "native Go UDF" {
		t.Fatalf("got template=%v reason=%q", info.template, info.reason)
	}
}
