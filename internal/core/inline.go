package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/obs"
	"qfusor/internal/pylite"
	"qfusor/internal/sqlengine"
)

// Relational inlining (Froid-style; ROADMAP item 4): instead of fusing
// a UDF behind the FFI boundary, translate its body into an engine
// expression tree and substitute it at every call site, so the
// optimizer sees through the UDF and the executor never crosses into
// the interpreter at all. Only UDFs whose PyLite body is straight-line
// arithmetic / comparisons / string builtins / single-return
// conditionals qualify; everything else stays opaque and falls through
// to the VM/closure fusion ladder unchanged.
//
// The translation is exactness-first: an operation is only emitted when
// the engine expression produces bit-identical results to the PyLite
// interpreter for every reachable input, including NULLs. The load-
// bearing difference is NULL handling — PyLite raises TypeError where
// SQL propagates NULL — so every strict operation (arithmetic, all
// comparisons, builtins, method calls) requires its operands to be
// provably non-NULL under a symbolic null-state analysis. Proofs come
// from the Froid guard idiom:
//
//	def f(a):
//	    if a is None: return None
//	    return a * 2
//
// The `a is None` branch refines `a` to non-NULL in the else branch, so
// the multiplication translates; a UDF that touches a parameter without
// guarding it first stays opaque.

// Inline-pass metrics (obs.Default).
var (
	mInlineUDFs    = obs.Default.Counter("qfusor.inline.udfs")
	mInlineOpaque  = obs.Default.Counter("qfusor.inline.opaque")
	mInlineSites   = obs.Default.Counter("qfusor.inline.sites")
	mInlineQueries = obs.Default.Counter("qfusor.inline.queries")
	mInlineFull    = obs.Default.Counter("qfusor.inline.full")
)

// inlineForceOpaque makes the pass classify normally but never apply a
// substitution — the test hook behind the five-way differential
// oracle's forced-fallback arm. Checked at application time only, so
// the epoch-fenced classification cache is never poisoned by the hook.
var inlineForceOpaque atomic.Bool

// SetInlineForceOpaque toggles the inline pass's forced-fallback test
// hook: when on, every UDF is treated as opaque at call sites (the
// query runs the VM/closure ladder) while classification and its cache
// stay live.
func SetInlineForceOpaque(on bool) { inlineForceOpaque.Store(on) }

// InlineDecision records one UDF's inlinability verdict for a query —
// surfaced in Report.Inlined, plan-cache entries, \analyze output and
// the flight recorder.
type InlineDecision struct {
	// UDF is the function name.
	UDF string `json:"udf"`
	// Inlinable reports the classification verdict.
	Inlinable bool `json:"inlinable"`
	// Reason explains an opaque verdict (empty when inlinable).
	Reason string `json:"reason,omitempty"`
	// Expr is the translated engine-expression template (parameters
	// appear by name), empty when opaque.
	Expr string `json:"expr,omitempty"`
	// Sites counts call sites this query actually substituted (0 when
	// the cost model kept the UDF on the fusion ladder, or under the
	// forced-fallback hook).
	Sites int `json:"sites,omitempty"`
}

// inlineParamTable is the marker table qualifier of parameter
// placeholders inside a cached template. Templates contain no real
// column references (only markers and literals), so any ColRef carrying
// it is a parameter slot; Index is the parameter position.
const inlineParamTable = "__param__"

// inlineInfo is one UDF's cached classification.
type inlineInfo struct {
	template sqlengine.SQLExpr // nil = opaque
	reason   string            // why opaque
	ops      int               // translated node count (cost-model term)
}

// inlineCache memoizes per-UDF classifications, epoch-fenced on UDF
// redefinition exactly like the wrapper compile cache: a template bakes
// the UDF body, so any CREATE FUNCTION bump flushes it. Shared by
// pointer across Variant clones.
type inlineCache struct {
	mu       sync.Mutex
	udfEpoch int64
	info     map[string]*inlineInfo
}

func newInlineCache() *inlineCache {
	return &inlineCache{info: make(map[string]*inlineInfo)}
}

// sync flushes cached classifications when any UDF was (re-)defined or
// dropped since the last query.
func (ic *inlineCache) sync(cat *sqlengine.Catalog) {
	e := cat.UDFEpoch()
	ic.mu.Lock()
	if e != ic.udfEpoch {
		ic.udfEpoch = e
		ic.info = make(map[string]*inlineInfo)
	}
	ic.mu.Unlock()
}

// classify returns the UDF's (cached) classification.
func (ic *inlineCache) classify(u *ffi.UDF) *inlineInfo {
	ic.mu.Lock()
	if info, ok := ic.info[u.Name]; ok {
		ic.mu.Unlock()
		return info
	}
	ic.mu.Unlock()
	info := classifyUDF(u)
	mInlineUDFs.Inc()
	if info.template == nil {
		mInlineOpaque.Inc()
	}
	ic.mu.Lock()
	ic.info[u.Name] = info
	ic.mu.Unlock()
	return info
}

// classifyUDF runs the full inlinability analysis on one UDF.
func classifyUDF(u *ffi.UDF) *inlineInfo {
	if u.Kind != ffi.Scalar {
		return &inlineInfo{reason: "not a scalar UDF"}
	}
	if u.GoFn != nil {
		return &inlineInfo{reason: "native Go UDF"}
	}
	fn, ok := pylite.FuncOf(u.Fn)
	if !ok {
		return &inlineInfo{reason: "not a PyLite function"}
	}
	if err := pylite.CheckInlineShape(fn); err != nil {
		return &inlineInfo{reason: err.Error()}
	}
	if len(fn.Params) != len(u.InKinds) {
		return &inlineInfo{reason: "parameter/kind arity mismatch"}
	}
	tr := &inlTranslator{budget: inlineNodeBudget}
	env := make(inlEnv, len(fn.Params))
	for i, p := range fn.Params {
		env[p.Name] = inlVal{
			e:    &sqlengine.ColRef{Table: inlineParamTable, Name: p.Name, Index: i},
			kind: u.InKinds[i],
		}
	}
	expr, kind, err := tr.block(env, fn.Body)
	if err != nil {
		return &inlineInfo{reason: err.Error()}
	}
	if kind != data.KindNull && kind != u.OutKind() {
		return &inlineInfo{reason: fmt.Sprintf("body produces %s, declared %s", kind, u.OutKind())}
	}
	expr = dropNullGuards(expr)
	return &inlineInfo{template: expr, ops: countExprNodes(expr)}
}

// dropNullGuards eliminates the translated Froid guard idiom
// `CASE WHEN (g IS NULL) THEN NULL ELSE body END` wherever body is
// NULL-strict in g: every engine arithmetic, comparison, concatenation
// and whitelisted builtin already propagates NULL, so the guard re-tests
// what the ELSE branch would compute anyway. The elimination matters for
// nested inlined calls — each layer of guard costs two extra vector
// passes (the IS NULL probe and the CASE merge) per batch.
func dropNullGuards(e sqlengine.SQLExpr) sqlengine.SQLExpr {
	return sqlengine.RewriteExpr(e, func(n sqlengine.SQLExpr) sqlengine.SQLExpr {
		c, ok := n.(*sqlengine.CaseExpr)
		if !ok || c.Operand != nil || len(c.Whens) != 1 || c.Else == nil {
			return n
		}
		g, ok := c.Whens[0].(*sqlengine.IsNullExpr)
		if !ok || g.Not {
			return n
		}
		t, ok := c.Thens[0].(*sqlengine.Lit)
		if !ok || !t.Value.IsNull() {
			return n
		}
		if !nullStrictIn(c.Else, g.E.String()) {
			return n
		}
		return c.Else
	})
}

// nullStrictIn reports whether e necessarily evaluates to NULL when the
// subexpression rendered as key is NULL — i.e. key occurs under an
// unbroken chain of NULL-propagating (strict) operations. Conservative:
// AND/OR (three-valued truthiness), NOT, CASE and IS NULL break the
// chain, as do builtin arguments the engine coerces instead of
// propagating (round's digit count, substr's bounds).
func nullStrictIn(e sqlengine.SQLExpr, key string) bool {
	switch x := e.(type) {
	case *sqlengine.ColRef:
		return x.String() == key
	case *sqlengine.BinExpr:
		switch x.Op {
		case "+", "-", "*", "/", "%", "||", "=", "!=", "<", "<=", ">", ">=", "LIKE":
			return nullStrictIn(x.L, key) || nullStrictIn(x.R, key)
		}
		return false
	case *sqlengine.UnaryExpr:
		// Unary minus evaluates 0 - e (strict); NOT does not propagate.
		return x.Op != "NOT" && nullStrictIn(x.E, key)
	case *sqlengine.CastExpr:
		return nullStrictIn(x.E, key)
	case *sqlengine.FuncExpr:
		switch x.Name {
		case "length", "abs", "round", "sqlupper", "sqllower", "substr":
			return len(x.Args) > 0 && nullStrictIn(x.Args[0], key)
		case "trim", "instr":
			for _, a := range x.Args {
				if nullStrictIn(a, key) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// countExprNodes sizes a template for the cost model's per-row
// relational-work term (counted after simplification — eliminated
// guards cost nothing at runtime).
func countExprNodes(e sqlengine.SQLExpr) int {
	n := 0
	sqlengine.RewriteExpr(e, func(x sqlengine.SQLExpr) sqlengine.SQLExpr {
		n++
		return x
	})
	return n
}

// inlineNodeBudget caps translated AST nodes per UDF — templates expand
// once per call site, so an unbounded body would bloat every plan.
const inlineNodeBudget = 96

// inlVal is the symbolic value of one PyLite expression: the engine
// expression computing it, its inferred kind (KindNull = "always
// None"), and whether the null-state analysis has proven it non-NULL.
type inlVal struct {
	e       sqlengine.SQLExpr
	kind    data.Kind
	nonNull bool
}

// inlEnv maps local variable names to symbolic values. Extension is
// copy-on-write so refinements in one If branch never leak to the
// other.
type inlEnv map[string]inlVal

func (env inlEnv) with(name string, v inlVal) inlEnv {
	out := make(inlEnv, len(env)+1)
	for k, val := range env {
		out[k] = val
	}
	out[name] = v
	return out
}

// refined returns env with the named variables marked non-NULL.
func (env inlEnv) refined(names map[string]bool) inlEnv {
	if len(names) == 0 {
		return env
	}
	out := make(inlEnv, len(env))
	for k, val := range env {
		if names[k] {
			val.nonNull = true
		}
		out[k] = val
	}
	return out
}

// inlTranslator carries the node budget through one UDF translation.
type inlTranslator struct {
	budget int
}

func (tr *inlTranslator) spend() error {
	tr.budget--
	if tr.budget < 0 {
		return fmt.Errorf("body too large to inline")
	}
	return nil
}

// block translates a statement sequence to a single expression.
// Conditionals tail-duplicate: `if c: A else: B; rest` becomes
// CASE WHEN c THEN T(A+rest) ELSE T(B+rest) END, which is exactly
// Froid's region collapse for single-return bodies. Falling off the end
// is Python's implicit `return None`.
func (tr *inlTranslator) block(env inlEnv, stmts []pylite.Stmt) (sqlengine.SQLExpr, data.Kind, error) {
	for i, st := range stmts {
		switch s := st.(type) {
		case *pylite.Return:
			if s.Value == nil {
				return &sqlengine.Lit{Value: data.Null}, data.KindNull, nil
			}
			v, err := tr.value(env, s.Value)
			if err != nil {
				return nil, 0, err
			}
			return v.e, v.kind, nil
		case *pylite.Assign:
			name := s.Targets[0].(*pylite.Name).ID
			v, err := tr.value(env, s.Value)
			if err != nil {
				return nil, 0, err
			}
			env = env.with(name, v)
		case *pylite.AugAssign:
			name := s.Target.(*pylite.Name).ID
			cur, ok := env[name]
			if !ok {
				return nil, 0, fmt.Errorf("augmented assignment to unbound %s", name)
			}
			rhs, err := tr.value(env, s.Value)
			if err != nil {
				return nil, 0, err
			}
			v, err := tr.binOp(s.Op, cur, rhs)
			if err != nil {
				return nil, 0, err
			}
			env = env.with(name, v)
		case *pylite.If:
			cond, refT, refF, err := tr.cond(env, s.Cond)
			if err != nil {
				return nil, 0, err
			}
			rest := stmts[i+1:]
			thenExpr, thenKind, err := tr.block(env.refined(refT), concatStmts(s.Body, rest))
			if err != nil {
				return nil, 0, err
			}
			elseExpr, elseKind, err := tr.block(env.refined(refF), concatStmts(s.Else, rest))
			if err != nil {
				return nil, 0, err
			}
			kind, err := unifyKinds(thenKind, elseKind)
			if err != nil {
				return nil, 0, err
			}
			if err := tr.spend(); err != nil {
				return nil, 0, err
			}
			return &sqlengine.CaseExpr{
				Whens: []sqlengine.SQLExpr{cond},
				Thens: []sqlengine.SQLExpr{thenExpr},
				Else:  elseExpr,
			}, kind, nil
		case *pylite.Pass, *pylite.ExprStmt:
			// Pass and docstrings contribute nothing.
		default:
			return nil, 0, fmt.Errorf("unsupported statement %T", st)
		}
	}
	return &sqlengine.Lit{Value: data.Null}, data.KindNull, nil
}

func concatStmts(a, b []pylite.Stmt) []pylite.Stmt {
	out := make([]pylite.Stmt, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// unifyKinds merges branch result kinds; KindNull ("always None") is
// the wildcard.
func unifyKinds(a, b data.Kind) (data.Kind, error) {
	switch {
	case a == data.KindNull:
		return b, nil
	case b == data.KindNull, a == b:
		return a, nil
	}
	return 0, fmt.Errorf("branches produce mixed kinds (%s vs %s)", a, b)
}

// cond translates a boolean-context expression. Besides the engine
// condition (whose Truthy matches Python's), it returns the variables
// proven non-NULL when the condition is true (refineThen) and when it
// is false (refineFalse) — the null-state refinements that make guarded
// bodies translatable.
func (tr *inlTranslator) cond(env inlEnv, e pylite.Expr) (cond sqlengine.SQLExpr, refT, refF map[string]bool, err error) {
	switch x := e.(type) {
	case *pylite.BoolOp:
		// Emitted operands are total expressions, so engine AND/OR
		// (Truthy && / || without short-circuit in the vectorized path)
		// is truthiness-equal to Python's short-circuit evaluation. The
		// right operand is translated under the left's refinement —
		// `a is not None and a > 0` needs it.
		l, lt, lf, err := tr.cond(env, x.Left)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := tr.spend(); err != nil {
			return nil, nil, nil, err
		}
		if x.Op == "and" {
			r, rt, _, err := tr.cond(env.refined(lt), x.Right)
			if err != nil {
				return nil, nil, nil, err
			}
			return &sqlengine.BinExpr{Op: "AND", L: l, R: r}, unionNames(lt, rt), nil, nil
		}
		r, _, rf, err := tr.cond(env.refined(lf), x.Right)
		if err != nil {
			return nil, nil, nil, err
		}
		return &sqlengine.BinExpr{Op: "OR", L: l, R: r}, nil, unionNames(lf, rf), nil
	case *pylite.UnaryOp:
		if x.Op == "not" {
			c, t, f, err := tr.cond(env, x.Operand)
			if err != nil {
				return nil, nil, nil, err
			}
			if err := tr.spend(); err != nil {
				return nil, nil, nil, err
			}
			return &sqlengine.UnaryExpr{Op: "NOT", E: c}, f, t, nil
		}
	case *pylite.Compare:
		if len(x.Ops) == 1 && (x.Ops[0] == "is" || x.Ops[0] == "is not") {
			c, ok := x.Comps[0].(*pylite.Const)
			if !ok || !c.Value.IsNull() {
				return nil, nil, nil, fmt.Errorf("is-comparison against non-None")
			}
			v, err := tr.value(env, x.Left)
			if err != nil {
				return nil, nil, nil, err
			}
			if err := tr.spend(); err != nil {
				return nil, nil, nil, err
			}
			not := x.Ops[0] == "is not"
			var refT, refF map[string]bool
			if n, ok := x.Left.(*pylite.Name); ok {
				// `x is None` false ⇒ x non-NULL; `x is not None` true ⇒ same.
				ref := map[string]bool{n.ID: true}
				if not {
					refT = ref
				} else {
					refF = ref
				}
			}
			return &sqlengine.IsNullExpr{E: v.e, Not: not}, refT, refF, nil
		}
	case *pylite.Name:
		v, ok := env[x.ID]
		if !ok {
			return nil, nil, nil, fmt.Errorf("free variable %s", x.ID)
		}
		if err := tr.spend(); err != nil {
			return nil, nil, nil, err
		}
		// Truthiness agrees for every kind (None, 0, "" are falsy on both
		// sides); a truthy value is necessarily non-None.
		return v.e, map[string]bool{x.ID: true}, nil, nil
	}
	v, err := tr.value(env, e)
	if err != nil {
		return nil, nil, nil, err
	}
	return v.e, nil, nil, nil
}

func unionNames(a, b map[string]bool) map[string]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// value translates a PyLite expression in value position.
func (tr *inlTranslator) value(env inlEnv, e pylite.Expr) (inlVal, error) {
	if err := tr.spend(); err != nil {
		return inlVal{}, err
	}
	switch x := e.(type) {
	case *pylite.Const:
		switch x.Value.Kind {
		case data.KindNull, data.KindBool, data.KindInt, data.KindFloat, data.KindString:
			return inlVal{e: &sqlengine.Lit{Value: x.Value}, kind: x.Value.Kind,
				nonNull: x.Value.Kind != data.KindNull}, nil
		}
		return inlVal{}, fmt.Errorf("non-scalar constant")
	case *pylite.Name:
		v, ok := env[x.ID]
		if !ok {
			return inlVal{}, fmt.Errorf("free variable %s", x.ID)
		}
		return v, nil
	case *pylite.BinOp:
		l, err := tr.value(env, x.Left)
		if err != nil {
			return inlVal{}, err
		}
		r, err := tr.value(env, x.Right)
		if err != nil {
			return inlVal{}, err
		}
		return tr.binOp(x.Op, l, r)
	case *pylite.UnaryOp:
		switch x.Op {
		case "-":
			v, err := tr.value(env, x.Operand)
			if err != nil {
				return inlVal{}, err
			}
			// Int only: Float negation diverges on -0.0 rendering.
			if v.kind != data.KindInt || !v.nonNull {
				return inlVal{}, fmt.Errorf("unary minus needs a non-None int")
			}
			return inlVal{e: &sqlengine.UnaryExpr{Op: "-", E: v.e}, kind: data.KindInt, nonNull: true}, nil
		case "not":
			c, _, _, err := tr.cond(env, x.Operand)
			if err != nil {
				return inlVal{}, err
			}
			// Both sides compute Bool(!Truthy(v)) exactly, None included.
			return inlVal{e: &sqlengine.UnaryExpr{Op: "NOT", E: c}, kind: data.KindBool, nonNull: true}, nil
		}
		return inlVal{}, fmt.Errorf("unsupported unary %s", x.Op)
	case *pylite.BoolOp:
		// Python and/or yield an operand value, not a bool, so in value
		// position they only translate when every operand is provably a
		// bool — then the short-circuit result equals the logical result
		// and the condition translation is value-exact (the predicate-UDF
		// shape `return x is not None and x > 0`).
		if boolValued(env, x) {
			c, _, _, err := tr.cond(env, x)
			if err != nil {
				return inlVal{}, err
			}
			return inlVal{e: c, kind: data.KindBool, nonNull: true}, nil
		}
		return inlVal{}, fmt.Errorf("and/or outside a condition")
	case *pylite.Compare:
		if len(x.Ops) == 1 && (x.Ops[0] == "is" || x.Ops[0] == "is not") {
			// Identity tests are bool-valued and total; the condition
			// translator emits IS [NOT] NULL (or rejects non-None).
			c, _, _, err := tr.cond(env, x)
			if err != nil {
				return inlVal{}, err
			}
			return inlVal{e: c, kind: data.KindBool, nonNull: true}, nil
		}
		return tr.compare(env, x)
	case *pylite.IfExp:
		cond, refT, refF, err := tr.cond(env, x.Cond)
		if err != nil {
			return inlVal{}, err
		}
		t, err := tr.value(env.refined(refT), x.Then)
		if err != nil {
			return inlVal{}, err
		}
		f, err := tr.value(env.refined(refF), x.Else)
		if err != nil {
			return inlVal{}, err
		}
		kind, err := unifyKinds(t.kind, f.kind)
		if err != nil {
			return inlVal{}, err
		}
		return inlVal{e: &sqlengine.CaseExpr{
			Whens: []sqlengine.SQLExpr{cond},
			Thens: []sqlengine.SQLExpr{t.e},
			Else:  f.e,
		}, kind: kind, nonNull: t.nonNull && f.nonNull}, nil
	case *pylite.Call:
		return tr.call(env, x)
	}
	return inlVal{}, fmt.Errorf("unsupported expression %T", e)
}

func isNumericKind(k data.Kind) bool { return k == data.KindInt || k == data.KindFloat }

// boolValued reports whether e's Python value is necessarily a bool
// (not merely truthiness-convertible). Only then may a value-position
// and/or delegate to the condition translator: its emitted expression
// is truthiness-equal to Python's short-circuit result, which for bool
// operands is value-equality. Possibly-None bool names are excluded —
// `None and x` yields None in Python but FALSE under engine AND.
func boolValued(env inlEnv, e pylite.Expr) bool {
	switch x := e.(type) {
	case *pylite.Compare:
		return true
	case *pylite.BoolOp:
		return boolValued(env, x.Left) && boolValued(env, x.Right)
	case *pylite.UnaryOp:
		return x.Op == "not"
	case *pylite.Const:
		return x.Value.Kind == data.KindBool
	case *pylite.Name:
		v, ok := env[x.ID]
		return ok && v.kind == data.KindBool && v.nonNull
	}
	return false
}

// binOp translates arithmetic and concatenation. All strict: PyLite
// raises TypeError on None operands where SQL would propagate NULL, so
// operands must be proven non-NULL.
func (tr *inlTranslator) binOp(op string, l, r inlVal) (inlVal, error) {
	switch op {
	case "+", "-", "*":
		if op == "+" && l.kind == data.KindString && r.kind == data.KindString {
			if !l.nonNull || !r.nonNull {
				return inlVal{}, fmt.Errorf("+ on possibly-None strings")
			}
			return inlVal{e: &sqlengine.BinExpr{Op: "||", L: l.e, R: r.e},
				kind: data.KindString, nonNull: true}, nil
		}
		if !isNumericKind(l.kind) || !isNumericKind(r.kind) {
			return inlVal{}, fmt.Errorf("%s on non-numeric operands", op)
		}
		if !l.nonNull || !r.nonNull {
			return inlVal{}, fmt.Errorf("%s on possibly-None operands", op)
		}
		kind := data.KindInt
		if l.kind == data.KindFloat || r.kind == data.KindFloat {
			kind = data.KindFloat
		}
		return inlVal{e: &sqlengine.BinExpr{Op: op, L: l.e, R: r.e}, kind: kind, nonNull: true}, nil
	case "/":
		// Python / is always float division and raises on zero; the
		// engine's is integer for int operands and yields NULL on zero.
		// Exact only for a nonzero literal divisor with the left side
		// cast to float.
		lit, ok := r.e.(*sqlengine.Lit)
		if !ok || !isNumericKind(lit.Value.Kind) {
			return inlVal{}, fmt.Errorf("/ with non-literal divisor")
		}
		bf, _ := lit.Value.AsFloat()
		if bf == 0 {
			return inlVal{}, fmt.Errorf("/ by literal zero")
		}
		if !isNumericKind(l.kind) || !l.nonNull {
			return inlVal{}, fmt.Errorf("/ on non-numeric or possibly-None operand")
		}
		le := l.e
		if l.kind == data.KindInt {
			le = &sqlengine.CastExpr{E: le, Kind: data.KindFloat}
		}
		return inlVal{e: &sqlengine.BinExpr{Op: "/",
			L: le, R: &sqlengine.Lit{Value: data.Float(bf)}},
			kind: data.KindFloat, nonNull: true}, nil
	}
	return inlVal{}, fmt.Errorf("unsupported operator %s", op)
}

// compare translates comparison chains to AND'd pairs. Every comparison
// is strict — Python None == x is False and None < x raises, while SQL
// NULL-propagates — so operands must be proven non-NULL.
func (tr *inlTranslator) compare(env inlEnv, x *pylite.Compare) (inlVal, error) {
	operands := make([]inlVal, 0, len(x.Comps)+1)
	l, err := tr.value(env, x.Left)
	if err != nil {
		return inlVal{}, err
	}
	operands = append(operands, l)
	for _, c := range x.Comps {
		v, err := tr.value(env, c)
		if err != nil {
			return inlVal{}, err
		}
		operands = append(operands, v)
	}
	var out sqlengine.SQLExpr
	for i, op := range x.Ops {
		a, b := operands[i], operands[i+1]
		var sqlOp string
		switch op {
		case "==":
			sqlOp = "="
		case "!=":
			sqlOp = "!="
		case "<", "<=", ">", ">=":
			// data.Compare must be the comparator on both sides: mixed
			// kinds fall back to textual comparison in SQL but raise in
			// Python, so each pair must be both-numeric or both-string.
			numeric := isNumericKind(a.kind) && isNumericKind(b.kind)
			stringy := a.kind == data.KindString && b.kind == data.KindString
			if !numeric && !stringy {
				return inlVal{}, fmt.Errorf("%s on mixed-kind operands", op)
			}
			sqlOp = op
		default:
			return inlVal{}, fmt.Errorf("unsupported comparison %s", op)
		}
		if !a.nonNull || !b.nonNull {
			return inlVal{}, fmt.Errorf("%s on possibly-None operands", op)
		}
		pair := sqlengine.SQLExpr(&sqlengine.BinExpr{Op: sqlOp, L: a.e, R: b.e})
		if err := tr.spend(); err != nil {
			return inlVal{}, err
		}
		if out == nil {
			out = pair
		} else {
			out = &sqlengine.BinExpr{Op: "AND", L: out, R: pair}
		}
	}
	if out == nil {
		return inlVal{}, fmt.Errorf("empty comparison")
	}
	return inlVal{e: out, kind: data.KindBool, nonNull: true}, nil
}

// pyStripCutset is str.strip()'s default cutset, passed to the engine's
// two-argument trim so both sides run strings.Trim with it.
const pyStripCutset = " \t\n\r"

// call translates the builtin and string-method whitelist. Every entry
// was checked operation-by-operation against the PyLite implementation;
// anything outside the list (or with possibly-None arguments) is
// rejected.
func (tr *inlTranslator) call(env inlEnv, x *pylite.Call) (inlVal, error) {
	args := make([]inlVal, len(x.Args))
	for i, a := range x.Args {
		v, err := tr.value(env, a)
		if err != nil {
			return inlVal{}, err
		}
		args[i] = v
	}
	for _, a := range args {
		if !a.nonNull {
			return inlVal{}, fmt.Errorf("call with possibly-None argument")
		}
	}
	if attr, ok := x.Fn.(*pylite.Attr); ok {
		obj, err := tr.value(env, attr.Obj)
		if err != nil {
			return inlVal{}, err
		}
		if obj.kind != data.KindString || !obj.nonNull {
			return inlVal{}, fmt.Errorf(".%s on non-string or possibly-None object", attr.Name)
		}
		switch {
		case attr.Name == "lower" && len(args) == 0:
			return inlVal{e: &sqlengine.FuncExpr{Name: "sqllower", Args: []sqlengine.SQLExpr{obj.e}},
				kind: data.KindString, nonNull: true}, nil
		case attr.Name == "upper" && len(args) == 0:
			return inlVal{e: &sqlengine.FuncExpr{Name: "sqlupper", Args: []sqlengine.SQLExpr{obj.e}},
				kind: data.KindString, nonNull: true}, nil
		case attr.Name == "strip" && len(args) == 0:
			return inlVal{e: &sqlengine.FuncExpr{Name: "trim", Args: []sqlengine.SQLExpr{
				obj.e, &sqlengine.Lit{Value: data.Str(pyStripCutset)}}},
				kind: data.KindString, nonNull: true}, nil
		}
		return inlVal{}, fmt.Errorf("unsupported string method %s", attr.Name)
	}
	name, ok := x.Fn.(*pylite.Name)
	if !ok {
		return inlVal{}, fmt.Errorf("call through computed function")
	}
	switch {
	case name.ID == "len" && len(args) == 1 && args[0].kind == data.KindString:
		// Both sides count bytes.
		return inlVal{e: &sqlengine.FuncExpr{Name: "length", Args: []sqlengine.SQLExpr{args[0].e}},
			kind: data.KindInt, nonNull: true}, nil
	case name.ID == "abs" && len(args) == 1 && isNumericKind(args[0].kind):
		// Kind-preserving on both sides.
		return inlVal{e: &sqlengine.FuncExpr{Name: "abs", Args: []sqlengine.SQLExpr{args[0].e}},
			kind: args[0].kind, nonNull: true}, nil
	case name.ID == "round" && len(args) == 1 && isNumericKind(args[0].kind):
		// Python round(x) is an int; the engine's is a float. The float
		// is integral, so CAST AS int truncates it exactly.
		return inlVal{e: &sqlengine.CastExpr{Kind: data.KindInt,
			E: &sqlengine.FuncExpr{Name: "round", Args: []sqlengine.SQLExpr{args[0].e}}},
			kind: data.KindInt, nonNull: true}, nil
	case name.ID == "round" && len(args) == 2 && isNumericKind(args[0].kind) && args[1].kind == data.KindInt:
		// Two-argument round runs the identical scale formula both sides.
		return inlVal{e: &sqlengine.FuncExpr{Name: "round", Args: []sqlengine.SQLExpr{args[0].e, args[1].e}},
			kind: data.KindFloat, nonNull: true}, nil
	case name.ID == "str" && len(args) == 1:
		// data.Value.String() is the formatter on both sides.
		return inlVal{e: &sqlengine.CastExpr{E: args[0].e, Kind: data.KindString},
			kind: data.KindString, nonNull: true}, nil
	case name.ID == "int" && len(args) == 1 &&
		(isNumericKind(args[0].kind) || args[0].kind == data.KindBool):
		// Numeric-only: int("x") raises on both bad and padded strings
		// while CAST silently parses or yields 0.
		return inlVal{e: &sqlengine.CastExpr{E: args[0].e, Kind: data.KindInt},
			kind: data.KindInt, nonNull: true}, nil
	case name.ID == "float" && len(args) == 1 && isNumericKind(args[0].kind):
		return inlVal{e: &sqlengine.CastExpr{E: args[0].e, Kind: data.KindFloat},
			kind: data.KindFloat, nonNull: true}, nil
	}
	return inlVal{}, fmt.Errorf("call to non-inlinable %s", name.ID)
}

// ---- call-site rewriting ----

// inlinePass rewrites inlinable scalar-UDF call sites across the bound
// query into engine expressions, records per-UDF decisions on rep, and
// reports whether the rewrite removed every UDF reference (in which
// case the caller skips fusion discovery entirely: tier=inlined).
//
// A "vm" or "closure" tier pin disables the pass (those pins mean "run
// the fusion ladder on that tier"); "inline" forces substitution past
// the cost model; ""/"auto" applies the §5.2 InlineAdvantage term per
// site.
func (qf *QFusor) inlinePass(eng *sqlengine.Engine, q *sqlengine.Query, rep *Report) bool {
	if qf.Opts.Tier == "vm" || qf.Opts.Tier == "closure" {
		return false
	}
	cat := eng.Catalog
	qf.ic.sync(cat)
	force := qf.Opts.Tier == "inline"
	st := &inlineState{decisions: map[string]*InlineDecision{}}

	plans := make([]*sqlengine.Plan, 0, len(q.CTEs)+1)
	for i := range q.CTEs {
		plans = append(plans, q.CTEs[i].Plan)
	}
	plans = append(plans, q.Root)
	for _, pr := range plans {
		pr.Walk(func(p *sqlengine.Plan) { qf.inlineNode(p, cat, force, st) })
	}

	for _, name := range st.order {
		d := st.decisions[name]
		rep.Inlined = append(rep.Inlined, *d)
		if d.Sites > 0 {
			// Pseudo-wrapper entries make the tier visible everywhere
			// Report.Tiers flows (\analyze, flight records, plan cache).
			// breakerKeys skips them — inlined sites have nothing to trip.
			rep.Wrappers = append(rep.Wrappers, "inline:"+name)
			rep.Tiers = append(rep.Tiers, "inlined")
		}
	}
	if st.sites == 0 {
		return false
	}
	mInlineQueries.Inc()
	mInlineSites.Add(int64(st.sites))
	if q.HasUDF(cat) {
		return false
	}
	mInlineFull.Inc()
	return true
}

// inlineState accumulates one query's decisions across plan nodes.
type inlineState struct {
	decisions map[string]*InlineDecision
	order     []string
	sites     int
}

func (st *inlineState) decision(name string, info *inlineInfo) *InlineDecision {
	if d, ok := st.decisions[name]; ok {
		return d
	}
	d := &InlineDecision{UDF: name, Inlinable: info.template != nil, Reason: info.reason}
	if info.template != nil {
		d.Expr = inlineTemplateString(info.template)
	}
	st.decisions[name] = d
	st.order = append(st.order, name)
	return d
}

// inlineNode rewrites one plan node's expression slots in place. The
// input schema (concatenated child schemas) types column references for
// the argument-kind check.
func (qf *QFusor) inlineNode(p *sqlengine.Plan, cat *sqlengine.Catalog, force bool, st *inlineState) {
	var in data.Schema
	for _, c := range p.Children {
		in = append(in, c.Schema...)
	}
	rw := func(e sqlengine.SQLExpr) sqlengine.SQLExpr {
		if e == nil {
			return nil
		}
		return sqlengine.RewriteExpr(e, func(x sqlengine.SQLExpr) sqlengine.SQLExpr {
			return qf.inlineSite(x, in, p.EstRows, cat, force, st)
		})
	}
	for i := range p.Exprs {
		p.Exprs[i] = rw(p.Exprs[i])
	}
	for i := range p.GroupBy {
		p.GroupBy[i] = rw(p.GroupBy[i])
	}
	for i := range p.Aggs {
		if p.Aggs[i].UDF != nil {
			st.decision(p.Aggs[i].UDF.Name, qf.ic.classify(p.Aggs[i].UDF))
		}
		for j := range p.Aggs[i].Args {
			p.Aggs[i].Args[j] = rw(p.Aggs[i].Args[j])
		}
	}
	for i := range p.TFArgs {
		p.TFArgs[i] = rw(p.TFArgs[i])
	}
	for i := range p.SortItems {
		p.SortItems[i].Expr = rw(p.SortItems[i].Expr)
	}
	p.JoinOn = rw(p.JoinOn)
	if p.UDF != nil && !p.UDF.Fused {
		st.decision(p.UDF.Name, qf.ic.classify(p.UDF))
	}
}

// inlineSite substitutes one UDF call when every gate passes:
// classification, the forced-fallback hook, argument arity and kinds,
// and (in auto tier) the cost model.
func (qf *QFusor) inlineSite(x sqlengine.SQLExpr, in data.Schema, est float64, cat *sqlengine.Catalog, force bool, st *inlineState) sqlengine.SQLExpr {
	f, ok := x.(*sqlengine.FuncExpr)
	if !ok || f.Star {
		return x
	}
	u, ok := cat.UDF(f.Name)
	if !ok {
		return x
	}
	info := qf.ic.classify(u)
	d := st.decision(u.Name, info)
	if info.template == nil || inlineForceOpaque.Load() {
		return x
	}
	if len(f.Args) != len(u.InKinds) {
		return x
	}
	// Argument kinds must match the kinds the template was typed under
	// (NULL literals are fine — the guards carry them). An uninferrable
	// argument keeps the site on the fusion ladder.
	for i, a := range f.Args {
		k, ok := inferExprKind(a, in, cat)
		if !ok || (k != data.KindNull && k != u.InKinds[i]) {
			return x
		}
	}
	if !force && qf.CM.InlineAdvantage(est, len(f.Args), info.ops, inlineUDFCost(u)) <= 0 {
		return x
	}
	out := sqlengine.RewriteExpr(info.template, func(n sqlengine.SQLExpr) sqlengine.SQLExpr {
		c, ok := n.(*sqlengine.ColRef)
		if !ok || c.Table != inlineParamTable {
			return n
		}
		return cloneSQLExpr(f.Args[c.Index])
	})
	d.Sites++
	st.sites++
	return out
}

// inlineUDFCost mirrors CostModel.udfRowCost for a catalog UDF: the
// learned per-row interpreter cost when statistics exist, the declared
// estimate otherwise, zero to let the model use its cold default.
func inlineUDFCost(u *ffi.UDF) float64 {
	if u.Stats.InRows.Load() > 0 {
		if c := u.Stats.NanosPerRow() - u.Stats.WrapNanosPerRow(); c > 0 {
			return c
		}
	}
	return u.EstCost
}

func cloneSQLExpr(e sqlengine.SQLExpr) sqlengine.SQLExpr {
	return sqlengine.RewriteExpr(e, func(n sqlengine.SQLExpr) sqlengine.SQLExpr { return n })
}

// inlineTemplateString renders a template with parameter markers shown
// by bare name (for \analyze and the decision record).
func inlineTemplateString(t sqlengine.SQLExpr) string {
	return sqlengine.RewriteExpr(t, func(n sqlengine.SQLExpr) sqlengine.SQLExpr {
		if c, ok := n.(*sqlengine.ColRef); ok && c.Table == inlineParamTable {
			return &sqlengine.ColRef{Name: c.Name, Index: -1}
		}
		return n
	}).String()
}

// inferExprKind types a bound engine expression against the node's
// input schema — the argument-kind gate for substitution.
func inferExprKind(e sqlengine.SQLExpr, in data.Schema, cat *sqlengine.Catalog) (data.Kind, bool) {
	switch x := e.(type) {
	case *sqlengine.ColRef:
		if x.Index >= 0 && x.Index < len(in) {
			return in[x.Index].Kind, true
		}
	case *sqlengine.Lit:
		return x.Value.Kind, true
	case *sqlengine.CastExpr:
		return x.Kind, true
	case *sqlengine.IsNullExpr, *sqlengine.BetweenExpr, *sqlengine.InExpr:
		return data.KindBool, true
	case *sqlengine.UnaryExpr:
		if x.Op == "NOT" {
			return data.KindBool, true
		}
		return inferExprKind(x.E, in, cat)
	case *sqlengine.BinExpr:
		switch x.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=", "LIKE":
			return data.KindBool, true
		case "||":
			return data.KindString, true
		case "+", "-", "*", "/", "%":
			lk, lok := inferExprKind(x.L, in, cat)
			rk, rok := inferExprKind(x.R, in, cat)
			if !lok || !rok || !isNumericKind(lk) || !isNumericKind(rk) {
				return 0, false
			}
			if lk == data.KindFloat || rk == data.KindFloat {
				return data.KindFloat, true
			}
			return data.KindInt, true
		}
	case *sqlengine.CaseExpr:
		kind := data.KindNull
		branches := append([]sqlengine.SQLExpr{}, x.Thens...)
		if x.Else != nil {
			branches = append(branches, x.Else)
		}
		for _, b := range branches {
			k, ok := inferExprKind(b, in, cat)
			if !ok {
				return 0, false
			}
			u, err := unifyKinds(kind, k)
			if err != nil {
				return 0, false
			}
			kind = u
		}
		return kind, true
	case *sqlengine.FuncExpr:
		if u, ok := cat.UDF(x.Name); ok {
			return u.OutKind(), true
		}
		switch x.Name {
		case "length", "instr":
			return data.KindInt, true
		case "sqlupper", "sqllower", "trim", "upper", "lower", "substr":
			return data.KindString, true
		case "round":
			return data.KindFloat, true
		case "abs":
			return inferExprKind(x.Args[0], in, cat)
		}
	}
	return 0, false
}

// inlineSitesOf totals the substituted call sites recorded on a report.
func inlineSitesOf(rep *Report) int {
	n := 0
	for _, d := range rep.Inlined {
		n += d.Sites
	}
	return n
}
