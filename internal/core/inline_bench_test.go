package core_test

// In-process tier microbenchmarks: the E22 serve bench compares the
// inlined and closure tiers end to end over HTTP; these isolate the
// per-query execution cost of each tier on the same Q1-shape
// straight-line workload, without the serving plane.

import (
	"fmt"
	"testing"

	"qfusor/internal/engines"
)

const benchUDF = `
@scalarudf
def sboost(x: int) -> int:
    if x is None:
        return None
    return (x * 37 + 11) * 3 - x
`

func tierBenchDB(b *testing.B) *engines.Instance {
	b.Helper()
	in := engines.Launch(engines.Config{Profile: engines.Monet, JIT: true})
	if err := in.Define(benchUDF); err != nil {
		b.Fatal(err)
	}
	if err := in.Eng.Exec("CREATE TABLE stbl (n int)"); err != nil {
		b.Fatal(err)
	}
	const rows = 4000
	vals := ""
	for i := 0; i < rows; i++ {
		if i > 0 {
			vals += ", "
		}
		if i%97 == 0 {
			vals += "(NULL)"
		} else {
			vals += fmt.Sprintf("(%d)", i%211)
		}
	}
	if err := in.Eng.Exec("INSERT INTO stbl VALUES " + vals); err != nil {
		b.Fatal(err)
	}
	return in
}

func benchTier(b *testing.B, tier string) {
	in := tierBenchDB(b)
	in.QF.Opts.Tier = tier
	const sql = "SELECT n, sboost(sboost(n)) AS v FROM stbl ORDER BY n"
	if _, err := in.QueryFused(sql); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.QueryFused(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTierInlined(b *testing.B) { benchTier(b, "inline") }
func BenchmarkTierClosure(b *testing.B) { benchTier(b, "closure") }
