package core

import (
	"sort"

	"qfusor/internal/sqlengine"
)

// Section is a set of DFG nodes Algorithm 2 selected for fusion into a
// single wrapper UDF.
type Section struct {
	// Nodes are DFG node IDs in topological order.
	Nodes []int
	// Cost is F(S) under the current cost model.
	Cost float64
	// SingleCost is Σ F({v}) — the unfused alternative.
	SingleCost float64
	// Reordered lists rel nodes inside the section's plan span that were
	// moved OUT by the F3 permutation (executed engine-side below the
	// fused operator).
	Reordered []int
}

// Gain is the estimated saving of fusing this section.
func (s *Section) Gain() float64 { return s.SingleCost - s.Cost }

// DiscoverSections is Algorithm 2: a dynamic program over the DFG in
// topological order that grows fusible sections along dependency edges,
// validates them (closure over their plan span, fusibility of every
// member), permutes reorderable relational operators out (F3), and
// finally selects maximal non-overlapping sections.
func DiscoverSections(g *DFG, cm *CostModel, cat *sqlengine.Catalog) []*Section {
	n := len(g.Nodes)
	dp := make([]float64, n)
	secs := make([][]int, n)
	reord := make([][]int, n)
	order := g.TopoOrder()

	sumSingles := func(ids []int) float64 {
		s := 0.0
		for _, id := range ids {
			s += cm.Single(g.Nodes[id])
		}
		return s
	}
	for _, v := range order {
		// Initialization/update: the singleton section.
		dp[v] = cm.Single(g.Nodes[v])
		secs[v] = []int{v}
		reord[v] = nil
		bestGain := 0.0
		for _, u := range g.Pred[v] {
			if !fusibleOrReorderable(g.Nodes[u], g.Nodes[v], cat) {
				continue
			}
			cand := append(append([]int(nil), secs[u]...), v)
			closed, moved, valid := closeSection(g, cand, cat)
			if !valid {
				continue
			}
			cost := g.sectionCost(cm, closed)
			// Compute the potential gain of fusing the closed section
			// versus executing every covered operator in isolation.
			gain := sumSingles(closed) - cost
			if gain > bestGain {
				bestGain = gain
				dp[v] = cost
				secs[v] = closed
				reord[v] = moved
			}
		}
	}

	// Candidate pool: the DP's best section per node, plus per-plan-node
	// groups — independent UDFs in the same projection have no
	// dependency edges between them but still fuse into one loop
	// (sharing input conversion and the trace), as in the paper's Fig. 2.
	var cands []*Section
	addCand := func(nodes, moved []int) {
		if len(nodes) < 2 {
			return
		}
		hasUDF := false
		for _, m := range nodes {
			if g.Nodes[m].Kind.IsUDF() {
				hasUDF = true
				break
			}
		}
		if !hasUDF {
			return
		}
		s := &Section{Nodes: nodes, Cost: g.sectionCost(cm, nodes),
			SingleCost: sumSingles(nodes), Reordered: moved}
		if s.Gain() > 0 || heuristicAccept(g, nodes) {
			cands = append(cands, s)
		}
	}
	for _, v := range order {
		addCand(secs[v], reord[v])
	}
	byPlan := map[int][]int{}
	for id, nd := range g.Nodes {
		if nodeFusible(nd, cat) {
			byPlan[nd.PlanIdx] = append(byPlan[nd.PlanIdx], id)
		}
	}
	for _, ids := range byPlan {
		closed, moved, ok := closeSection(g, ids, cat)
		if ok {
			addCand(closed, moved)
		}
	}

	// Selection: greedy by gain, maximal non-overlapping.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].Gain() > cands[b].Gain() })
	visited := make([]bool, n)
	var out []*Section
	for _, s := range cands {
		overlap := false
		for _, m := range s.Nodes {
			if visited[m] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, m := range s.Nodes {
			visited[m] = true
		}
		out = append(out, s)
	}
	// Deterministic order: by first node id.
	sort.Slice(out, func(a, b int) bool { return out[a].Nodes[0] < out[b].Nodes[0] })
	return out
}

// heuristicAccept applies the §5.2.4 cold-start rules when the cost
// model has no learned statistics for any UDF in the candidate section
// (rule-based engines, newly registered UDFs): fuse all fusible UDF
// chains; ride-along filters unless highly selective pre-UDF filters
// (those are better pushed down by F3); fuse DISTINCT only when highly
// selective; group-bys fuse via the engine FFI.
func heuristicAccept(g *DFG, nodes []int) bool {
	anyWarm := false
	udfs := 0
	for _, id := range nodes {
		nd := g.Nodes[id]
		if nd.Kind.IsUDF() {
			udfs++
			if nd.UDF != nil && nd.UDF.Stats.InRows.Load() > 0 {
				anyWarm = true
			}
		}
	}
	if anyWarm || udfs == 0 {
		return false // warm statistics: the cost model decides
	}
	for _, id := range nodes {
		nd := g.Nodes[id]
		switch nd.Kind {
		case KRelFilter:
			if !HeuristicFuseFilter(nd.Sel, false) {
				return false
			}
		case KRelDistinct:
			if !HeuristicFuseDistinct(nd.Sel) {
				return false
			}
		case KRelGroupBy:
			if !HeuristicFuseGroupBy() {
				return false
			}
		}
	}
	return true
}

// fusibleOrReorderable implements the fusion-case check of Algorithm 2
// line 9 for an edge u → v.
func fusibleOrReorderable(u, v *DFGNode, cat *sqlengine.Catalog) bool {
	return nodeFusible(u, cat) && nodeFusible(v, cat)
}

// nodeFusible reports whether a single operator may participate in a
// fused section at all.
func nodeFusible(n *DFGNode, cat *sqlengine.Catalog) bool {
	switch n.Kind {
	case KUDFScalar, KUDFAggregate, KUDFTable:
		return true
	case KRelExpr, KRelFilter:
		return n.Expr == nil || translatable(n.Expr, cat)
	case KRelAggNative:
		switch n.Name {
		case "sum", "count", "min", "max", "avg":
			return n.Expr == nil || translatable(n.Expr, cat)
		}
		return false // blocking aggregates (median) stay engine-side
	case KRelGroupBy:
		return HeuristicFuseGroupBy()
	case KRelDistinct:
		return true
	}
	return false
}

// closeSection computes the closure of a candidate section over its
// plan-node span (IsValidSection + OptimPermutation): every operator
// whose plan node lies inside the span must either join the section or
// be reorderable out of it (fields disjoint from every section member —
// the conservative F3 rule). Returns the closed section (topo order),
// the moved-out nodes, and validity.
func closeSection(g *DFG, cand []int, cat *sqlengine.Catalog) (closed, moved []int, ok bool) {
	inSec := map[int]bool{}
	for _, v := range cand {
		inSec[v] = true
	}
	for changed := true; changed; {
		changed = false
		lo, hi := spanOf(g, inSec)
		for id, nd := range g.Nodes {
			if inSec[id] || nd.PlanIdx < lo || nd.PlanIdx > hi {
				continue
			}
			// Filters whose fields are untouched by the section may be
			// reordered out engine-side (F3); everything else in the
			// span joins the section — independent UDFs in the same
			// projection fuse into the same loop.
			if nd.Kind == KRelFilter && disjointFromSection(g, nd, inSec) {
				continue
			}
			if !nodeFusible(nd, cat) {
				return nil, nil, false
			}
			inSec[id] = true
			changed = true
		}
	}
	lo, hi := spanOf(g, inSec)
	for id, nd := range g.Nodes {
		if inSec[id] || nd.PlanIdx < lo || nd.PlanIdx > hi {
			continue
		}
		moved = append(moved, id)
	}
	for id := range inSec {
		closed = append(closed, id)
	}
	sort.Ints(closed)
	sort.Ints(moved)
	return closed, moved, true
}

func spanOf(g *DFG, inSec map[int]bool) (lo, hi int) {
	lo, hi = 1<<30, -1
	for id := range inSec {
		pi := g.Nodes[id].PlanIdx
		if pi < lo {
			lo = pi
		}
		if pi > hi {
			hi = pi
		}
	}
	return lo, hi
}

// disjointFromSection applies the conservative reorder rule: node nd
// may be reordered around the section only if it reads and writes no
// field any section member reads or writes (Bernstein-safe commuting).
func disjointFromSection(g *DFG, nd *DFGNode, inSec map[int]bool) bool {
	fields := map[string]bool{}
	for _, f := range nd.In {
		fields[f] = true
	}
	for _, f := range nd.Out {
		fields[f] = true
	}
	for id := range inSec {
		m := g.Nodes[id]
		for _, f := range m.In {
			if fields[f] {
				return false
			}
		}
		for _, f := range m.Out {
			if fields[f] {
				return false
			}
		}
	}
	return true
}

// sectionCost evaluates F(S) for a closed section.
func (g *DFG) sectionCost(cm *CostModel, sec []int) float64 {
	inSec := map[int]bool{}
	for _, v := range sec {
		inSec[v] = true
	}
	nodes := make([]*DFGNode, 0, len(sec))
	produced := map[string]bool{}
	for _, v := range sec {
		nodes = append(nodes, g.Nodes[v])
		for _, f := range g.Nodes[v].Out {
			produced[f] = true
		}
	}
	extIn := map[string]bool{}
	for _, v := range sec {
		for _, f := range g.Nodes[v].In {
			if !produced[f] {
				extIn[f] = true
			}
		}
	}
	// External outputs: fields produced in the section and consumed
	// outside it (or by nobody — final results).
	extOut := map[string]bool{}
	for _, v := range sec {
		for _, f := range g.Nodes[v].Out {
			consumedOutside := true
			for _, s := range g.Succ[v] {
				if inSec[s] {
					consumedOutside = false
				} else {
					consumedOutside = true
					break
				}
			}
			if consumedOutside {
				extOut[f] = true
			}
		}
	}
	entryRows := nodes[0].Rows
	sel := 1.0
	for _, n := range nodes {
		if n.Kind == KRelFilter || n.Kind == KRelDistinct || n.Kind == KUDFTable {
			sel *= n.Sel
		}
	}
	// Note: the drift calibration (cm.Drift) is deliberately NOT applied
	// here. Selection compares F(S) against per-node singles that have no
	// measured counterpart, so scaling only the fused side would let one
	// noisy run flip fusion decisions — and a flipped plan generates a
	// different wrapper source, defeating the compile cache. Calibration
	// refines the *prediction* recorded for each realized section (see
	// realizeSections), which is what converges toward measured cost.
	return cm.Fused(nodes, len(extIn), maxInt(1, len(extOut)), entryRows) * selAdjust(sel)
}

// selAdjust keeps the fused estimate monotone in output cardinality.
func selAdjust(sel float64) float64 {
	if sel <= 0 || sel > 1 {
		return 1
	}
	return 0.6 + 0.4*sel
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// InspectSection is a diagnostic helper: it closes a candidate node set
// and reports its fused cost versus the sum of unfused singles.
func InspectSection(g *DFG, cm *CostModel, cat *sqlengine.Catalog, cand []int) (cost, single float64, closed []int, valid bool) {
	closed, _, valid = closeSection(g, cand, cat)
	if !valid {
		return 0, 0, nil, false
	}
	cost = g.sectionCost(cm, closed)
	for _, id := range closed {
		single += cm.Single(g.Nodes[id])
	}
	return cost, single, closed, true
}
