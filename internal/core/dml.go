package core

import (
	"fmt"

	"qfusor/internal/sqlengine"
)

// ExecDML runs a DDL/DML statement through the QFusor pipeline: UDF
// pipelines in UPDATE SET expressions and WHERE predicates are fused
// into wrapper UDFs before execution (§4.2.5 — the capability the paper
// notes is missing from the SOTA comparators).
func (qf *QFusor) ExecDML(eng *sqlengine.Engine, sql string) error {
	qf.setCatalog(eng.Catalog)
	st, err := sqlengine.ParseSQL(sql)
	if err != nil {
		return err
	}
	up, ok := st.(*sqlengine.UpdateStmt)
	if !ok || !qf.Opts.Fusion {
		return eng.Exec(sql)
	}
	rep := &Report{}
	for i, e := range up.Exprs {
		ne, err := qf.fuseUnboundExpr(eng, up.Table, e, rep)
		if err != nil {
			return err
		}
		up.Exprs[i] = ne
	}
	if up.Where != nil {
		nw, err := qf.fuseUnboundExpr(eng, up.Table, up.Where, rep)
		if err != nil {
			return err
		}
		up.Where = nw
	}
	qf.setReport(*rep)
	return eng.ExecUpdate(up)
}

// fuseUnboundExpr binds an expression against the target table's schema,
// applies scalar-chain fusion, and unbinds the result (ExecUpdate
// rebinds it).
func (qf *QFusor) fuseUnboundExpr(eng *sqlengine.Engine, table string, e sqlengine.SQLExpr, rep *Report) (sqlengine.SQLExpr, error) {
	t, ok := eng.Catalog.Table(table)
	if !ok {
		return nil, fmt.Errorf("core: no such table %s", table)
	}
	bound := cloneViaWalk(e, func(x sqlengine.SQLExpr) sqlengine.SQLExpr {
		if cr, isRef := x.(*sqlengine.ColRef); isRef {
			cp := *cr
			cp.Index = t.Schema.IndexOf(cr.Name)
			return &cp
		}
		return x
	})
	fused, err := qf.fuseExprChains(bound, t.Schema, rep)
	if err != nil {
		return nil, err
	}
	return fused, nil
}
