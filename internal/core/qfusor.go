package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/obs"
	"qfusor/internal/resilience"
	"qfusor/internal/sqlengine"
)

// Optimizer-wide metrics (obs.Default): always-on atomic counters, plus
// half-decade latency histograms for the two phases Fig. 4 reports.
var (
	mProcessed = obs.Default.Counter("qfusor.queries")
	mSections  = obs.Default.Counter("qfusor.sections")
	mCacheHits = obs.Default.Counter("qfusor.cache.hits")
	mCacheMiss = obs.Default.Counter("qfusor.cache.misses")
	mFusNanos  = obs.Default.Histogram("qfusor.fusoptim_nanos")
	mGenNanos  = obs.Default.Histogram("qfusor.codegen_nanos")
)

// Options selects which QFusor techniques run — the knobs the paper's
// ablations flip (§6.4.1, §6.4.3).
type Options struct {
	// Fusion enables operator fusion at all (off = JIT-only execution).
	Fusion bool
	// ScalarOnly restricts fusion to scalar-scalar UDF chains (the
	// YeSQL baseline).
	ScalarOnly bool
	// Offload allows relational operators (filter/case/arithmetic/
	// distinct) to execute inside the UDF environment.
	Offload bool
	// Reorder enables F3 operator reordering (moving disjoint filters
	// engine-side below fused sections).
	Reorder bool
	// AggFusion allows fusing aggregates + group-by via the engine FFI.
	AggFusion bool
	// Cache reuses previously compiled fused wrappers across queries
	// (the QFusor-cache variant of §6.4.5).
	Cache bool
	// PlanCache memoizes whole plan decisions — a repeated query skips
	// EXPLAIN probing, DFG construction, section discovery and the
	// rewrite, going straight to execution (epoch- and breaker-
	// invalidated; see plancache.go).
	PlanCache bool
	// Tier pins the execution tier of fused sections: "vm" forces the
	// vectorized bytecode VM whenever a section is eligible, "closure"
	// forces the closure-compiled trace loop, "inline" forces relational
	// inlining of every inlinable UDF call site (opaque UDFs still fall
	// through to the fusion ladder), and ""/"auto" lets the cost model's
	// InlineAdvantage and VMAdvantage terms decide (§5.2 extended).
	// Ineligible sections always run the closure tier regardless; a
	// "vm"/"closure" pin disables the inlining pass.
	Tier string
}

// DefaultOptions enables the full QFusor pipeline.
func DefaultOptions() Options {
	return Options{Fusion: true, Offload: true, Reorder: true, AggFusion: true,
		Cache: true, PlanCache: true, Tier: "auto"}
}

// Report carries the per-query optimizer measurements (Fig. 4 bottom).
type Report struct {
	// FusOptim is the time to discover fusible operators + fusion
	// optimization (Algorithms 1 and 2).
	FusOptim time.Duration
	// CodeGen is the time for query + fused-UDF code generation and
	// registration.
	CodeGen time.Duration
	// Sections fused and wrapper sources produced.
	Sections int
	Sources  []string
	// Wrappers names the fused wrappers this query used (fresh or
	// cached) — the units the circuit breaker tracks.
	Wrappers []string
	// Tiers is aligned with Wrappers: the execution tier each wrapper
	// was planned onto ("vm" for the vectorized bytecode VM, "closure"
	// for the compiled trace loop).
	Tiers []string
	// CacheHits counts wrappers reused from the compile cache (the
	// wrapper-level cache; the plan-level outcome is PlanCache).
	CacheHits int
	// PlanCache reports the plan-decision cache outcome: "hit" (the
	// whole front-end was skipped), "miss" (planned fresh, now cached),
	// "off" (disabled by Options.PlanCache), or "" when the query never
	// entered the fusion front-end (no UDFs, or Fusion off).
	PlanCache string
	// SectionCosts carries each fused section's predicted vs measured
	// cost and the calibration factor in effect — the §5.2 drift loop's
	// per-query record. Actual stays 0 until the query executed fused.
	SectionCosts []SectionDrift
	// Fallback reports that the optimized path was abandoned and the
	// result came from the engine's native plan; FallbackReason says
	// why (the fused-path error, or "circuit breaker open").
	Fallback       bool
	FallbackReason string
	// Inlined records the relational-inlining pass's per-UDF decisions
	// for this query: classification verdict, reason when opaque, and
	// how many call sites were substituted. Sites with tier=inlined
	// never cross the FFI boundary.
	Inlined []InlineDecision
}

// QFusor is the pluggable optimizer: it connects to an engine, probes
// plans, fuses UDF sections and rewrites queries.
type QFusor struct {
	Reg  *Registry
	CM   *CostModel
	Opts Options

	// Breaker is the degradation circuit breaker: consecutive fused-path
	// failures per query (and per wrapper) open it, after which QueryCtx
	// routes straight to the native plan until a cooldown probe succeeds.
	// Nil disables degradation tracking (failures still fall back).
	Breaker *resilience.Breaker

	// PlanCache memoizes whole optimization outcomes per (engine,
	// options, SQL) — see plancache.go. Nil (or Opts.PlanCache=false)
	// disables plan-decision caching; the wrapper compile cache is
	// independent.
	PlanCache *PlanCache

	// wc is the wrapper compile cache — shared (by pointer) between this
	// QFusor and every Variant derived from it, so concurrent sessions
	// with different option sets reuse one pool of compiled wrappers.
	wc *wrapperCache

	// ic is the relational-inlining classification cache (per-UDF
	// template or opaqueness verdict), shared across Variant clones and
	// epoch-fenced on UDF redefinition like wc — see inline.go.
	ic *inlineCache

	mu  sync.Mutex
	cat *sqlengine.Catalog

	// lastReport is the most recent Process measurement (guarded by mu;
	// read through LastReport).
	lastReport Report
}

// wrapperCache is the fused-wrapper compile cache plus the wrapper
// name sequence, extracted from QFusor so Variant clones share it by
// pointer. Sharing matters for the serving plane: every session's
// optimizer — whatever its tier pin or technique switches — must see
// one pool of compiled wrappers (a wrapper's cache key is its
// normalized source, identical across variants) and one name sequence
// (two variants generating "__qf_fused7" for different sections would
// collide in the shared registry/catalog). udfEpoch fencing lives here
// too: a flush by any variant protects all of them.
type wrapperCache struct {
	mu      sync.Mutex
	seq     int
	cache   map[string]*ffi.UDF // wrapper source hash -> registered UDF
	wrapKey map[string]string   // wrapper name -> source hash (breaker key)
	// udfEpoch is the catalog UDF generation the compile cache was
	// built against (see sync).
	udfEpoch int64
}

func newWrapperCache() *wrapperCache {
	return &wrapperCache{cache: make(map[string]*ffi.UDF), wrapKey: make(map[string]string)}
}

// nextName hands out the next unique wrapper name.
func (wc *wrapperCache) nextName() string {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	wc.seq++
	return fmt.Sprintf("__qf_fused%d", wc.seq)
}

// sync flushes the compile cache when any source UDF was (re-)defined
// or dropped since the last call — see QFusor.syncUDFEpoch for why.
func (wc *wrapperCache) sync(cat *sqlengine.Catalog) {
	e := cat.UDFEpoch()
	wc.mu.Lock()
	if e != wc.udfEpoch {
		wc.udfEpoch = e
		wc.cache = make(map[string]*ffi.UDF)
	}
	wc.mu.Unlock()
}

// lookup returns the cached wrapper for a source hash, refreshing the
// name→hash mapping on a hit.
func (wc *wrapperCache) lookup(key string) (*ffi.UDF, bool) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	u, ok := wc.cache[key]
	if ok {
		wc.wrapKey[u.Name] = key
	}
	return u, ok
}

// setKey records a freshly compiled wrapper's name→hash mapping.
func (wc *wrapperCache) setKey(name, key string) {
	wc.mu.Lock()
	wc.wrapKey[name] = key
	wc.mu.Unlock()
}

// store caches a compiled wrapper under its source hash.
func (wc *wrapperCache) store(key string, u *ffi.UDF) {
	wc.mu.Lock()
	wc.cache[key] = u
	wc.mu.Unlock()
}

// breakerKeys maps wrapper names to their breaker keys
// ("wrapper:<hash>"), skipping names with no recorded mapping.
func (wc *wrapperCache) breakerKeys(wrappers []string) []string {
	if len(wrappers) == 0 {
		return nil
	}
	wc.mu.Lock()
	defer wc.mu.Unlock()
	keys := make([]string, 0, len(wrappers))
	for _, w := range wrappers {
		if k, ok := wc.wrapKey[w]; ok {
			keys = append(keys, "wrapper:"+k)
		}
	}
	return keys
}

// New creates a QFusor instance over a registry.
func New(reg *Registry) *QFusor {
	return &QFusor{Reg: reg, CM: DefaultCostModel(), Opts: DefaultOptions(),
		Breaker:   resilience.NewBreaker(3, 30*time.Second),
		PlanCache: NewPlanCache(0),
		wc:        newWrapperCache(),
		ic:        newInlineCache()}
}

// Variant returns a QFusor that runs with its own Options but shares
// every cross-session structure with qf: the UDF registry, the cost
// model (and its drift calibration), the circuit breaker, the
// plan-decision cache, and the wrapper compile cache (including the
// wrapper name sequence). This is how the serving plane gives each
// session a pinned tier or technique switches without forking any
// cache: the plan cache already partitions entries by options
// fingerprint, wrapper sources hash identically across variants, and
// epoch fencing on the shared structures protects all variants at
// once.
func (qf *QFusor) Variant(opts Options) *QFusor {
	return &QFusor{Reg: qf.Reg, CM: qf.CM, Opts: opts,
		Breaker: qf.Breaker, PlanCache: qf.PlanCache, wc: qf.wc, ic: qf.ic}
}

func (qf *QFusor) nextName() string { return qf.wc.nextName() }

// LastReport returns the most recent Process measurement.
//
// Deprecated: "most recent" is ambiguous when queries run concurrently;
// prefer the per-query *Report returned by Process, or the Analysis
// handle from QueryAnalyze.
func (qf *QFusor) LastReport() Report {
	qf.mu.Lock()
	defer qf.mu.Unlock()
	return qf.lastReport
}

func (qf *QFusor) setReport(rep Report) {
	qf.mu.Lock()
	qf.lastReport = rep
	qf.mu.Unlock()
}

func (qf *QFusor) setCatalog(c *sqlengine.Catalog) {
	qf.mu.Lock()
	qf.cat = c
	qf.mu.Unlock()
}

// catalog returns the engine catalog of the current Process call (nil
// before the first one).
func (qf *QFusor) catalog() *sqlengine.Catalog {
	qf.mu.Lock()
	defer qf.mu.Unlock()
	return qf.cat
}

// registerWrapper compiles + registers a fused wrapper, consulting the
// compile cache.
func (qf *QFusor) registerWrapper(name, src string, outNames []string, outKinds []data.Kind, isAgg bool) (*ffi.UDF, bool, error) {
	// Cache key: the source with the wrapper's own name normalized out.
	normalized := replaceName(src, name, "__qf_wrapper")
	h := sha256.Sum256([]byte(normalized))
	key := hex.EncodeToString(h[:16])
	if qf.Breaker != nil && !qf.Breaker.Allow("wrapper:"+key) {
		// This wrapper (by normalized source, so across queries) has been
		// failing at execution time: stop emitting it so the plan stays
		// native until the breaker's cooldown probe.
		return nil, false, fmt.Errorf("core: fused wrapper suppressed (circuit open)")
	}
	if qf.Opts.Cache {
		if u, ok := qf.wc.lookup(key); ok {
			mCacheHits.Inc()
			return u, true, nil
		}
	}
	kind := ffi.Table
	if isAgg {
		kind = ffi.Aggregate
	}
	u, err := ffi.NewFusedUDF(qf.Reg.RT, name, src, kind, outNames, outKinds)
	if err != nil {
		return nil, false, err
	}
	mCacheMiss.Inc()
	qf.wc.setKey(u.Name, key)
	qf.Reg.RegisterFused(u)
	if cat := qf.catalog(); cat != nil {
		// CREATE FUNCTION: the rewritten SQL of path 1 calls the wrapper
		// as a table function, so the engine must resolve it by name.
		cat.PutUDF(u)
	}
	if qf.Opts.Cache {
		qf.wc.store(key, u)
	}
	return u, false, nil
}

func replaceName(src, old, nw string) string {
	out := ""
	for {
		i := indexOfStr(src, old)
		if i < 0 {
			return out + src
		}
		out += src[:i] + nw
		src = src[i+len(old):]
	}
}

func indexOfStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Process runs the QFusor pipeline on a SQL query against an engine:
// probe the plan (EXPLAIN), discover fusible operators (Alg. 1), decide
// fusion (Alg. 2 + cost model), JIT-generate fused wrappers, and
// rewrite the plan. Returns the (possibly rewritten) executable query.
func (qf *QFusor) Process(eng *sqlengine.Engine, sql string) (*sqlengine.Query, *Report, error) {
	return qf.ProcessTraced(eng, sql, nil)
}

// ProcessTraced is Process with query-lifecycle tracing: when root is
// non-nil, each optimizer phase — plan probe, DFG build, section
// discovery, codegen, rewrite — is recorded as a child span with its
// counters. A nil root (what Process passes) costs one pointer compare
// per hook.
func (qf *QFusor) ProcessTraced(eng *sqlengine.Engine, sql string, root *obs.Span) (*sqlengine.Query, *Report, error) {
	qf.setCatalog(eng.Catalog)
	qf.syncUDFEpoch(eng.Catalog)
	qf.CM.SetWorkers(eng.Workers())
	mProcessed.Inc()

	// --- plan-decision cache lookup (before any front-end work) ---
	// A hit returns the memoized rewritten plan directly: no EXPLAIN
	// probe, no DFG, no discovery, no codegen, no rewrite. The admit
	// hook keeps breaker-suppressed wrappers out (see entryAdmitted).
	var (
		cacheKey   string
		cacheEpoch int64
	)
	if qf.planCacheOn() {
		t0 := time.Now()
		cacheKey = planCacheKey(eng, qf.Opts, sql)
		cacheEpoch = eng.Catalog.Epoch()
		if ent, ok := qf.PlanCache.Lookup(cacheKey, cacheEpoch, qf.entryAdmitted); ok {
			rep := qf.reportFromEntry(ent)
			rep.FusOptim = time.Since(t0)
			sp := root.Child("phase:plancache")
			sp.SetAttr("plancache", "hit")
			sp.SetInt("sections", int64(ent.Sections))
			sp.End()
			mFusNanos.Observe(float64(rep.FusOptim.Nanoseconds()))
			qf.setReport(*rep)
			return ent.Query, rep, nil
		}
	}

	sp := root.Child("phase:plan_probe")
	q, err := eng.Plan(sql)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{}
	if !q.HasUDF(eng.Catalog) || !qf.Opts.Fusion {
		sp.SetAttr("fusion", "skipped")
		qf.setReport(*rep)
		return q, rep, nil
	}
	if cacheKey != "" {
		rep.PlanCache = "miss"
	} else {
		rep.PlanCache = "off"
	}

	// --- relational inlining (Froid; see inline.go) ---
	// Inlinable UDF call sites become engine expressions before fusion
	// discovery runs: the optimizer sees through those UDFs and the
	// executor never crosses the FFI boundary for them. When the rewrite
	// removes every UDF reference, fusion has nothing left to do — the
	// query is fully inlined and skips straight to execution.
	t0 := time.Now()
	sp = root.Child("phase:inline")
	fullyInlined := qf.inlinePass(eng, q, rep)
	sp.SetInt("inline_sites", int64(inlineSitesOf(rep)))
	sp.End()
	if fullyInlined {
		rep.FusOptim = time.Since(t0)
		mFusNanos.Observe(float64(rep.FusOptim.Nanoseconds()))
		if cacheKey != "" {
			qf.PlanCache.Insert(qf.newPlanEntry(cacheKey, cacheEpoch, sql, q, rep))
		}
		qf.setReport(*rep)
		return q, rep, nil
	}

	// --- discover fusible operators + fusion optimization ---
	type job struct {
		seg  *Segment
		g    *DFG
		secs []*Section
		// secs stays nil in ScalarOnly mode (no section discovery).
	}
	sp = root.Child("phase:dfg_build")
	var jobs []job
	roots := make([]*sqlengine.Plan, 0, len(q.CTEs)+1)
	for i := range q.CTEs {
		roots = append(roots, q.CTEs[i].Plan)
	}
	roots = append(roots, q.Root)
	for _, pr := range roots {
		for _, seg := range FindSegments(pr) {
			g, err := BuildDFG(seg, eng.Catalog)
			if err != nil {
				continue // untranslatable segment: leave it to the engine
			}
			jobs = append(jobs, job{seg: seg, g: g})
		}
	}
	sp.SetInt("segments", int64(len(jobs)))
	sp.End()

	sp = root.Child("phase:discover")
	kept := jobs[:0]
	nSecs := 0
	for _, j := range jobs {
		if qf.Opts.ScalarOnly {
			kept = append(kept, j)
			continue
		}
		secs := DiscoverSections(j.g, qf.CM, eng.Catalog)
		secs = qf.filterSections(j.g, secs)
		if len(secs) > 0 {
			j.secs = secs
			nSecs += len(secs)
			kept = append(kept, j)
		}
	}
	jobs = kept
	sp.SetInt("sections", int64(nSecs))
	sp.End()
	rep.FusOptim = time.Since(t0)
	mFusNanos.Observe(float64(rep.FusOptim.Nanoseconds()))

	// --- JIT code generation (no plan surgery yet) ---
	t1 := time.Now()
	sp = root.Child("phase:codegen")
	type realizedJob struct {
		seg  *Segment
		byLo map[int]*fusedResult
	}
	var done []realizedJob
	for _, j := range jobs {
		if qf.Opts.ScalarOnly {
			if err := qf.fuseScalarChains(j.seg, rep); err != nil {
				sp.End()
				return nil, nil, err
			}
			continue
		}
		byLo, err := qf.realizeSections(j.seg, j.g, j.secs, rep, sp)
		if err != nil {
			// Realization failed (unsupported shape): fall back to
			// scalar-chain fusion for this segment.
			if err2 := qf.fuseScalarChains(j.seg, rep); err2 != nil {
				sp.End()
				return nil, nil, err2
			}
			continue
		}
		done = append(done, realizedJob{seg: j.seg, byLo: byLo})
	}
	sp.SetInt("wrappers", int64(len(rep.Sources)))
	sp.SetInt("wrapper_cache_hits", int64(rep.CacheHits))
	sp.End()

	// --- plan rewrite ---
	sp = root.Child("phase:rewrite")
	newRoots := make(map[*sqlengine.Plan]*sqlengine.Plan)
	for _, rj := range done {
		top := qf.spliceSegment(rj.seg, rj.byLo)
		if top != nil && rj.seg.Parent == nil {
			newRoots[rj.seg.Chain[len(rj.seg.Chain)-1]] = top
		}
	}
	// Re-root where a whole root segment was replaced.
	for i := range q.CTEs {
		if nr, ok := newRoots[q.CTEs[i].Plan]; ok {
			q.CTEs[i].Plan = nr
		}
	}
	if nr, ok := newRoots[q.Root]; ok {
		q.Root = nr
	}
	sp.SetInt("sections_fused", int64(rep.Sections))
	sp.End()
	rep.CodeGen = time.Since(t1)
	mGenNanos.Observe(float64(rep.CodeGen.Nanoseconds()))
	if cacheKey != "" {
		// Memoize the full outcome under the epoch observed before
		// planning: if the catalog moved while we planned, the entry is
		// born stale and the next lookup evicts it (sound, just wasted).
		qf.PlanCache.Insert(qf.newPlanEntry(cacheKey, cacheEpoch, sql, q, rep))
	}
	qf.setReport(*rep)
	return q, rep, nil
}

// syncUDFEpoch flushes the wrapper compile cache when any source UDF
// was (re-)defined or dropped since the last Process. A compiled fused
// wrapper bakes the bodies of the UDFs it fuses, and its cache key is
// the generated wrapper source — which names the UDFs but does not
// change with their bodies — so a redefinition would otherwise keep
// serving code compiled against the old definition. (Plan-cache entries
// retire separately through the general catalog epoch.) wrapKey stays:
// stale name→hash mappings only feed breaker bookkeeping for wrappers
// that are no longer emitted. The cache is shared across Variant
// clones, so any variant's flush protects every session.
func (qf *QFusor) syncUDFEpoch(cat *sqlengine.Catalog) { qf.wc.sync(cat) }

// planCacheOn reports whether plan-decision caching is active.
func (qf *QFusor) planCacheOn() bool {
	return qf.Opts.PlanCache && qf.PlanCache != nil
}

// entryAdmitted rejects cached entries that call a wrapper whose
// circuit is open (strictly open or cooling down): the resilient path
// decided that plan shape is failing, so the query must re-plan — and
// the re-plan's registerWrapper consults Breaker.Allow, which suppresses
// the wrapper (or admits the half-open probe) with fresh state.
func (qf *QFusor) entryAdmitted(ent *PlanEntry) bool {
	if qf.Breaker == nil {
		return true
	}
	for _, k := range ent.WrapperKeys {
		if qf.Breaker.Open(k) {
			return false
		}
	}
	return true
}

// reportFromEntry reconstructs a per-query Report from a cache hit. The
// section cost predictions are re-derived from the live drift
// calibration (deliberately outside the cache key), so the §5.2
// feedback loop keeps converging across cached executions.
func (qf *QFusor) reportFromEntry(ent *PlanEntry) *Report {
	rep := &Report{
		Sections:  ent.Sections,
		Sources:   ent.Sources,
		Wrappers:  ent.Wrappers,
		Tiers:     ent.Tiers,
		Inlined:   ent.Inlined,
		PlanCache: "hit",
	}
	// Only real compiled wrappers count as compile-cache reuse; the
	// "inline:*" pseudo-entries replay an inlining decision, not a
	// wrapper.
	for _, w := range ent.Wrappers {
		if strings.HasPrefix(w, "__qf_") {
			rep.CacheHits++
		}
	}
	for _, s := range ent.Seeds {
		f := qf.CM.Drift.Factor(s.Key)
		rep.SectionCosts = append(rep.SectionCosts, SectionDrift{
			Wrapper:     s.Wrapper,
			Key:         s.Key,
			Predicted:   s.RawCost * f,
			Calibration: f,
		})
	}
	return rep
}

// newPlanEntry packages a fresh optimization outcome for the cache.
func (qf *QFusor) newPlanEntry(key string, epoch int64, sql string, q *sqlengine.Query, rep *Report) *PlanEntry {
	ent := &PlanEntry{
		SQL:      normalizeSQL(sql),
		Key:      key,
		Epoch:    epoch,
		Query:    q,
		Sections: rep.Sections,
		Sources:  rep.Sources,
		Wrappers: rep.Wrappers,
		Tiers:    rep.Tiers,
		Inlined:  rep.Inlined,
	}
	ent.WrapperKeys = qf.wc.breakerKeys(rep.Wrappers)
	for _, sd := range rep.SectionCosts {
		raw := sd.Predicted
		if sd.Calibration > 0 {
			raw = sd.Predicted / sd.Calibration
		}
		ent.Seeds = append(ent.Seeds, SectionSeed{Wrapper: sd.Wrapper, Key: sd.Key, RawCost: raw})
	}
	return ent
}

// filterSections applies the option gates to discovered sections.
func (qf *QFusor) filterSections(g *DFG, secs []*Section) []*Section {
	var out []*Section
	for _, s := range secs {
		keep := true
		for _, id := range s.Nodes {
			nd := g.Nodes[id]
			switch nd.Kind {
			case KRelExpr:
				// Constant expressions (table UDF parameters, literals)
				// always ride along; real relational computation needs
				// the offload option.
				if !qf.Opts.Offload && !exprIsConstant(nd.Expr) {
					keep = false
				}
			case KRelFilter, KRelDistinct:
				if !qf.Opts.Offload {
					keep = false
				}
			case KRelAggNative:
				if !qf.Opts.Offload || !qf.Opts.AggFusion {
					keep = false
				}
			case KRelGroupBy, KUDFAggregate:
				if !qf.Opts.AggFusion {
					keep = false
				}
			}
		}
		if len(s.Reordered) > 0 && !qf.Opts.Reorder {
			keep = false
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}

// exprIsConstant reports whether e references no columns or fields.
func exprIsConstant(e sqlengine.SQLExpr) bool {
	if e == nil {
		return true
	}
	constant := true
	sqlengine.WalkExpr(e, func(x sqlengine.SQLExpr) bool {
		if _, ok := x.(*sqlengine.ColRef); ok {
			constant = false
			return false
		}
		return true
	})
	return constant
}

// realizeSections JIT-generates every section of a segment, keyed by
// the low end of the plan-node span each one replaces. No plan surgery
// happens here, so a failing realization leaves the query untouched and
// the caller can fall back to scalar-chain fusion.
func (qf *QFusor) realizeSections(seg *Segment, g *DFG, secs []*Section, rep *Report, span *obs.Span) (map[int]*fusedResult, error) {
	byLo := map[int]*fusedResult{}
	for _, s := range secs {
		ws := span.Child("wrapper")
		res, err := qf.generateSection(seg, g, s)
		ws.End()
		if err != nil {
			return nil, err
		}
		if res == nil {
			continue
		}
		if _, dup := byLo[res.SpanLo]; dup {
			continue
		}
		ws.SetAttr("name", res.Wrapper)
		if res.Cached {
			ws.SetAttr("cache", "hit")
			rep.CacheHits++
		} else {
			ws.SetAttr("cache", "miss")
		}
		byLo[res.SpanLo] = res
		rep.Sections++
		rep.Sources = append(rep.Sources, res.Sources...)
		rep.Wrappers = append(rep.Wrappers, res.Wrapper)
		tier := res.Tier
		if tier == "" {
			tier = "closure"
		}
		rep.Tiers = append(rep.Tiers, tier)
		if key := sectionKeyOf(g, s.Nodes); key != "" {
			// The calibrated prediction: the raw F(S) estimate scaled by
			// the section's learned factor. Repeated queries converge
			// because each execution's measured cost feeds the factor
			// (observeSectionCosts) while the plan itself stays stable.
			f := qf.CM.Drift.Factor(key)
			rep.SectionCosts = append(rep.SectionCosts, SectionDrift{
				Wrapper:     res.Wrapper,
				Key:         key,
				Predicted:   s.Cost * f,
				Calibration: f,
			})
		}
		mSections.Inc()
	}
	if len(byLo) == 0 {
		return nil, fmt.Errorf("core: no realizable sections")
	}
	return byLo, nil
}

// spliceSegment reassembles a segment's plan chain, replacing each
// realized section's span with its fused node(s). Returns the new top
// node when the segment's top was the query root (the caller re-roots),
// and wires Parent otherwise.
func (qf *QFusor) spliceSegment(seg *Segment, byLo map[int]*fusedResult) *sqlengine.Plan {
	cursor := seg.Base
	pi := 0
	for pi < len(seg.Chain) {
		if res, ok := byLo[pi]; ok {
			for _, pred := range res.MovedPreds {
				cursor = &sqlengine.Plan{Op: sqlengine.OpFilter,
					Children: []*sqlengine.Plan{cursor}, Schema: schemaOf(cursor),
					Quals: qualsOf(cursor), Exprs: []sqlengine.SQLExpr{pred},
					EstRows: estOf(cursor)}
			}
			for _, fn := range res.Nodes {
				if cursor != nil {
					fn.Children = []*sqlengine.Plan{cursor}
				}
				cursor = fn
			}
			pi = res.SpanHi + 1
			continue
		}
		node := seg.Chain[pi]
		if cursor != nil {
			node.Children = []*sqlengine.Plan{cursor}
		}
		cursor = node
		pi++
	}
	if seg.Parent != nil {
		seg.Parent.Children[seg.ParentSlot] = cursor
	}
	return cursor
}

func schemaOf(p *sqlengine.Plan) data.Schema {
	if p == nil {
		return data.Schema{}
	}
	return p.Schema
}

func qualsOf(p *sqlengine.Plan) []string {
	if p == nil {
		return nil
	}
	return p.Quals
}

func estOf(p *sqlengine.Plan) float64 {
	if p == nil {
		return 1
	}
	return p.EstRows
}

// RewriteSQL runs the pipeline and renders the rewritten plan as SQL
// (path 1 of §5.4). executable reports whether the SQL can be
// re-submitted to this engine.
func (qf *QFusor) RewriteSQL(eng *sqlengine.Engine, sql string) (out string, executable bool, err error) {
	q, _, err := qf.Process(eng, sql)
	if err != nil {
		return "", false, err
	}
	out, executable = RenderSQL(q)
	return out, executable, nil
}

// Query runs the full pipeline and executes the rewritten query
// through the resilient path (circuit breaker + native-plan fallback).
func (qf *QFusor) Query(eng *sqlengine.Engine, sql string) (*data.Table, error) {
	t, _, err := qf.QueryCtx(context.Background(), eng, sql)
	return t, err
}
