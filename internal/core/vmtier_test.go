package core_test

import (
	"strings"
	"testing"

	"qfusor/internal/engines"
)

// launchVMTier builds a fresh Monet instance pinned to the given tier
// with a tiny table and a chainable scalar UDF.
func launchVMTier(t *testing.T, tier string) *engines.Instance {
	t.Helper()
	in := engines.Launch(engines.Config{Profile: engines.Monet, JIT: true, Tier: tier})
	if err := in.Define("@scalarudf\ndef mark(s: str) -> str:\n    return s.strip() + \"!\"\n"); err != nil {
		t.Fatal(err)
	}
	if err := in.Eng.Exec("CREATE TABLE vt (id int, title string)"); err != nil {
		t.Fatal(err)
	}
	if err := in.Eng.Exec("INSERT INTO vt VALUES (1, 'a '), (2, ' b'), (3, 'c')"); err != nil {
		t.Fatal(err)
	}
	return in
}

// TestVMTierSelection checks that the tier decision lands where the
// options point it: "vm" and "auto" take the VM on an eligible section,
// "closure" pins the trace loop — visible in the Report and the
// op-span tier attribute.
func TestVMTierSelection(t *testing.T) {
	const sql = "SELECT id, mark(mark(title)) AS m FROM vt ORDER BY id"
	for _, tc := range []struct {
		tier string
		want string
		span string // op-span tier attr: the closure tier renders as jit-trace
	}{
		{"vm", "vm", "vm"},
		{"auto", "vm", "vm"},
		{"closure", "closure", "jit-trace"},
	} {
		in := launchVMTier(t, tc.tier)
		a, err := in.QueryAnalyze(sql)
		if err != nil {
			t.Fatalf("tier=%s: %v", tc.tier, err)
		}
		if len(a.Report.Tiers) != 1 || a.Report.Tiers[0] != tc.want {
			t.Errorf("tier=%s: Report.Tiers = %v, want [%s]", tc.tier, a.Report.Tiers, tc.want)
		}
		if got := a.Root.Render(); !strings.Contains(got, "tier="+tc.span) {
			t.Errorf("tier=%s: span tree missing tier=%s:\n%s", tc.tier, tc.span, got)
		}
		if got := a.Result.Cols[1].Get(0).String(); got != "a!!" {
			t.Errorf("tier=%s: result = %q, want %q", tc.tier, got, "a!!")
		}
		in.Close()
	}
}

// TestVMTierRedefinition checks the epoch fence: redefining a source
// UDF must retire the plan-cache entry, the wrapper compile cache and
// the published VM program together, so the next execution runs the
// new body on a freshly lowered program — never stale bytecode.
func TestVMTierRedefinition(t *testing.T) {
	in := launchVMTier(t, "vm")
	defer in.Close()
	const sql = "SELECT id, mark(mark(title)) AS m FROM vt ORDER BY id"

	res, err := in.QueryFused(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cols[1].Get(0).String(); got != "a!!" {
		t.Fatalf("pre-redefinition result = %q, want %q", got, "a!!")
	}

	// Redefine with a different body: same name, new behavior.
	if err := in.Define("@scalarudf\ndef mark(s: str) -> str:\n    return s.strip() + \"?\"\n"); err != nil {
		t.Fatal(err)
	}
	res, err = in.QueryFused(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cols[1].Get(0).String(); got != "a??" {
		t.Fatalf("post-redefinition result = %q, want %q (stale VM program served?)", got, "a??")
	}
	// Still on the VM tier after the re-plan.
	if rep := in.QF.LastReport(); len(rep.Tiers) != 1 || rep.Tiers[0] != "vm" {
		t.Fatalf("post-redefinition Tiers = %v, want [vm]", rep.Tiers)
	}
}
