package core_test

import (
	"fmt"
	"testing"

	"qfusor/internal/core"
	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/sqlengine"
)

// buildEngine creates an engine + QFusor sharing one registry.
func buildEngine(t *testing.T) (*sqlengine.Engine, *core.QFusor) {
	t.Helper()
	eng := sqlengine.New("monet", sqlengine.ModeColumnar, ffi.VectorInvoker{})

	people := data.NewTable("people", data.Schema{
		{Name: "id", Kind: data.KindInt},
		{Name: "name", Kind: data.KindString},
		{Name: "age", Kind: data.KindInt},
		{Name: "city", Kind: data.KindString},
		{Name: "joined", Kind: data.KindString},
		{Name: "tags", Kind: data.KindList},
	})
	rows := [][]data.Value{
		{data.Int(1), data.Str("Alice Smith"), data.Int(34), data.Str("athens"), data.Str("2019/03/14"), mkTags("a", "b")},
		{data.Int(2), data.Str("Bob Jones"), data.Int(28), data.Str("berlin"), data.Str("2020/11/02"), mkTags("b")},
		{data.Int(3), data.Str("Carol White"), data.Int(45), data.Str("athens"), data.Str("2018/01/20"), mkTags("c", "a", "d")},
		{data.Int(4), data.Str("dave black"), data.Int(19), data.Str("paris"), data.Str("2021/07/07"), mkTags()},
		{data.Int(5), data.Str("Eve Adams"), data.Int(52), data.Str("berlin"), data.Str("2017/05/30"), mkTags("e", "a")},
		{data.Int(6), data.Str("frank green"), data.Int(41), data.Str("paris"), data.Str("2022/12/25"), mkTags("f")},
	}
	for _, r := range rows {
		if err := people.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	eng.Catalog.PutTable(people)

	reg := core.NewRegistry(4)
	src := `
@scalarudf
def upname(s: str) -> str:
    return s.upper()

@scalarudf
def firstword(s: str) -> str:
    return s.split(" ")[0]

@scalarudf
def addten(x: int) -> int:
    return x + 10

@scalarudf
def cleandate(s: str) -> str:
    return s.replace("/", "-")[0:10]

@scalarudf
def ntags(xs: list) -> int:
    return len(xs)

@aggregateudf
class strjoin:
    def init(self):
        self.parts = []
    def step(self, s):
        if s is not None:
            self.parts.append(s)
    def final(self):
        return ",".join(sorted(self.parts))

@expandudf
def explode(s: str) -> str:
    for w in s.split(" "):
        yield w
`
	if err := reg.Define(src); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(core.UDFSpec{Name: "strjoin", Kind: ffi.Aggregate,
		In: []data.Kind{data.KindString}, Out: []data.Kind{data.KindString}}); err != nil {
		t.Fatal(err)
	}
	reg.Attach(eng)
	return eng, core.New(reg)
}

func mkTags(ss ...string) data.Value {
	items := make([]data.Value, len(ss))
	for i, s := range ss {
		items[i] = data.Str(s)
	}
	return data.NewList(items)
}

// assertSameResult runs sql unfused and through QFusor, comparing rows.
func assertSameResult(t *testing.T, eng *sqlengine.Engine, qf *core.QFusor, sql string) *core.Report {
	t.Helper()
	want, err := eng.Query(sql)
	if err != nil {
		t.Fatalf("unfused: %v", err)
	}
	q, rep, err := qf.Process(eng, sql)
	if err != nil {
		t.Fatalf("process: %v", err)
	}
	got, err := eng.Execute(q)
	if err != nil {
		t.Fatalf("fused execute: %v\nplan:\n%s\nsources:\n%s", err, q.Explain(), rep.Sources)
	}
	compareTables(t, want, got, q, rep)
	return rep
}

func compareTables(t *testing.T, want, got *data.Table, q *sqlengine.Query, rep *core.Report) {
	t.Helper()
	if want.NumRows() != got.NumRows() {
		t.Fatalf("row count: unfused=%d fused=%d\nplan:\n%s\nsources:\n%v",
			want.NumRows(), got.NumRows(), q.Explain(), rep.Sources)
	}
	if len(want.Cols) != len(got.Cols) {
		t.Fatalf("col count: %d vs %d", len(want.Cols), len(got.Cols))
	}
	// Compare as multisets of row keys (fusion may change row order).
	wkeys := rowKeys(want)
	gkeys := rowKeys(got)
	for k, n := range wkeys {
		if gkeys[k] != n {
			t.Fatalf("row %q: unfused×%d fused×%d\nplan:\n%s\nsources:\n%v",
				k, n, gkeys[k], q.Explain(), rep.Sources)
		}
	}
}

func rowKeys(tbl *data.Table) map[string]int {
	out := map[string]int{}
	n := tbl.NumRows()
	for i := 0; i < n; i++ {
		k := ""
		for _, c := range tbl.Cols {
			k += c.Get(i).Key() + "|"
		}
		out[k]++
	}
	return out
}

func TestFuseScalarChain(t *testing.T) {
	eng, qf := buildEngine(t)
	rep := assertSameResult(t, eng, qf, "SELECT id, upname(firstword(name)) FROM people")
	if rep.Sections == 0 {
		t.Fatalf("no sections fused; report %+v", rep)
	}
}

func TestFuseFilterOffload(t *testing.T) {
	eng, qf := buildEngine(t)
	rep := assertSameResult(t, eng, qf,
		"SELECT n FROM (SELECT upname(firstword(name)) AS n, addten(age) AS a FROM people) AS s WHERE a > 40")
	if rep.Sections == 0 {
		t.Fatal("no sections fused")
	}
}

func TestFuseUDFInWhere(t *testing.T) {
	eng, qf := buildEngine(t)
	assertSameResult(t, eng, qf,
		"SELECT name FROM people WHERE addten(age) >= 55")
}

func TestFuseAggregateGroupBy(t *testing.T) {
	eng, qf := buildEngine(t)
	rep := assertSameResult(t, eng, qf,
		"SELECT city, COUNT(*), SUM(addten(age)), strjoin(firstword(name)) FROM people GROUP BY city")
	if rep.Sections == 0 {
		t.Fatal("no sections fused")
	}
}

func TestFuseCaseSum(t *testing.T) {
	eng, qf := buildEngine(t)
	assertSameResult(t, eng, qf, `
SELECT city,
       SUM(CASE WHEN cleandate(joined) >= '2020-01-01' THEN 1 ELSE NULL END) AS recent,
       SUM(CASE WHEN cleandate(joined) < '2020-01-01' THEN 1 ELSE NULL END) AS old
FROM people GROUP BY city`)
}

func TestFuseExpand(t *testing.T) {
	eng, qf := buildEngine(t)
	rep := assertSameResult(t, eng, qf,
		"SELECT id, explode(upname(name)) AS w FROM people")
	if rep.Sections == 0 {
		t.Fatal("no sections fused")
	}
}

func TestFuseExpandThenAggregate(t *testing.T) {
	eng, qf := buildEngine(t)
	assertSameResult(t, eng, qf,
		"SELECT w, COUNT(*) FROM (SELECT explode(name) AS w FROM people) AS x GROUP BY w")
}

func TestFuseComplexTypes(t *testing.T) {
	eng, qf := buildEngine(t)
	assertSameResult(t, eng, qf,
		"SELECT id, ntags(tags) FROM people WHERE ntags(tags) >= 1")
}

func TestFuseDistinct(t *testing.T) {
	eng, qf := buildEngine(t)
	assertSameResult(t, eng, qf,
		"SELECT DISTINCT upname(firstword(city)) FROM people")
}

func TestFuseRunningExample(t *testing.T) {
	eng, qf := buildEngine(t)
	rep := assertSameResult(t, eng, qf, `
WITH cleaned(id, city, day, word) AS (
    SELECT id, city, cleandate(joined), explode(upname(name))
    FROM people
)
SELECT city, COUNT(*),
       SUM(CASE WHEN day >= '2019-01-01' THEN 1 ELSE NULL END)
FROM cleaned
WHERE word != 'ZZZ'
GROUP BY city`)
	if rep.Sections == 0 {
		t.Fatal("no sections fused in the running example")
	}
}

func TestScalarOnlyModeYeSQL(t *testing.T) {
	eng, qf := buildEngine(t)
	qf.Opts = core.Options{Fusion: true, ScalarOnly: true, Cache: true}
	rep := assertSameResult(t, eng, qf,
		"SELECT upname(firstword(name)), addten(age) FROM people WHERE age > 20")
	if rep.Sections == 0 {
		t.Fatal("scalar-only fused nothing")
	}
}

func TestJITOnlyModeNoRewrite(t *testing.T) {
	eng, qf := buildEngine(t)
	qf.Opts = core.Options{Fusion: false}
	q, rep, err := qf.Process(eng, "SELECT upname(firstword(name)) FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sections != 0 {
		t.Fatalf("JIT-only mode fused %d sections", rep.Sections)
	}
	if _, err := eng.Execute(q); err != nil {
		t.Fatal(err)
	}
}

func TestWrapperCacheHitsAcrossQueries(t *testing.T) {
	eng, qf := buildEngine(t)
	sql := "SELECT upname(firstword(name)) FROM people"
	if _, _, err := qf.Process(eng, sql); err != nil {
		t.Fatal(err)
	}
	before := len(qf.LastReport().Sources)
	if before == 0 {
		t.Fatal("first query fused nothing")
	}
	// Re-process: wrapper should come from the cache (no new source is
	// an implementation detail; at minimum it must still execute).
	q, _, err := qf.Process(eng, sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(q); err != nil {
		t.Fatal(err)
	}
}

func TestReportTimingsPopulated(t *testing.T) {
	eng, qf := buildEngine(t)
	_, rep, err := qf.Process(eng, "SELECT upname(firstword(name)) FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FusOptim <= 0 || rep.CodeGen < 0 {
		t.Fatalf("timings not recorded: %+v", rep)
	}
}

func TestFusedAcrossEngineModes(t *testing.T) {
	for _, mode := range []sqlengine.ExecMode{sqlengine.ModeColumnar, sqlengine.ModeChunked, sqlengine.ModeRow} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			eng, qf := buildEngine(t)
			eng.Mode = mode
			assertSameResult(t, eng, qf,
				"SELECT city, SUM(addten(age)) FROM people WHERE upname(city) != 'XXX' GROUP BY city")
		})
	}
}

// TestFusedFilterBeforeGroupBy guards the subtle semantics of fusing a
// filter below a group-by: groups whose rows are all filtered out must
// not appear in the output (grouping happens inside the trace, after
// the fused filter).
func TestFusedFilterBeforeGroupBy(t *testing.T) {
	eng, qf := buildEngine(t)
	// addten(age) > 55 keeps only Eve (52+10): athens (44, 55) and
	// paris (29, 51) are filtered out entirely and must produce no
	// groups.
	sql := `
SELECT city, COUNT(*) AS n
FROM (SELECT city, addten(age) AS a FROM people) AS x
WHERE a > 55
GROUP BY city`
	rep := assertSameResult(t, eng, qf, sql)
	if rep.Sections == 0 {
		t.Fatal("filter+group section not fused")
	}
	res, err := eng.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Cols[0].Get(0).String() != "berlin" {
		t.Fatalf("want only group berlin, got %d rows", res.NumRows())
	}
}

// TestProfilerSeedsColdUDFs: probing fills the stats dictionary so the
// cost model starts from measured values (§5.2.2).
func TestProfilerSeedsColdUDFs(t *testing.T) {
	eng, _ := buildEngine(t)
	var cold int
	for _, u := range eng.Catalog.UDFs() {
		if u.Stats.InRows.Load() == 0 {
			cold++
		}
	}
	if cold == 0 {
		t.Fatal("fixture has no cold UDFs")
	}
	p := core.NewProfiler()
	probed := p.ProfileColdUDFs(eng, "people")
	if probed == 0 {
		t.Fatal("profiler probed nothing")
	}
	warmed := 0
	for _, u := range eng.Catalog.UDFs() {
		if u.Stats.InRows.Load() > 0 {
			warmed++
			if u.Stats.NanosPerRow() <= 0 {
				t.Errorf("udf %s probed but has no cost", u.Name)
			}
		}
	}
	if warmed < probed {
		t.Fatalf("probed %d but only %d have stats", probed, warmed)
	}
}

// TestCostBucketsRoundTrip: bucketing is monotone and reversible to the
// right half-decade.
func TestCostBucketsRoundTrip(t *testing.T) {
	prev := -1
	for _, c := range []float64{50, 200, 900, 4000, 20000} {
		b := core.CostBucket(c)
		if b <= prev {
			t.Fatalf("buckets not monotone at %v", c)
		}
		prev = b
		back := core.BucketedCost(b)
		if back < c/4 || back > c*4 {
			t.Fatalf("bucket %d of %v maps back to %v", b, c, back)
		}
	}
}

// TestOptionMatrixParity: every ablation configuration must preserve
// results on a query exercising all fusion cases.
func TestOptionMatrixParity(t *testing.T) {
	sql := `
SELECT city, COUNT(*) AS n, SUM(addten(age)) AS s
FROM (SELECT city, age, explode(upname(name)) AS w FROM people WHERE ntags(tags) >= 0) AS x
WHERE w != 'XYZZY'
GROUP BY city`
	configs := []core.Options{
		{Fusion: false},
		{Fusion: true},
		{Fusion: true, ScalarOnly: true},
		{Fusion: true, Offload: true},
		{Fusion: true, Offload: true, Reorder: true},
		{Fusion: true, Offload: true, Reorder: true, AggFusion: true},
		{Fusion: true, Offload: true, Reorder: true, AggFusion: true, Cache: true},
	}
	eng, qf := buildEngine(t)
	want, err := eng.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	wk := rowKeys(want)
	for i, opts := range configs {
		qf.Opts = opts
		q, _, err := qf.Process(eng, sql)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		got, err := eng.Execute(q)
		if err != nil {
			t.Fatalf("config %d exec: %v", i, err)
		}
		gk := rowKeys(got)
		for k, n := range wk {
			if gk[k] != n {
				t.Fatalf("config %+v: row %q %d vs %d", opts, k, n, gk[k])
			}
		}
	}
}

// TestParallelFusedAggMatchesSerial: partial aggregation + merge across
// workers equals the single-shot result.
func TestParallelFusedAggMatchesSerial(t *testing.T) {
	sql := `
SELECT city, COUNT(*) AS n, SUM(addten(age)) AS s
FROM (SELECT city, age, addten(age) AS a FROM people) AS x
WHERE a > 25
GROUP BY city`
	serialEng, serialQF := buildEngine(t)
	parEng, parQF := buildEngine(t)
	parEng.Parallelism = 3
	// Enough rows that the parallel partial-aggregation path engages.
	for _, eng := range []*sqlengine.Engine{serialEng, parEng} {
		for i := 0; i < 40; i++ {
			stmt := fmt.Sprintf("INSERT INTO people VALUES (%d, 'P%d Q%d', %d, 'city%d', '2020/1/%d', '[]')",
				100+i, i, i, 18+i%50, i%5, 1+i%28)
			if err := eng.Exec(stmt); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := serialQF.Query(serialEng, sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parQF.Query(parEng, sql)
	if err != nil {
		t.Fatal(err)
	}
	wk, gk := rowKeys(want), rowKeys(got)
	if len(wk) != len(gk) {
		t.Fatalf("groups %d vs %d", len(wk), len(gk))
	}
	for k, n := range wk {
		if gk[k] != n {
			t.Fatalf("row %q: %d vs %d", k, n, gk[k])
		}
	}
}

// TestHeuristicColdStartFusion: with no statistics, the §5.2.4 rules
// fuse UDF chains (the rule-based engine / cold-start path).
func TestHeuristicColdStartFusion(t *testing.T) {
	eng, qf := buildEngine(t)
	// Fresh engine, no query has run — every UDF is cold.
	rep := assertSameResult(t, eng, qf, "SELECT upname(firstword(name)) FROM people")
	if rep.Sections == 0 {
		t.Fatal("cold-start heuristics fused nothing")
	}
	// DISTINCT with unknown selectivity stays engine-side under the
	// heuristic (it only fuses when highly selective).
	eng2, qf2 := buildEngine(t)
	assertSameResult(t, eng2, qf2, "SELECT DISTINCT upname(city) FROM people")
}
