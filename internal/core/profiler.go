package core

import (
	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/obs"
	"qfusor/internal/sqlengine"
)

// Profiler implements §5.2.2's cold-start mitigation: before the cost
// model has execution statistics for a UDF, probe it with a few sampled
// rows (the exploration phase of the paper's CherryPick-style tuning)
// so Algorithm 2 decides from measured costs instead of defaults.
// Learned values land in the same stateful dictionary (ffi.Stats) that
// regular execution refines afterwards (exploitation).
type Profiler struct {
	// SampleRows is how many rows each probe draws (small by design —
	// "limited test runs").
	SampleRows int
}

// NewProfiler returns a profiler with the default probe size.
func NewProfiler() *Profiler { return &Profiler{SampleRows: 32} }

// ProfileColdUDFs probes every registered scalar UDF that has no
// statistics yet, sampling argument values from the given table's
// columns (matched by declared input kind). UDFs whose inputs cannot be
// sampled are left cold (the cost model's default applies).
func (p *Profiler) ProfileColdUDFs(eng *sqlengine.Engine, tableName string) int {
	t, ok := eng.Catalog.Table(tableName)
	if !ok {
		return 0
	}
	probed := 0
	for _, u := range eng.Catalog.UDFs() {
		if u.Kind != ffi.Scalar || u.Fused || u.Stats.InRows.Load() > 0 {
			continue
		}
		cols := p.sampleArgs(t, u)
		if cols == nil {
			continue
		}
		n := cols[0].Len()
		// Probe through the vectorized transport; errors just leave the
		// UDF cold (dirty samples may not fit every UDF).
		if _, err := (ffi.VectorInvoker{}).CallScalar(u, cols, n); err == nil {
			probed++
		} else {
			// A failing probe must leave the UDF fully cold.
			u.Stats.Reset()
		}
	}
	return probed
}

// sampleArgs picks sample columns for each declared input kind.
func (p *Profiler) sampleArgs(t *data.Table, u *ffi.UDF) []*data.Column {
	n := t.NumRows()
	if n == 0 {
		return nil
	}
	rows := p.SampleRows
	if rows > n {
		rows = n
	}
	out := make([]*data.Column, 0, len(u.InKinds))
	for _, want := range u.InKinds {
		var src *data.Column
		for _, c := range t.Cols {
			if c.Kind == want {
				src = c
				break
			}
		}
		if src == nil {
			return nil
		}
		// Stride-sample across the table for variety.
		stride := n / rows
		if stride < 1 {
			stride = 1
		}
		idx := make([]int, 0, rows)
		for i := 0; i < n && len(idx) < rows; i += stride {
			idx = append(idx, i)
		}
		out = append(out, src.Take(idx))
	}
	if len(out) != len(u.InKinds) || len(out) == 0 {
		return nil
	}
	return out
}

// CostBucket quantizes a learned per-row cost into the coarse-grained
// buckets the paper's dictionary stores (powers of ~3.16, i.e. half
// decades of nanoseconds). The quantization lives in obs so the metrics
// registry's latency histograms use identical buckets.
func CostBucket(nanosPerRow float64) int {
	return obs.Bucket(nanosPerRow)
}

// BucketedCost converts a bucket back to a representative cost.
func BucketedCost(bucket int) float64 {
	return obs.BucketValue(bucket)
}
