package core

import (
	"fmt"
	"strings"

	"qfusor/internal/ffi"
	"qfusor/internal/sqlengine"
)

// OpKind classifies a fine-grained operator in the data-flow graph.
type OpKind int

const (
	// KUDFScalar is one scalar UDF invocation.
	KUDFScalar OpKind = iota
	// KUDFAggregate is a UDF aggregate (init-step-final class).
	KUDFAggregate
	// KUDFTable is a table/expand UDF invocation.
	KUDFTable
	// KRelExpr is a native scalar computation (arithmetic, CASE, ...).
	KRelExpr
	// KRelFilter is a filter predicate.
	KRelFilter
	// KRelAggNative is a native aggregate (sum/count/min/max/...).
	KRelAggNative
	// KRelGroupBy is the grouping operator of an Aggregate node.
	KRelGroupBy
	// KRelDistinct is a DISTINCT.
	KRelDistinct
)

// String names the kind in traces and EXPLAIN-style output.
func (k OpKind) String() string {
	switch k {
	case KUDFScalar:
		return "udf"
	case KUDFAggregate:
		return "udf-agg"
	case KUDFTable:
		return "udf-table"
	case KRelExpr:
		return "rel-expr"
	case KRelFilter:
		return "rel-filter"
	case KRelAggNative:
		return "rel-agg"
	case KRelGroupBy:
		return "rel-groupby"
	case KRelDistinct:
		return "rel-distinct"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// IsUDF reports whether the kind is a UDF operator.
func (k OpKind) IsUDF() bool {
	return k == KUDFScalar || k == KUDFAggregate || k == KUDFTable
}

// DFGNode is one operator with its input/output field sets — the unit
// Algorithms 1 and 2 reason about.
type DFGNode struct {
	ID   int
	Kind OpKind
	Name string
	UDF  *ffi.UDF
	// In and Out are the field names read and written.
	In  []string
	Out []string
	// PlanIdx is the index of the owning plan node within the segment
	// chain (bottom = 0).
	PlanIdx int
	// Expr is the bound expression this node evaluates, when applicable.
	Expr sqlengine.SQLExpr
	// Rows is the estimated input cardinality; Sel the selectivity.
	Rows float64
	Sel  float64
	// Uses counts how many consumers share this node after common-
	// subexpression elimination (the unfused plan evaluates the call
	// once per use; the fused section only once).
	Uses int
	// Blocking marks operators that must materialize their input
	// (median-style aggregates) — loop fusion stops there (Table 2).
	Blocking bool
}

// DFG is the data-flow graph over a segment's operators.
type DFG struct {
	Nodes []*DFGNode
	Succ  [][]int
	Pred  [][]int
	// BaseFields names the segment child's columns; PlanFields[pi] the
	// output fields of chain node pi (used by the code generator to map
	// fields to engine columns).
	BaseFields []string
	PlanFields [][]string
}

// Segment is a maximal chain of streaming unary plan operators —
// the region QFusor considers for fusion in one shot.
type Segment struct {
	// Chain lists the plan nodes bottom-up; Chain[0]'s child (Base) is
	// the fusion boundary (scan, join, sort, ...).
	Chain []*sqlengine.Plan
	Base  *sqlengine.Plan
	// Parent is the plan node above the segment (nil = query root), and
	// ParentSlot its child index pointing at the segment top.
	Parent     *sqlengine.Plan
	ParentSlot int
	// RootIsTop is set when Chain's top is the query root.
	RootIsTop bool
}

// segmentable reports whether a plan node can be part of a fused
// segment.
func segmentable(p *sqlengine.Plan) bool {
	switch p.Op {
	case sqlengine.OpProject, sqlengine.OpFilter, sqlengine.OpExpand,
		sqlengine.OpTableFunc, sqlengine.OpAggregate, sqlengine.OpDistinct:
		return len(p.Children) <= 1
	}
	return false
}

// FindSegments collects all fusible segments of a plan tree.
func FindSegments(root *sqlengine.Plan) []*Segment {
	var segs []*Segment
	var walk func(p *sqlengine.Plan, parent *sqlengine.Plan, slot int, isRoot bool)
	walk = func(p *sqlengine.Plan, parent *sqlengine.Plan, slot int, isRoot bool) {
		if segmentable(p) {
			// Collect the maximal chain downward.
			var chain []*sqlengine.Plan
			cur := p
			for segmentable(cur) {
				chain = append(chain, cur)
				if len(cur.Children) == 0 {
					break
				}
				cur = cur.Children[0]
			}
			// chain is top-down; reverse to bottom-up.
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			var base *sqlengine.Plan
			if len(chain[0].Children) > 0 {
				base = chain[0].Children[0]
			}
			segs = append(segs, &Segment{Chain: chain, Base: base,
				Parent: parent, ParentSlot: slot, RootIsTop: isRoot})
			if base != nil {
				walk(base, chain[0], 0, false)
			}
			return
		}
		for i, c := range p.Children {
			walk(c, p, i, false)
		}
	}
	walk(root, nil, 0, true)
	return segs
}

// fieldName builds a stable field identifier for plan node pi, column c.
func fieldName(pi, c int) string { return fmt.Sprintf("p%d.c%d", pi, c) }

// BuildDFG extracts the fine-grained operator nodes of a segment and
// connects them per the Bernstein condition (Algorithm 1).
func BuildDFG(seg *Segment, cat *sqlengine.Catalog) (*DFG, error) {
	b := &dfgBuilder{cat: cat}
	// Base fields: the segment child's columns, addressed as p-1.cN.
	var curFields []string
	if seg.Base != nil {
		curFields = make([]string, len(seg.Base.Schema))
		for i := range curFields {
			curFields[i] = fieldName(-1, i)
		}
	}
	base := append([]string(nil), curFields...)
	planFields := make([][]string, len(seg.Chain))
	for pi, p := range seg.Chain {
		next, err := b.addPlanNode(pi, p, curFields)
		if err != nil {
			return nil, err
		}
		curFields = next
		planFields[pi] = append([]string(nil), next...)
	}
	g := &DFG{Nodes: b.nodes, BaseFields: base, PlanFields: planFields}
	g.connect()
	return g, nil
}

type dfgBuilder struct {
	cat   *sqlengine.Catalog
	nodes []*DFGNode
	tmpN  int
	// cse memoizes scalar UDF calls on identical inputs within the
	// segment: callKey -> node index. Fusion evaluates the shared call
	// once (the redundant-invocation elimination of §6.4.1).
	cse map[string]int
}

func (b *dfgBuilder) tmp() string {
	b.tmpN++
	return fmt.Sprintf("t%d", b.tmpN)
}

func (b *dfgBuilder) add(n *DFGNode) *DFGNode {
	n.ID = len(b.nodes)
	b.nodes = append(b.nodes, n)
	return n
}

// addPlanNode decomposes one plan operator into DFG nodes, returning the
// field names of its output columns.
func (b *dfgBuilder) addPlanNode(pi int, p *sqlengine.Plan, in []string) ([]string, error) {
	rows := p.EstRows
	if len(p.Children) == 1 {
		rows = p.Children[0].EstRows
	}
	switch p.Op {
	case sqlengine.OpProject:
		out := make([]string, len(p.Exprs))
		for i, e := range p.Exprs {
			f, err := b.addExpr(pi, e, in, rows)
			if err != nil {
				return nil, err
			}
			out[i] = f
		}
		return out, nil
	case sqlengine.OpFilter:
		// Predicate sub-UDFs become their own nodes; the filter consumes
		// their outputs plus any raw fields.
		inFields, expr, err := b.decomposeUDFCalls(pi, p.Exprs[0], in, rows)
		if err != nil {
			return nil, err
		}
		b.add(&DFGNode{Kind: KRelFilter, Name: "filter", In: inFields,
			Out: append([]string(nil), in...), PlanIdx: pi, Expr: expr,
			Rows: rows, Sel: filterSel(p)})
		return in, nil
	case sqlengine.OpExpand:
		u := p.UDF
		var argFields []string
		for _, a := range p.TFArgs {
			cr, ok := a.(*sqlengine.ColRef)
			if !ok {
				return nil, fmt.Errorf("core: expand arg is not a column")
			}
			argFields = append(argFields, in[cr.Index])
		}
		nKeep := len(p.KeepCols)
		out := make([]string, len(p.Schema))
		for i, ci := range p.KeepCols {
			out[i] = in[ci]
		}
		var udfOut []string
		for i := nKeep; i < len(p.Schema); i++ {
			f := b.tmp()
			out[i] = f
			udfOut = append(udfOut, f)
		}
		b.add(&DFGNode{Kind: KUDFTable, Name: u.Name, UDF: u, In: argFields,
			Out: udfOut, PlanIdx: pi, Rows: rows, Sel: udfSel(u, 2)})
		return out, nil
	case sqlengine.OpTableFunc:
		u := p.UDF
		out := make([]string, len(p.Schema))
		var udfOut []string
		for i := range p.Schema {
			f := b.tmp()
			out[i] = f
			udfOut = append(udfOut, f)
		}
		b.add(&DFGNode{Kind: KUDFTable, Name: u.Name, UDF: u,
			In: append([]string(nil), in...), Out: udfOut, PlanIdx: pi,
			Rows: rows, Sel: udfSel(u, 1.5)})
		return out, nil
	case sqlengine.OpAggregate:
		// Group keys.
		var keyIn []string
		for _, k := range p.GroupBy {
			fs, _, err := b.decomposeUDFCalls(pi, k, in, rows)
			if err != nil {
				return nil, err
			}
			keyIn = append(keyIn, fs...)
		}
		out := make([]string, 0, len(p.GroupBy)+len(p.Aggs))
		var keyOut []string
		for range p.GroupBy {
			f := b.tmp()
			keyOut = append(keyOut, f)
			out = append(out, f)
		}
		if len(p.GroupBy) > 0 {
			b.add(&DFGNode{Kind: KRelGroupBy, Name: "groupby", In: keyIn,
				Out: keyOut, PlanIdx: pi, Rows: rows, Sel: 0.05})
		}
		for _, spec := range p.Aggs {
			var aggIn []string
			var exprs []sqlengine.SQLExpr
			for _, a := range spec.Args {
				fs, expr, err := b.decomposeUDFCalls(pi, a, in, rows)
				if err != nil {
					return nil, err
				}
				aggIn = append(aggIn, fs...)
				exprs = append(exprs, expr)
			}
			aggIn = append(aggIn, keyOut...) // aggregation depends on grouping
			f := b.tmp()
			out = append(out, f)
			node := &DFGNode{Name: spec.Name, In: aggIn, Out: []string{f},
				PlanIdx: pi, Rows: rows, Sel: 0.05}
			if len(exprs) > 0 {
				node.Expr = exprs[0]
			}
			if spec.UDF != nil {
				node.Kind = KUDFAggregate
				node.UDF = spec.UDF
			} else {
				node.Kind = KRelAggNative
				node.Blocking = spec.Name == "median"
			}
			b.add(node)
		}
		return out, nil
	case sqlengine.OpDistinct:
		b.add(&DFGNode{Kind: KRelDistinct, Name: "distinct",
			In: append([]string(nil), in...), Out: append([]string(nil), in...),
			PlanIdx: pi, Rows: rows, Sel: 0.1})
		return in, nil
	}
	return nil, fmt.Errorf("core: unsupported segment operator %s", p.Op)
}

// addExpr decomposes a projection expression: scalar UDF calls become
// DFG nodes; a non-trivial relational remainder becomes a KRelExpr node.
// Returns the field carrying the expression's result.
func (b *dfgBuilder) addExpr(pi int, e sqlengine.SQLExpr, in []string, rows float64) (string, error) {
	// Pure column pass-through: no operator at all.
	if cr, ok := e.(*sqlengine.ColRef); ok {
		if cr.Index < 0 || cr.Index >= len(in) {
			return "", fmt.Errorf("core: unbound column %s", cr)
		}
		return in[cr.Index], nil
	}
	inFields, expr, err := b.decomposeUDFCalls(pi, e, in, rows)
	if err != nil {
		return "", err
	}
	// If the remainder is a bare reference to a UDF output, the UDF node
	// is the producer — no extra rel-expr node.
	if f, ok := asFieldRef(expr); ok {
		_ = inFields
		return f, nil
	}
	out := b.tmp()
	b.add(&DFGNode{Kind: KRelExpr, Name: exprLabel(expr), In: inFields,
		Out: []string{out}, PlanIdx: pi, Expr: expr, Rows: rows, Sel: 1})
	return out, nil
}

// decomposeUDFCalls walks e, replacing every scalar-UDF call subtree
// with a DFG node and a fieldRef placeholder. It returns the fields the
// remainder expression reads plus the rewritten expression.
func (b *dfgBuilder) decomposeUDFCalls(pi int, e sqlengine.SQLExpr, in []string, rows float64) ([]string, sqlengine.SQLExpr, error) {
	fields := map[string]bool{}
	var rewrite func(x sqlengine.SQLExpr) (sqlengine.SQLExpr, error)
	rewrite = func(x sqlengine.SQLExpr) (sqlengine.SQLExpr, error) {
		switch ex := x.(type) {
		case nil:
			return nil, nil
		case *sqlengine.ColRef:
			if ex.Table == fieldTable {
				fields[ex.Name] = true
				return ex, nil
			}
			if ex.Index < 0 || ex.Index >= len(in) {
				return nil, fmt.Errorf("core: unbound column %s", ex)
			}
			f := in[ex.Index]
			fields[f] = true
			return fieldRefExpr(f), nil
		case *sqlengine.FuncExpr:
			if u, ok := b.cat.UDF(ex.Name); ok && u.Kind == ffi.Scalar {
				// Argument subtrees first (producing their own nodes).
				var argFields []string
				var argExprs []sqlengine.SQLExpr
				for _, a := range ex.Args {
					ra, err := rewrite(a)
					if err != nil {
						return nil, err
					}
					argExprs = append(argExprs, ra)
					collectFieldRefs(ra, func(f string) { argFields = append(argFields, f) })
				}
				// Common-subexpression elimination: the same UDF on the
				// same simple inputs shares one node. Sharing is scoped
				// to one plan node — the §6.4.1 case of cleandate invoked
				// three times inside the same aggregate.
				key, canCSE := cseKey(fmt.Sprintf("@%d:%s", pi, u.Name), argExprs)
				if canCSE {
					if b.cse == nil {
						b.cse = map[string]int{}
					}
					if prev, dup := b.cse[key]; dup {
						nd := b.nodes[prev]
						nd.Uses++
						fields[nd.Out[0]] = true
						return fieldRefExpr(nd.Out[0]), nil
					}
				}
				out := b.tmp()
				nd := b.add(&DFGNode{Kind: KUDFScalar, Name: u.Name, UDF: u,
					In: argFields, Out: []string{out}, PlanIdx: pi,
					Expr: &sqlengine.FuncExpr{Name: ex.Name, Args: argExprs},
					Rows: rows, Sel: 1, Uses: 1})
				if canCSE {
					b.cse[key] = nd.ID
				}
				fields[out] = true
				return fieldRefExpr(out), nil
			}
			// Native function: rewrite args in place.
			args := make([]sqlengine.SQLExpr, len(ex.Args))
			for i, a := range ex.Args {
				ra, err := rewrite(a)
				if err != nil {
					return nil, err
				}
				args[i] = ra
			}
			return &sqlengine.FuncExpr{Name: ex.Name, Args: args, Star: ex.Star}, nil
		case *sqlengine.Lit:
			return ex, nil
		case *sqlengine.BinExpr:
			l, err := rewrite(ex.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(ex.R)
			if err != nil {
				return nil, err
			}
			return &sqlengine.BinExpr{Op: ex.Op, L: l, R: r}, nil
		case *sqlengine.UnaryExpr:
			s, err := rewrite(ex.E)
			if err != nil {
				return nil, err
			}
			return &sqlengine.UnaryExpr{Op: ex.Op, E: s}, nil
		case *sqlengine.CaseExpr:
			out := &sqlengine.CaseExpr{}
			var err error
			if ex.Operand != nil {
				if out.Operand, err = rewrite(ex.Operand); err != nil {
					return nil, err
				}
			}
			for i := range ex.Whens {
				w, err := rewrite(ex.Whens[i])
				if err != nil {
					return nil, err
				}
				t, err := rewrite(ex.Thens[i])
				if err != nil {
					return nil, err
				}
				out.Whens = append(out.Whens, w)
				out.Thens = append(out.Thens, t)
			}
			if ex.Else != nil {
				if out.Else, err = rewrite(ex.Else); err != nil {
					return nil, err
				}
			}
			return out, nil
		case *sqlengine.BetweenExpr:
			v, err := rewrite(ex.E)
			if err != nil {
				return nil, err
			}
			lo, err := rewrite(ex.Lo)
			if err != nil {
				return nil, err
			}
			hi, err := rewrite(ex.Hi)
			if err != nil {
				return nil, err
			}
			return &sqlengine.BetweenExpr{E: v, Lo: lo, Hi: hi, Not: ex.Not}, nil
		case *sqlengine.InExpr:
			v, err := rewrite(ex.E)
			if err != nil {
				return nil, err
			}
			list := make([]sqlengine.SQLExpr, len(ex.List))
			for i, it := range ex.List {
				ri, err := rewrite(it)
				if err != nil {
					return nil, err
				}
				list[i] = ri
			}
			return &sqlengine.InExpr{E: v, List: list, Not: ex.Not}, nil
		case *sqlengine.IsNullExpr:
			v, err := rewrite(ex.E)
			if err != nil {
				return nil, err
			}
			return &sqlengine.IsNullExpr{E: v, Not: ex.Not}, nil
		case *sqlengine.CastExpr:
			v, err := rewrite(ex.E)
			if err != nil {
				return nil, err
			}
			return &sqlengine.CastExpr{E: v, Kind: ex.Kind}, nil
		}
		return nil, fmt.Errorf("core: cannot decompose %T", x)
	}
	out, err := rewrite(e)
	if err != nil {
		return nil, nil, err
	}
	var fs []string
	for f := range fields {
		fs = append(fs, f)
	}
	// Deterministic order.
	sortStrings(fs)
	return fs, out, nil
}

// fieldTable marks ColRefs that refer to DFG fields rather than plan
// columns (the placeholder the decomposition rewrites UDF subtrees to).
const fieldTable = "__qfield"

// fieldRefExpr builds a DFG-field placeholder expression.
func fieldRefExpr(field string) *sqlengine.ColRef {
	return &sqlengine.ColRef{Table: fieldTable, Name: field, Index: -1}
}

// asFieldRef returns the field name if e is a DFG-field placeholder.
func asFieldRef(e sqlengine.SQLExpr) (string, bool) {
	cr, ok := e.(*sqlengine.ColRef)
	if !ok || cr.Table != fieldTable {
		return "", false
	}
	return cr.Name, true
}

func collectFieldRefs(e sqlengine.SQLExpr, fn func(string)) {
	sqlengine.WalkExpr(e, func(x sqlengine.SQLExpr) bool {
		if f, ok := asFieldRef(x); ok {
			fn(f)
		}
		return true
	})
}

// cseKey canonicalizes a scalar UDF call over simple arguments (field
// references and literals); ok=false when an argument is a computed
// expression (no memoization).
func cseKey(name string, args []sqlengine.SQLExpr) (string, bool) {
	key := name + "("
	for _, a := range args {
		if f, ok := asFieldRef(a); ok {
			key += "f:" + f + ","
			continue
		}
		if lit, ok := a.(*sqlengine.Lit); ok {
			key += "l:" + lit.Value.Repr() + ","
			continue
		}
		return "", false
	}
	return key + ")", true
}

func exprLabel(e sqlengine.SQLExpr) string {
	s := e.String()
	if len(s) > 24 {
		s = s[:24] + "…"
	}
	return s
}

func filterSel(p *sqlengine.Plan) float64 {
	if len(p.Children) == 1 && p.Children[0].EstRows > 0 {
		return p.EstRows / p.Children[0].EstRows
	}
	return 0.33
}

func udfSel(u *ffi.UDF, def float64) float64 {
	if u.Stats.Calls.Load() > 0 {
		return u.Stats.Selectivity()
	}
	return def
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// connect applies Algorithm 1: for every ordered pair (u, v) with
// u.Out ∩ v.In ≠ ∅ (the RAW Bernstein condition), add edge u → v.
func (g *DFG) connect() {
	n := len(g.Nodes)
	g.Succ = make([][]int, n)
	g.Pred = make([][]int, n)
	outSets := make([]map[string]bool, n)
	for i, nd := range g.Nodes {
		outSets[i] = make(map[string]bool, len(nd.Out))
		for _, f := range nd.Out {
			outSets[i][f] = true
		}
	}
	for vi, v := range g.Nodes {
		for ui := range g.Nodes {
			if ui == vi {
				continue
			}
			// Only earlier nodes can produce for later ones (extraction
			// order is a topological order of the plan).
			if ui > vi {
				continue
			}
			dep := false
			for _, f := range v.In {
				if outSets[ui][f] {
					dep = true
					break
				}
			}
			if dep {
				g.Succ[ui] = append(g.Succ[ui], vi)
				g.Pred[vi] = append(g.Pred[vi], ui)
			}
		}
	}
}

// TopoOrder returns node IDs in topological order (extraction order is
// already topological; kept explicit for Algorithm 2's clarity).
func (g *DFG) TopoOrder() []int {
	out := make([]int, len(g.Nodes))
	for i := range out {
		out[i] = i
	}
	return out
}

// String renders the DFG for debugging and the examples.
func (g *DFG) String() string {
	var b strings.Builder
	for i, nd := range g.Nodes {
		fmt.Fprintf(&b, "#%d %s %s in=%v out=%v plan=%d", i, nd.Kind, nd.Name, nd.In, nd.Out, nd.PlanIdx)
		if len(g.Succ[i]) > 0 {
			fmt.Fprintf(&b, " -> %v", g.Succ[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
