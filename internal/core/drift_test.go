package core_test

import (
	"context"
	"strings"
	"testing"

	"qfusor/internal/core"
	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/obs"
	"qfusor/internal/sqlengine"
)

// TestDriftCalObserve exercises the EWMA update directly: feeding the
// same under-prediction repeatedly must walk the calibration factor
// toward the value that makes the prediction exact.
func TestDriftCalObserve(t *testing.T) {
	d := core.NewDriftCal()
	if f := d.Factor("k"); f != 1 {
		t.Fatalf("cold factor = %v, want 1", f)
	}
	// The model's uncalibrated estimate is 1000ns but reality is 4000ns.
	const base, actual = 1000.0, 4000.0
	prevErr := 10.0
	for i := 0; i < 6; i++ {
		predicted := base * d.Factor("k") // as sectionCost would compute
		d.Observe("k", predicted, actual)
		err := predicted/actual - 1
		if err < 0 {
			err = -err
		}
		if i > 0 && err >= prevErr {
			t.Fatalf("iteration %d: |predicted/actual-1| = %v did not shrink (prev %v)", i, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 0.1 {
		t.Fatalf("after 6 observations drift still %v, want < 0.1", prevErr)
	}
	f := d.Factor("k")
	if f < 3 || f > 5 {
		t.Fatalf("calibration factor = %v, want near 4", f)
	}
	if got := d.Snapshot()["k"]; got != f {
		t.Fatalf("Snapshot[k] = %v, want %v", got, f)
	}
}

func TestDriftCalClampAndNilSafety(t *testing.T) {
	d := core.NewDriftCal()
	// A wild outlier moves the factor by at most the clamp in one step.
	d.Observe("k", 1, 1e12)
	if f := d.Factor("k"); f > 16 {
		t.Fatalf("factor %v exceeds one-step clamp", f)
	}
	// Non-positive observations are ignored.
	before := d.Factor("k")
	d.Observe("k", 0, 100)
	d.Observe("k", 100, 0)
	if f := d.Factor("k"); f != before {
		t.Fatalf("non-positive observation moved factor %v -> %v", before, f)
	}
	var nd *core.DriftCal
	if nd.Factor("x") != 1 || nd.Observe("x", 1, 2) != 1 || nd.Snapshot() != nil {
		t.Fatal("nil DriftCal must behave as identity")
	}
}

// buildDriftEngine builds an engine whose fused section does enough
// real work (two looping UDFs over a few thousand rows) that its
// measured wall time is stable run to run — a requirement for asserting
// on wall-clock convergence. The tiny buildEngine fixture runs in
// single-digit microseconds, where scheduler noise alone moves
// "actual" by 4x.
func buildDriftEngine(t *testing.T) (*sqlengine.Engine, *core.QFusor) {
	t.Helper()
	eng := sqlengine.New("monet", sqlengine.ModeColumnar, ffi.VectorInvoker{})
	nums := data.NewTable("nums", data.Schema{{Name: "n", Kind: data.KindInt}})
	for i := 0; i < 3000; i++ {
		if err := nums.AppendRow(data.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	eng.Catalog.PutTable(nums)
	reg := core.NewRegistry(4)
	if err := reg.Define(`
@scalarudf
def drifta(x: int) -> int:
    s = 0
    for i in range(40):
        s = s + (x + i) % 7
    return s

@scalarudf
def driftb(x: int) -> int:
    t = 0
    for i in range(40):
        t = t + (x * 3 + i) % 11
    return t
`); err != nil {
		t.Fatal(err)
	}
	reg.Attach(eng)
	return eng, core.New(reg)
}

// TestDriftLoopConverges is the acceptance demonstration: running the
// same fused query repeatedly must shrink |predicted/actual − 1| as the
// measured section costs feed back into the cost model, and the learned
// calibration must be visible on the Report and in /metrics.
func TestDriftLoopConverges(t *testing.T) {
	eng, qf := buildDriftEngine(t)
	sql := "SELECT driftb(drifta(n)) FROM nums"

	var errs []float64
	var key string
	for i := 0; i < 12; i++ {
		_, rep, err := qf.QueryCtx(context.Background(), eng, sql)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(rep.SectionCosts) == 0 {
			t.Fatalf("run %d: no SectionCosts on report", i)
		}
		sd := rep.SectionCosts[0]
		if sd.Actual <= 0 {
			t.Fatalf("run %d: section %q has no measured cost", i, sd.Key)
		}
		key = sd.Key
		errs = append(errs, sd.AbsErr())
	}
	if key != "drifta+driftb" {
		t.Fatalf("section key = %q, want drifta+driftb", key)
	}

	// Convergence: the late-run drift must beat the early runs (or be
	// flatly small already — a lucky cold estimate is not a failure).
	// Medians, not single runs: the "actual" side is a wall-clock
	// measurement of a microsecond-scale section, so individual runs
	// jitter. Under the race detector that jitter swamps the signal
	// entirely, so the strict comparison is skipped there (the loop
	// mechanics above, plus the calibration/metrics checks below, still
	// ran).
	if raceEnabled {
		t.Log("race detector on: skipping wall-clock convergence assertion")
	} else {
		head := median3(errs[0], errs[1], errs[2])
		tail := median3(errs[9], errs[10], errs[11])
		if tail >= head && tail > 0.5 {
			t.Fatalf("drift did not converge: early median |p/a-1| = %.3f, late median = %.3f (all: %v)", head, tail, errs)
		}
	}

	// Calibration is learned (shared through CostModel.Drift) ...
	if f := qf.CM.Drift.Factor(key); f == 1 {
		t.Fatalf("calibration factor for %q still 1.0 after 12 runs", key)
	}
	// ... and exported: the labeled gauges land in valid exposition text.
	text := obs.Default.Snapshot().Prometheus()
	samples, err := obs.ParseExposition(text)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if _, ok := samples[`qfusor_drift_calibration_milli{section="drifta+driftb"}`]; !ok {
		t.Fatalf("calibration gauge missing from /metrics; have keys like:\n%s", grepKeys(samples, "drift"))
	}
	if _, ok := samples[`qfusor_drift_abs_err_pct{section="drifta+driftb"}`]; !ok {
		t.Fatal("abs_err gauge missing from /metrics")
	}
	if samples["qfusor_drift_observations"] < 12 {
		t.Fatalf("qfusor_drift_observations = %v, want >= 12", samples["qfusor_drift_observations"])
	}
}

// TestDriftVisibleInAnalysis checks the EXPLAIN ANALYZE surface: the
// drift lines render with predicted, actual and calibration.
func TestDriftVisibleInAnalysis(t *testing.T) {
	eng, qf := buildEngine(t)
	sql := "SELECT id, upname(firstword(name)) FROM people"
	a, err := qf.QueryAnalyze(eng, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Report.SectionCosts) == 0 {
		t.Fatal("analysis has no SectionCosts")
	}
	if a.Report.SectionCosts[0].Actual <= 0 {
		t.Fatal("analysis section has no measured cost")
	}
	out := a.Render()
	if !strings.Contains(out, "Cost-model drift") || !strings.Contains(out, "firstword+upname") ||
		!strings.Contains(out, "calibration") {
		t.Fatalf("Render missing drift section:\n%s", out)
	}
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

func grepKeys(samples map[string]float64, sub string) string {
	var b strings.Builder
	for k := range samples {
		if strings.Contains(k, sub) {
			b.WriteString(k + "\n")
		}
	}
	return b.String()
}
