//go:build !race

package core_test

const raceEnabled = false
