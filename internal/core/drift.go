package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"qfusor/internal/ffi"
	"qfusor/internal/obs"
)

// Cost-model drift tracking: §5.2's stateful wrappers "collect
// execution statistics used to refine the cost model", and the learned
// estimators in PAPERS.md (GRACEFUL) show predicted-vs-actual feedback
// is the highest-leverage signal. DriftCal closes that loop for fused
// sections: every successful fused execution records the measured
// wrapper cost next to the cost model's prediction, and a per-section
// calibration factor converges so repeated queries predict what they
// actually cost. The factor scales the prediction each realized section
// records (realizeSections) — not the DP's selection comparison, which
// would let one noisy run flip fusion decisions and defeat the wrapper
// compile cache (see the note in sectionCost).

// Drift metrics (obs.Default). The counter exists from process start so
// the qfusor.drift family is always present in /metrics; per-section
// calibration gauges appear after the first observation.
var mDriftObs = obs.Default.Counter("qfusor.drift.observations")

// driftAlpha is the EWMA weight of each new observation.
const driftAlpha = 0.5

// driftClamp bounds a single observation's correction: one anomalous
// run (cold cache, page fault storm) may pull the factor by at most
// 16x in either direction.
const driftClamp = 16.0

// DriftCal is the per-section calibration store. Keys are stable
// section identities (see sectionKeyOf) so repeated executions of the
// same query — or different queries fusing the same UDF chain — share
// a calibration.
type DriftCal struct {
	mu    sync.Mutex
	calib map[string]float64
	last  map[string]driftPoint
}

// driftPoint is the most recent predicted/actual pair for a section.
type driftPoint struct {
	Predicted float64
	Actual    float64
}

// NewDriftCal creates an empty calibration store (every factor 1.0).
func NewDriftCal() *DriftCal {
	return &DriftCal{calib: make(map[string]float64), last: make(map[string]driftPoint)}
}

// Factor returns the section's calibration factor (1.0 when unknown).
// Nil-safe.
func (d *DriftCal) Factor(key string) float64 {
	if d == nil {
		return 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.calib[key]; ok {
		return f
	}
	return 1
}

// Observe feeds one predicted/actual pair (nanoseconds) back into the
// calibration: the factor moves by an EWMA step toward the value that
// would have made the prediction exact. Returns the updated factor.
// Non-positive inputs are ignored. Nil-safe.
func (d *DriftCal) Observe(key string, predicted, actual float64) float64 {
	if d == nil {
		return 1
	}
	if predicted <= 0 || actual <= 0 {
		return d.Factor(key)
	}
	ratio := actual / predicted
	if ratio > driftClamp {
		ratio = driftClamp
	}
	if ratio < 1/driftClamp {
		ratio = 1 / driftClamp
	}
	d.mu.Lock()
	f, ok := d.calib[key]
	if !ok {
		f = 1
	}
	// predicted already includes f, so the exact factor would be f·ratio.
	f = (1-driftAlpha)*f + driftAlpha*(f*ratio)
	d.calib[key] = f
	d.last[key] = driftPoint{Predicted: predicted, Actual: actual}
	d.mu.Unlock()

	mDriftObs.Inc()
	// Export: calibration in milli-units (the registry stores int64), and
	// the latest absolute drift |predicted/actual − 1| in percent.
	obs.Default.Gauge(obs.LabeledName("qfusor.drift.calibration_milli", "section", key)).Set(int64(f*1000 + 0.5))
	drift := predicted/actual - 1
	if drift < 0 {
		drift = -drift
	}
	obs.Default.Gauge(obs.LabeledName("qfusor.drift.abs_err_pct", "section", key)).Set(int64(drift*100 + 0.5))
	return f
}

// Snapshot returns every section's calibration factor. Nil-safe.
func (d *DriftCal) Snapshot() map[string]float64 {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]float64, len(d.calib))
	for k, v := range d.calib {
		out[k] = v
	}
	return out
}

// SectionDrift is one fused section's cost-model bookkeeping on a
// query's Report: the calibrated prediction made at discovery time, the
// measured cost after execution, and the calibration factor that was in
// effect. AbsErr is |Predicted/Actual − 1| (the drift-loop convergence
// metric); it is 0 until the section executed.
type SectionDrift struct {
	Wrapper     string  `json:"wrapper"`
	Key         string  `json:"key"`
	Predicted   float64 `json:"predicted_nanos"`
	Actual      float64 `json:"actual_nanos,omitempty"`
	Calibration float64 `json:"calibration"`
}

// AbsErr returns |Predicted/Actual − 1| (0 before execution).
func (sd SectionDrift) AbsErr() float64 {
	if sd.Actual <= 0 || sd.Predicted <= 0 {
		return 0
	}
	e := sd.Predicted/sd.Actual - 1
	if e < 0 {
		return -e
	}
	return e
}

// sectionKeyOf derives a section's stable identity from the UDF names
// it fuses: known at discovery time (before any wrapper exists) and
// identical across repeated queries, which is what lets the calibration
// converge. Relational riders are excluded — the same UDF chain with a
// reordered filter should share its learned factor.
func sectionKeyOf(g *DFG, nodes []int) string {
	var names []string
	for _, id := range nodes {
		nd := g.Nodes[id]
		if nd.Kind.IsUDF() {
			names = append(names, strings.ToLower(nd.Name))
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

// sectionBaselines snapshots each section wrapper's ffi stats just
// before execution, so observeSectionCosts can diff a per-query window
// (the wrapper's Stats are cumulative across queries). Indexed like
// rep.SectionCosts; a missing wrapper leaves a zero snapshot.
func (qf *QFusor) sectionBaselines(rep *Report) []ffi.StatsSnapshot {
	if rep == nil || len(rep.SectionCosts) == 0 {
		return nil
	}
	base := make([]ffi.StatsSnapshot, len(rep.SectionCosts))
	for i, sd := range rep.SectionCosts {
		if u, ok := qf.Reg.UDF(sd.Wrapper); ok {
			base[i] = u.Stats.Snapshot()
		}
	}
	return base
}

// observeSectionCosts closes the drift loop after a successful fused
// execution: the measured cost of each section is its wrapper's wall +
// boundary-conversion time over the query window (morsel workers fold
// their clone stats back at the barrier, so the parent UDF's delta
// covers parallel execution too). Each pair updates the calibration
// store and the per-section /metrics gauges, and lands on the Report
// for Analysis.
func (qf *QFusor) observeSectionCosts(rep *Report, base []ffi.StatsSnapshot) {
	if rep == nil || len(base) != len(rep.SectionCosts) {
		return
	}
	for i := range rep.SectionCosts {
		sd := &rep.SectionCosts[i]
		u, ok := qf.Reg.UDF(sd.Wrapper)
		if !ok {
			continue
		}
		win := u.Stats.Snapshot().Sub(base[i])
		actual := float64(win.WallNanos + win.WrapNanos)
		if actual <= 0 {
			continue
		}
		sd.Actual = actual
		qf.CM.Drift.Observe(sd.Key, sd.Predicted, actual)
	}
}

// renderDrift formats the drift lines for Analysis.Render.
func renderDrift(b *strings.Builder, secs []SectionDrift) {
	for _, sd := range secs {
		fmt.Fprintf(b, "  section %s (wrapper %s): predicted %.0fns", sd.Key, sd.Wrapper, sd.Predicted)
		if sd.Actual > 0 {
			fmt.Fprintf(b, ", actual %.0fns, drift %.1f%%", sd.Actual, sd.AbsErr()*100)
		}
		fmt.Fprintf(b, ", calibration %.3f\n", sd.Calibration)
	}
}
