package core_test

import (
	"strings"
	"testing"

	"qfusor/internal/core"
	"qfusor/internal/sqlengine"
)

// TestReorderedFilterMovesBelowFusedSection: a filter on fields the UDF
// section never touches is reordered engine-side below the fused node
// (F3), and results are unchanged.
func TestReorderedFilterMovesBelowFusedSection(t *testing.T) {
	eng, qf := buildEngine(t)
	// The filter on id is disjoint from the name-UDF chain; the chain
	// plus the post-UDF filter fuse, and `id <= 5` should run in the
	// engine below.
	sql := `
SELECT n FROM (SELECT upname(firstword(name)) AS n, id FROM people) AS x
WHERE id <= 5 AND n != 'ZZZ'`
	rep := assertSameResult(t, eng, qf, sql)
	if rep.Sections == 0 {
		t.Fatal("nothing fused")
	}
	q, _, err := qf.Process(eng, sql)
	if err != nil {
		t.Fatal(err)
	}
	plan := q.Explain()
	// The engine-side filter must sit below the fused node.
	fusedAt := strings.Index(plan, "Fused")
	filterAt := strings.Index(plan, "Filter")
	if fusedAt < 0 {
		t.Fatalf("no fused node:\n%s", plan)
	}
	if filterAt >= 0 && filterAt < fusedAt {
		t.Fatalf("filter not below fused node:\n%s", plan)
	}
}

// TestDistinctOffloadSingleShot: a fused DISTINCT carries cross-row
// state, so the node must refuse partitioning and stay correct under a
// parallel engine.
func TestDistinctOffloadSingleShot(t *testing.T) {
	eng, qf := buildEngine(t)
	eng.Parallelism = 4
	sql := "SELECT DISTINCT upname(firstword(city)) AS c FROM people"
	rep := assertSameResult(t, eng, qf, sql)
	_ = rep
	q, _, err := qf.Process(eng, sql)
	if err != nil {
		t.Fatal(err)
	}
	var fused *sqlengine.Plan
	q.Root.Walk(func(p *sqlengine.Plan) {
		if p.Op == sqlengine.OpFused {
			fused = p
		}
	})
	if fused == nil {
		t.Skip("distinct not fused under current cost model")
	}
	if !fused.NoPartition {
		t.Fatal("fused DISTINCT node is partitionable — duplicate rows possible")
	}
}

// TestSegmentsStopAtJoins: segments never cross join/sort boundaries.
func TestSegmentsStopAtJoins(t *testing.T) {
	eng, _ := buildEngine(t)
	q, err := eng.Plan(`
SELECT a.name FROM people AS a, people AS b
WHERE a.id = b.id AND upname(a.name) != 'X'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range core.FindSegments(q.Root) {
		for _, p := range seg.Chain {
			if p.Op == sqlengine.OpJoin || p.Op == sqlengine.OpSort {
				t.Fatalf("segment contains %s", p.Op)
			}
		}
	}
}

// TestFusedWrapperSourcesAreValidPyLite: every generated wrapper parses
// and compiles in a fresh runtime (the registration mechanism's
// contract).
func TestFusedWrapperSourcesAreValidPyLite(t *testing.T) {
	eng, qf := buildEngine(t)
	queries := []string{
		"SELECT upname(firstword(name)) FROM people",
		"SELECT city, SUM(addten(age)) FROM people WHERE addten(age) > 20 GROUP BY city",
		"SELECT id, explode(upname(name)) AS w FROM people",
		"SELECT DISTINCT upname(city) FROM people",
	}
	reg := core.NewRegistry(0)
	for _, sql := range queries {
		_, rep, err := qf.Process(eng, sql)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range rep.Sources {
			// The wrapper calls UDFs that exist only in the original
			// runtime; define stand-ins so Exec succeeds.
			stubbed := `
def upname(s):
    return s
def firstword(s):
    return s
def addten(x):
    return x
def explode(s):
    yield s
` + src
			if err := reg.Define(stubbed); err != nil {
				t.Fatalf("wrapper does not parse: %v\n%s", err, src)
			}
		}
	}
}

// TestRenderSQLForCTEAndAgg: rewrite path 1 renders CTE queries and
// flags aggregate fusions as display-only.
func TestRenderSQLForCTEAndAgg(t *testing.T) {
	eng, qf := buildEngine(t)
	q, _, err := qf.Process(eng, `
WITH clean(id, n) AS (SELECT id, upname(firstword(name)) FROM people)
SELECT n FROM clean WHERE id > 1`)
	if err != nil {
		t.Fatal(err)
	}
	sql, _ := core.RenderSQL(q)
	if !strings.Contains(sql, "WITH clean") {
		t.Fatalf("CTE missing:\n%s", sql)
	}
	q2, _, err := qf.Process(eng,
		"SELECT city, SUM(addten(age)) FROM people GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	sql2, executable := core.RenderSQL(q2)
	hasFusedAgg := false
	q2.Root.Walk(func(p *sqlengine.Plan) {
		if p.Op == sqlengine.OpFusedAgg {
			hasFusedAgg = true
		}
	})
	if hasFusedAgg && executable {
		t.Fatalf("aggregate fusion should render display-only SQL:\n%s", sql2)
	}
}
