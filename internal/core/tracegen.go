package core

import (
	"fmt"

	"qfusor/internal/data"
	"qfusor/internal/ffi"
	"qfusor/internal/pylite"
	"qfusor/internal/sqlengine"
)

// buildTrace compiles a fused section into a native execution trace
// (ffi.Trace): the final JIT tier, where the loop and all glue are
// native and only the UDF bodies themselves execute in the UDF runtime.
// Returns nil when the section's shape needs the PyLite wrapper
// (FROM-position table UDFs).
func (qf *QFusor) buildTrace(seg *Segment, g *DFG, inSec map[int]bool, lo, hi int, inputs []int) (*ffi.Trace, error) {
	if seg.Chain[lo].Op == sqlengine.OpTableFunc {
		return nil, nil
	}
	below := fieldsBelow(g, lo)
	t := &ffi.Trace{NumIn: len(inputs)}
	regOf := map[string]int{}
	for pi, ci := range inputs {
		if ci < len(below) {
			regOf[below[ci]] = pi
		}
	}
	nextReg := len(inputs)
	newReg := func() int {
		r := nextReg
		nextReg++
		return r
	}
	constReg := func(v data.Value) int {
		r := newReg()
		t.Consts = append(t.Consts, v)
		t.ConstRegs = append(t.ConstRegs, r)
		return r
	}

	// exprReg lowers an expression (with fieldRef placeholders) to a
	// register, emitting ops as needed.
	var exprReg func(e sqlengine.SQLExpr) (int, error)
	evalClosure := func(e sqlengine.SQLExpr) (func([]data.Value) (data.Value, error), error) {
		bound, err := qf.rebindToRegs(e, regOf)
		if err != nil {
			return nil, err
		}
		return func(regs []data.Value) (data.Value, error) {
			return sqlengine.EvalPure(bound, regs)
		}, nil
	}
	exprReg = func(e sqlengine.SQLExpr) (int, error) {
		if f, ok := asFieldRef(e); ok {
			r, ok := regOf[f]
			if !ok {
				return 0, fmt.Errorf("core: trace: field %s unavailable", f)
			}
			return r, nil
		}
		if lit, ok := e.(*sqlengine.Lit); ok {
			return constReg(lit.Value), nil
		}
		eval, err := evalClosure(e)
		if err != nil {
			return 0, err
		}
		r := newReg()
		t.Ops = append(t.Ops, ffi.TraceOp{Kind: ffi.TExpr, Dst: r, Eval: eval})
		return r, nil
	}

	emitValue := func(nd *DFGNode) error {
		switch nd.Kind {
		case KUDFScalar:
			call, ok := nd.Expr.(*sqlengine.FuncExpr)
			if !ok {
				return fmt.Errorf("core: trace: scalar UDF node without call expr")
			}
			argRegs := make([]int, len(call.Args))
			for i, a := range call.Args {
				r, err := exprReg(a)
				if err != nil {
					return err
				}
				argRegs[i] = r
			}
			compileUDF(nd.UDF)
			dst := newReg()
			op := ffi.TraceOp{Kind: ffi.TCall, Dst: dst, Args: argRegs, UDF: nd.UDF}
			if nd.UDF.GoFn == nil {
				if fv, ok := nd.UDF.Fn.P.(*pylite.FuncValue); ok {
					op.Compiled = fv.Compiled()
					op.Prog = fv.Bytecode()
				}
			}
			t.Ops = append(t.Ops, op)
			regOf[nd.Out[0]] = dst
		case KRelExpr:
			r, err := exprReg(nd.Expr)
			if err != nil {
				return err
			}
			regOf[nd.Out[0]] = r
		}
		return nil
	}

	top := seg.Chain[hi]
	isAgg := top.Op == sqlengine.OpAggregate
	for pi := lo; pi <= hi; pi++ {
		p := seg.Chain[pi]
		// Value-producing nodes first (ID order = dependency order).
		for id, nd := range g.Nodes {
			if nd.PlanIdx != pi || !inSec[id] {
				continue
			}
			if nd.Kind == KUDFScalar || nd.Kind == KRelExpr {
				if err := emitValue(nd); err != nil {
					return nil, err
				}
			}
		}
		switch p.Op {
		case sqlengine.OpProject:
			// nothing structural
		case sqlengine.OpFilter:
			var fn *DFGNode
			for id, nd := range g.Nodes {
				if nd.PlanIdx == pi && nd.Kind == KRelFilter && inSec[id] {
					fn = nd
					break
				}
			}
			if fn != nil {
				eval, err := evalClosure(fn.Expr)
				if err != nil {
					return nil, err
				}
				t.Ops = append(t.Ops, ffi.TraceOp{Kind: ffi.TFilter, Eval: eval})
			}
		case sqlengine.OpExpand:
			var nd *DFGNode
			for id, m := range g.Nodes {
				if m.PlanIdx == pi && m.Kind == KUDFTable && inSec[id] {
					nd = m
					break
				}
			}
			if nd == nil {
				return nil, fmt.Errorf("core: trace: expand node missing")
			}
			argRegs := make([]int, len(nd.In))
			for i, f := range nd.In {
				r, ok := regOf[f]
				if !ok {
					return nil, fmt.Errorf("core: trace: expand input %s unavailable", f)
				}
				argRegs[i] = r
			}
			dsts := make([]int, len(nd.Out))
			for i, f := range nd.Out {
				d := newReg()
				dsts[i] = d
				regOf[f] = d
			}
			t.Ops = append(t.Ops, ffi.TraceOp{Kind: ffi.TExpand, Args: argRegs, Dsts: dsts, UDF: nd.UDF})
		case sqlengine.OpDistinct:
			regs := make([]int, 0, len(g.PlanFields[pi]))
			for _, f := range g.PlanFields[pi] {
				r, ok := regOf[f]
				if !ok {
					return nil, fmt.Errorf("core: trace: distinct field %s unavailable", f)
				}
				regs = append(regs, r)
			}
			t.DistinctRegs = regs
		case sqlengine.OpAggregate:
			// Group keys resolve against the aggregate's input (plan
			// pi-1): either wrapper inputs or span-computed registers.
			for _, k := range p.GroupBy {
				if cr, ok := k.(*sqlengine.ColRef); ok && cr.Table != fieldTable {
					f := fieldAt(g, pi-1, cr.Index)
					r, found := regOf[f]
					if !found {
						return nil, fmt.Errorf("core: trace: group key field %s unavailable", f)
					}
					t.KeyRegs = append(t.KeyRegs, r)
					continue
				}
				bound, err := qf.rebindPlanExpr(k, g, pi-1, regOf)
				if err != nil {
					return nil, err
				}
				r := newReg()
				t.Ops = append(t.Ops, ffi.TraceOp{Kind: ffi.TExpr, Dst: r,
					Eval: func(regs []data.Value) (data.Value, error) {
						return sqlengine.EvalPure(bound, regs)
					}})
				t.KeyRegs = append(t.KeyRegs, r)
			}
			for id, nd := range g.Nodes {
				if nd.PlanIdx != pi || !inSec[id] {
					continue
				}
				if nd.Kind != KRelAggNative && nd.Kind != KUDFAggregate {
					continue
				}
				spec := ffi.TraceAgg{ArgReg: -1}
				if nd.Expr != nil {
					r, err := exprReg(nd.Expr)
					if err != nil {
						return nil, err
					}
					spec.ArgReg = r
				}
				if nd.Kind == KUDFAggregate {
					spec.Kind = "udf"
					spec.UDF = nd.UDF
				} else {
					spec.Kind = nd.Name
					spec.Star = nd.Expr == nil && nd.Name == "count"
				}
				t.Aggs = append(t.Aggs, spec)
			}
		default:
			return nil, fmt.Errorf("core: trace: unsupported operator %s", p.Op)
		}
	}

	if !isAgg {
		for _, f := range g.PlanFields[hi] {
			r, ok := regOf[f]
			if !ok {
				return nil, fmt.Errorf("core: trace: output field %s unavailable", f)
			}
			t.OutRegs = append(t.OutRegs, r)
		}
	}
	t.NumRegs = nextReg
	return t, nil
}

// rebindPlanExpr rewrites a plan-bound expression (column indexes into
// chain[srcIdx]'s schema) into register-indexed form.
func (qf *QFusor) rebindPlanExpr(e sqlengine.SQLExpr, g *DFG, srcIdx int, regOf map[string]int) (sqlengine.SQLExpr, error) {
	var err error
	out := cloneViaWalk(e, func(x sqlengine.SQLExpr) sqlengine.SQLExpr {
		cr, ok := x.(*sqlengine.ColRef)
		if !ok || cr.Table == fieldTable {
			return x
		}
		f := fieldAt(g, srcIdx, cr.Index)
		r, found := regOf[f]
		if !found {
			err = fmt.Errorf("core: trace: field %s unavailable", f)
			return x
		}
		cp := *cr
		cp.Index = r
		return &cp
	})
	return out, err
}

// rebindToRegs substitutes field placeholders with register-indexed
// column refs for EvalPure.
func (qf *QFusor) rebindToRegs(e sqlengine.SQLExpr, regOf map[string]int) (sqlengine.SQLExpr, error) {
	var err error
	out := cloneViaWalk(e, func(x sqlengine.SQLExpr) sqlengine.SQLExpr {
		if f, ok := asFieldRef(x); ok {
			r, found := regOf[f]
			if !found {
				err = fmt.Errorf("core: trace: field %s unavailable", f)
				return x
			}
			return &sqlengine.ColRef{Name: f, Index: r}
		}
		return x
	})
	return out, err
}

// compileUDF eagerly compiles a UDF body so trace calls hit the
// compiled tier directly.
func compileUDF(u *ffi.UDF) {
	if u == nil || u.GoFn != nil {
		return
	}
	if fv, ok := u.Fn.P.(*pylite.FuncValue); ok && fv.Compiled() == nil && !fv.Uncompilable() {
		if c, err := pylite.Compile(fv); err == nil {
			fv.SetCompiled(c)
		} else {
			fv.SetCompiled(nil)
		}
	}
}
