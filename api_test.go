package qfusor_test

import (
	"strings"
	"sync"
	"testing"

	"qfusor"
)

func openTestDB(t *testing.T, profile qfusor.Profile, opts ...qfusor.Option) *qfusor.DB {
	t.Helper()
	db, err := qfusor.Open(profile, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := db.Define(`
@scalarudf
def slug(s: str) -> str:
    return s.strip().lower().replace(" ", "-")

@expandudf
def pieces(s: str) -> str:
    for p in s.split("-"):
        yield p

@aggregateudf
class longest:
    def init(self):
        self.best = ""
    def step(self, s):
        if s is not None and len(s) > len(self.best):
            self.best = s
    def final(self):
        return self.best
`); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(qfusor.UDFSpec{Name: "longest", Kind: qfusor.Aggregate,
		In:  []qfusor.Kind{qfusor.KindString},
		Out: []qfusor.Kind{qfusor.KindString}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE TABLE notes (id int, title string)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO notes VALUES
		(1, '  Hello World  '), (2, 'Go Databases'), (3, 'Query Fusion Rocks')`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	res, err := db.Query("SELECT id, slug(title) AS s FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.Cols[1].Get(0).String() != "hello-world" {
		t.Fatalf("got %s", qfusor.Format(res, 5))
	}
	// Native and fused agree.
	nat, err := db.QueryNative("SELECT slug(title) AS s FROM notes ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	fus, err := db.Query("SELECT slug(title) AS s FROM notes ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if nat.Cols[0].Get(i).String() != fus.Cols[0].Get(i).String() {
			t.Fatalf("row %d: %v vs %v", i, nat.Cols[0].Get(i), fus.Cols[0].Get(i))
		}
	}
}

func TestPublicAPIExpandAggregate(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	res, err := db.Query(
		"SELECT longest(p) AS l FROM (SELECT pieces(slug(title)) AS p FROM notes) AS x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Get(0).String() != "databases" {
		t.Fatalf("longest piece = %v", res.Cols[0].Get(0))
	}
	if db.LastReport().Sections == 0 {
		t.Fatal("no fusion happened")
	}
}

func TestPublicAPIExplainShowsWrapper(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	plan, err := db.Explain("SELECT slug(title) AS s FROM notes WHERE slug(title) != 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Fused") && !strings.Contains(plan, "__qf_fused") {
		t.Fatalf("explain lacks fusion markers:\n%s", plan)
	}
}

func TestPublicAPIDMLWithUDF(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	if err := db.Exec("UPDATE notes SET title = slug(title) WHERE id <= 2"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT title FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Get(0).String() != "hello-world" || res.Cols[0].Get(2).String() != "Query Fusion Rocks" {
		t.Fatalf("update applied wrong rows: %s", qfusor.Format(res, 5))
	}
	if err := db.Exec("DELETE FROM notes WHERE length(slug(title)) > 12"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("SELECT COUNT(*) FROM notes")
	if v, _ := res.Cols[0].Get(0).AsInt(); v != 2 {
		t.Fatalf("rows after delete = %d", v)
	}
}

func TestPublicAPIOptions(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	opts := qfusor.DefaultOptions()
	opts.Fusion = false
	db.SetOptions(opts)
	if _, err := db.Query("SELECT slug(title) FROM notes"); err != nil {
		t.Fatal(err)
	}
	if db.LastReport().Sections != 0 {
		t.Fatal("fusion ran while disabled")
	}
}

func TestPublicAPIOtherProfiles(t *testing.T) {
	for _, p := range []qfusor.Profile{qfusor.SQLite, qfusor.PostgreSQL, qfusor.DuckDB} {
		t.Run(string(p), func(t *testing.T) {
			db := openTestDB(t, p)
			res, err := db.Query("SELECT slug(title) FROM notes ORDER BY 1 LIMIT 1")
			if err != nil {
				t.Fatal(err)
			}
			if res.Cols[0].Get(0).String() != "go-databases" {
				t.Fatalf("got %v", res.Cols[0].Get(0))
			}
		})
	}
}

func TestTablesAndUDFListing(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	found := false
	for _, n := range db.Tables() {
		if n == "notes" {
			found = true
		}
	}
	if !found {
		t.Fatal("notes table missing from listing")
	}
	udfs := strings.Join(db.UDFList(), "\n")
	if !strings.Contains(udfs, "slug(string) -> string") {
		t.Fatalf("udf listing:\n%s", udfs)
	}
}

// TestRewriteSQLPath1 exercises the paper's rewrite path 1: the fused
// query rendered as SQL, re-submitted to the engine, produces the same
// result as direct plan execution.
func TestRewriteSQLPath1(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	sql := "SELECT slug(title) AS s FROM notes WHERE slug(title) != 'zzz'"
	rewritten, executable, err := db.RewriteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rewritten, "__qf_fused") {
		t.Fatalf("rewritten SQL lacks the fused wrapper:\n%s", rewritten)
	}
	if !executable {
		t.Fatalf("single-chain rewrite should be executable:\n%s", rewritten)
	}
	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryNative(rewritten)
	if err != nil {
		t.Fatalf("re-submission failed: %v\n%s", err, rewritten)
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("rows %d vs %d\n%s", want.NumRows(), got.NumRows(), rewritten)
	}
	for i := 0; i < want.NumRows(); i++ {
		if want.Cols[0].Get(i).String() != got.Cols[0].Get(i).String() {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestExecFusedDML: UPDATE with a UDF pipeline goes through fusion
// (§4.2.5) and matches plain execution.
func TestExecFusedDML(t *testing.T) {
	plain := openTestDB(t, qfusor.MonetDB)
	fused := openTestDB(t, qfusor.MonetDB)
	stmt := "UPDATE notes SET title = pieces_first(slug(title)) WHERE slug(title) != 'go-databases'"
	for _, db := range []*qfusor.DB{plain, fused} {
		if err := db.Define(`
@scalarudf
def pieces_first(s: str) -> str:
    return s.split("-")[0]
`); err != nil {
			t.Fatal(err)
		}
	}
	if err := plain.Exec(stmt); err != nil {
		t.Fatal(err)
	}
	if err := fused.ExecFused(stmt); err != nil {
		t.Fatal(err)
	}
	if fused.LastReport().Sections == 0 {
		t.Fatal("DML fusion produced no sections")
	}
	a, _ := plain.Query("SELECT title FROM notes ORDER BY id")
	b, _ := fused.Query("SELECT title FROM notes ORDER BY id")
	for i := 0; i < a.NumRows(); i++ {
		if a.Cols[0].Get(i).String() != b.Cols[0].Get(i).String() {
			t.Fatalf("row %d: %v vs %v", i, a.Cols[0].Get(i), b.Cols[0].Get(i))
		}
	}
}

// TestQueryAnalyze: EXPLAIN ANALYZE on a fusing query must return a
// span tree covering all five optimizer phases plus execution, with
// per-operator row counts and per-UDF wrapper-vs-body time.
func TestQueryAnalyze(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	a, err := db.QueryAnalyze(
		"SELECT longest(p) AS l FROM (SELECT pieces(slug(title)) AS p FROM notes) AS x")
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Cols[0].Get(0).String() != "databases" {
		t.Fatalf("analyzed result wrong: %s", qfusor.Format(a.Result, 5))
	}
	if a.Report.Sections == 0 {
		t.Fatal("query did not fuse — test precondition broken")
	}
	for _, phase := range []string{
		"phase:plan_probe", "phase:dfg_build", "phase:discover",
		"phase:codegen", "phase:rewrite", "phase:execute",
	} {
		if a.Root.Find(phase) == nil {
			t.Errorf("span tree missing %s:\n%s", phase, a.Root.Render())
		}
	}
	// The codegen phase carries one child span per generated wrapper.
	cg := a.Root.Find("phase:codegen")
	if cg.Find("wrapper") == nil {
		t.Errorf("no wrapper span under phase:codegen:\n%s", a.Root.Render())
	}
	// Every executed operator span reports its output cardinality, and
	// the fused operator is marked with its section membership.
	ex := a.Root.Find("phase:execute")
	if ex == nil {
		t.Fatal("no execute phase")
	}
	ops, fusedOps := 0, 0
	ex.Walk(func(sp *qfusor.Span, depth int) {
		if !strings.HasPrefix(sp.Name, "op:") {
			return
		}
		ops++
		if _, ok := sp.Counter("rows_out"); !ok {
			t.Errorf("operator %s has no rows_out counter", sp.Name)
		}
		if sec, _ := sp.Attr("section"); sec == "fused" {
			fusedOps++
			if rows, _ := sp.Counter("rows_out"); rows == 0 {
				t.Errorf("fused operator %s reports zero rows_out", sp.Name)
			}
		}
	})
	if ops == 0 {
		t.Fatalf("no operator spans under phase:execute:\n%s", a.Root.Render())
	}
	if fusedOps == 0 {
		t.Fatalf("no operator marked section=fused:\n%s", a.Root.Render())
	}
	// UDF usage distinguishes wrapper (boundary) time from body time.
	if len(a.UDFs) == 0 {
		t.Fatal("analysis reports no UDF usage")
	}
	for _, u := range a.UDFs {
		if u.Wall != u.Wrapper+u.Body {
			t.Errorf("%s: wall %v != wrapper %v + body %v", u.Name, u.Wall, u.Wrapper, u.Body)
		}
		if u.RowsIn == 0 || u.Calls == 0 {
			t.Errorf("%s: empty usage %+v", u.Name, u)
		}
	}
	// The metrics delta covers this query's engine activity.
	if a.Metrics.Counters["engine.queries"] == 0 {
		t.Errorf("metrics delta missing engine.queries: %+v", a.Metrics.Counters)
	}
	// Render includes the tree and the UDF table without panicking.
	out := a.Render()
	if !strings.Contains(out, "phase:codegen") || !strings.Contains(out, "wrapper") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

// TestQueryAnalyzeCacheHit: re-analyzing the same query must report a
// wrapper cache hit on the second run. The plan-decision cache is off
// here so the second run re-enters codegen and exercises the wrapper
// compile cache (with it on, the whole front-end is skipped — covered
// by the plancache tests).
func TestQueryAnalyzeCacheHit(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB, qfusor.WithPlanCache(false))
	sql := "SELECT longest(p) AS l FROM (SELECT pieces(slug(title)) AS p FROM notes) AS x"
	if _, err := db.QueryAnalyze(sql); err != nil {
		t.Fatal(err)
	}
	a, err := db.QueryAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Root.Find("wrapper")
	if w == nil {
		t.Fatalf("no wrapper span:\n%s", a.Root.Render())
	}
	if c, _ := w.Attr("cache"); c != "hit" {
		t.Errorf("second run wrapper cache = %q, want hit", c)
	}
	if a.Report.CacheHits == 0 {
		t.Error("second run reported no cache hits")
	}
}

// TestConcurrentQueriesRaceFree hammers one DB from many goroutines
// mixing Query, QueryAnalyze and LastReport — meaningful under -race.
func TestConcurrentQueriesRaceFree(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				switch (i + j) % 3 {
				case 0:
					if _, err := db.Query("SELECT slug(title) FROM notes"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					a, err := db.QueryAnalyze("SELECT id, slug(title) FROM notes ORDER BY id")
					if err != nil {
						t.Error(err)
						return
					}
					if a.Root.Find("phase:execute") == nil {
						t.Error("analysis missing execute phase")
						return
					}
				default:
					_ = db.LastReport()
					_ = qfusor.Metrics()
				}
			}
		}(i)
	}
	wg.Wait()
}
