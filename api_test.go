package qfusor_test

import (
	"strings"
	"testing"

	"qfusor"
)

func openTestDB(t *testing.T, profile qfusor.Profile) *qfusor.DB {
	t.Helper()
	db, err := qfusor.Open(profile)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := db.Define(`
@scalarudf
def slug(s: str) -> str:
    return s.strip().lower().replace(" ", "-")

@expandudf
def pieces(s: str) -> str:
    for p in s.split("-"):
        yield p

@aggregateudf
class longest:
    def init(self):
        self.best = ""
    def step(self, s):
        if s is not None and len(s) > len(self.best):
            self.best = s
    def final(self):
        return self.best
`); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(qfusor.UDFSpec{Name: "longest", Kind: qfusor.Aggregate,
		In:  []qfusor.Kind{qfusor.KindString},
		Out: []qfusor.Kind{qfusor.KindString}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE TABLE notes (id int, title string)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO notes VALUES
		(1, '  Hello World  '), (2, 'Go Databases'), (3, 'Query Fusion Rocks')`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	res, err := db.Query("SELECT id, slug(title) AS s FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.Cols[1].Get(0).String() != "hello-world" {
		t.Fatalf("got %s", qfusor.Format(res, 5))
	}
	// Native and fused agree.
	nat, err := db.QueryNative("SELECT slug(title) AS s FROM notes ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	fus, err := db.Query("SELECT slug(title) AS s FROM notes ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if nat.Cols[0].Get(i).String() != fus.Cols[0].Get(i).String() {
			t.Fatalf("row %d: %v vs %v", i, nat.Cols[0].Get(i), fus.Cols[0].Get(i))
		}
	}
}

func TestPublicAPIExpandAggregate(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	res, err := db.Query(
		"SELECT longest(p) AS l FROM (SELECT pieces(slug(title)) AS p FROM notes) AS x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Get(0).String() != "databases" {
		t.Fatalf("longest piece = %v", res.Cols[0].Get(0))
	}
	if db.LastReport().Sections == 0 {
		t.Fatal("no fusion happened")
	}
}

func TestPublicAPIExplainShowsWrapper(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	plan, err := db.Explain("SELECT slug(title) AS s FROM notes WHERE slug(title) != 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Fused") && !strings.Contains(plan, "__qf_fused") {
		t.Fatalf("explain lacks fusion markers:\n%s", plan)
	}
}

func TestPublicAPIDMLWithUDF(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	if err := db.Exec("UPDATE notes SET title = slug(title) WHERE id <= 2"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT title FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Get(0).String() != "hello-world" || res.Cols[0].Get(2).String() != "Query Fusion Rocks" {
		t.Fatalf("update applied wrong rows: %s", qfusor.Format(res, 5))
	}
	if err := db.Exec("DELETE FROM notes WHERE length(slug(title)) > 12"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("SELECT COUNT(*) FROM notes")
	if v, _ := res.Cols[0].Get(0).AsInt(); v != 2 {
		t.Fatalf("rows after delete = %d", v)
	}
}

func TestPublicAPIOptions(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	opts := qfusor.DefaultOptions()
	opts.Fusion = false
	db.SetOptions(opts)
	if _, err := db.Query("SELECT slug(title) FROM notes"); err != nil {
		t.Fatal(err)
	}
	if db.LastReport().Sections != 0 {
		t.Fatal("fusion ran while disabled")
	}
}

func TestPublicAPIOtherProfiles(t *testing.T) {
	for _, p := range []qfusor.Profile{qfusor.SQLite, qfusor.PostgreSQL, qfusor.DuckDB} {
		t.Run(string(p), func(t *testing.T) {
			db := openTestDB(t, p)
			res, err := db.Query("SELECT slug(title) FROM notes ORDER BY 1 LIMIT 1")
			if err != nil {
				t.Fatal(err)
			}
			if res.Cols[0].Get(0).String() != "go-databases" {
				t.Fatalf("got %v", res.Cols[0].Get(0))
			}
		})
	}
}

func TestTablesAndUDFListing(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	found := false
	for _, n := range db.Tables() {
		if n == "notes" {
			found = true
		}
	}
	if !found {
		t.Fatal("notes table missing from listing")
	}
	udfs := strings.Join(db.UDFList(), "\n")
	if !strings.Contains(udfs, "slug(string) -> string") {
		t.Fatalf("udf listing:\n%s", udfs)
	}
}

// TestRewriteSQLPath1 exercises the paper's rewrite path 1: the fused
// query rendered as SQL, re-submitted to the engine, produces the same
// result as direct plan execution.
func TestRewriteSQLPath1(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	sql := "SELECT slug(title) AS s FROM notes WHERE slug(title) != 'zzz'"
	rewritten, executable, err := db.RewriteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rewritten, "__qf_fused") {
		t.Fatalf("rewritten SQL lacks the fused wrapper:\n%s", rewritten)
	}
	if !executable {
		t.Fatalf("single-chain rewrite should be executable:\n%s", rewritten)
	}
	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryNative(rewritten)
	if err != nil {
		t.Fatalf("re-submission failed: %v\n%s", err, rewritten)
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("rows %d vs %d\n%s", want.NumRows(), got.NumRows(), rewritten)
	}
	for i := 0; i < want.NumRows(); i++ {
		if want.Cols[0].Get(i).String() != got.Cols[0].Get(i).String() {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestExecFusedDML: UPDATE with a UDF pipeline goes through fusion
// (§4.2.5) and matches plain execution.
func TestExecFusedDML(t *testing.T) {
	plain := openTestDB(t, qfusor.MonetDB)
	fused := openTestDB(t, qfusor.MonetDB)
	stmt := "UPDATE notes SET title = pieces_first(slug(title)) WHERE slug(title) != 'go-databases'"
	for _, db := range []*qfusor.DB{plain, fused} {
		if err := db.Define(`
@scalarudf
def pieces_first(s: str) -> str:
    return s.split("-")[0]
`); err != nil {
			t.Fatal(err)
		}
	}
	if err := plain.Exec(stmt); err != nil {
		t.Fatal(err)
	}
	if err := fused.ExecFused(stmt); err != nil {
		t.Fatal(err)
	}
	if fused.LastReport().Sections == 0 {
		t.Fatal("DML fusion produced no sections")
	}
	a, _ := plain.Query("SELECT title FROM notes ORDER BY id")
	b, _ := fused.Query("SELECT title FROM notes ORDER BY id")
	for i := 0; i < a.NumRows(); i++ {
		if a.Cols[0].Get(i).String() != b.Cols[0].Get(i).String() {
			t.Fatalf("row %d: %v vs %v", i, a.Cols[0].Get(i), b.Cols[0].Get(i))
		}
	}
}
