// Package qfusor is the public API of the QFusor reproduction: a
// pluggable UDF-query optimizer (EDBT 2026) over a self-contained SQL
// engine substrate with a Python-subset UDF runtime.
//
// A DB bundles an engine profile (MonetDB-, PostgreSQL-, SQLite-,
// DuckDB-, PySpark- or dbX-style execution), a UDF registry backed by
// the PyLite runtime with a tracing JIT, and a QFusor optimizer plugged
// into the engine. Queries issued through Query go through the full
// QFusor pipeline — plan probing, data-flow-graph construction,
// fusible-section discovery, fused-wrapper JIT code generation and plan
// rewrite; QueryNative bypasses it for comparison.
//
//	db, _ := qfusor.Open(qfusor.MonetDB)
//	defer db.Close()
//	db.Define(`
//	@scalarudf
//	def upname(s: str) -> str:
//	    return s.upper()
//	`)
//	db.Exec("CREATE TABLE t (name string)")
//	db.Exec("INSERT INTO t VALUES ('ada'), ('grace')")
//	rows, _ := db.Query("SELECT upname(name) FROM t")
package qfusor

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"qfusor/internal/core"
	"qfusor/internal/data"
	"qfusor/internal/engines"
	"qfusor/internal/ffi"
	"qfusor/internal/obs"
	"qfusor/internal/obshttp"
	"qfusor/internal/pylite"
	"qfusor/internal/resilience"
	"qfusor/internal/server"
	"qfusor/internal/workload"
)

// Profile selects the engine configuration a DB runs on.
type Profile = engines.Profile

// The six engine profiles of the paper's evaluation.
const (
	MonetDB    = engines.Monet
	PostgreSQL = engines.Postgres
	SQLite     = engines.SQLite
	DuckDB     = engines.Duck
	PySpark    = engines.Spark
	DBX        = engines.DBX
)

// Re-exported data types for building tables programmatically.
type (
	// Table is a named columnar relation.
	Table = data.Table
	// Schema describes a table's columns.
	Schema = data.Schema
	// Field is one schema column.
	Field = data.Field
	// Value is a boxed dynamic value.
	Value = data.Value
	// Kind enumerates value types.
	Kind = data.Kind
)

// Value constructors and kinds.
var (
	Null       = data.Null
	Int        = data.Int
	Float      = data.Float
	Str        = data.Str
	Bool       = data.Bool
	NewList    = data.NewList
	NewTable   = data.NewTable
	KindInt    = data.KindInt
	KindFloat  = data.KindFloat
	KindString = data.KindString
	KindBool   = data.KindBool
	KindList   = data.KindList
	KindDict   = data.KindDict
)

// UDFKind classifies UDFs.
type UDFKind = ffi.UDFKind

// UDF kinds per the paper's design specifications (§4.2).
const (
	Scalar    = ffi.Scalar
	Aggregate = ffi.Aggregate
	TableUDF  = ffi.Table
	Expand    = ffi.Expand
)

// UDFSpec registers a UDF with explicit metadata (when decorators and
// annotations are not enough).
type UDFSpec = core.UDFSpec

// Options are the QFusor technique switches (ablations flip these).
type Options = core.Options

// Report carries per-query optimizer measurements.
type Report = core.Report

// Analysis is the per-query EXPLAIN ANALYZE handle returned by
// QueryAnalyze: the executed result plus the annotated span tree,
// per-UDF wrapper-vs-body time, and the engine-wide metrics delta.
type Analysis = core.Analysis

// UDFUsage is one UDF's contribution to an analyzed query.
type UDFUsage = core.UDFUsage

// Span is one timed region of a query's lifecycle (Analysis.Root is the
// tree of them).
type Span = obs.Span

// SpanSnapshot is an immutable copy of a span tree, as stored in
// flight-recorder QueryRecords.
type SpanSnapshot = obs.SpanSnapshot

// MetricsSnapshot is a point-in-time copy (or diff) of the engine-wide
// metrics registry.
type MetricsSnapshot = obs.Snapshot

// Metrics returns a snapshot of the process-wide metrics registry:
// counters, gauges and half-decade latency histograms from every layer
// (optimizer, executors, FFI boundary, UDF runtime).
func Metrics() MetricsSnapshot { return obs.Default.Snapshot() }

// Option configures Open.
type Option func(*engines.Config)

// WithJIT toggles the UDF runtime's tracing JIT (default on).
func WithJIT(on bool) Option {
	return func(c *engines.Config) { c.JIT = on }
}

// WithParallelism sets the engine's worker count: 0 = auto (one worker
// per core), 1 = legacy serial execution.
func WithParallelism(n int) Option {
	return func(c *engines.Config) { c.Parallelism = n }
}

// WithUDFTimeout bounds each out-of-process UDF round trip (profiles
// with a process transport: PostgreSQL, PySpark). A call that exceeds
// the deadline fails with a timeout error; idempotent scalar batches
// are retried on a respawned worker, anything else degrades to the
// native plan.
func WithUDFTimeout(d time.Duration) Option {
	return func(c *engines.Config) { c.UDFCallTimeout = d }
}

// WithStepBudget caps the number of PyLite statements a context-bound
// query (QueryContext and friends) may execute before it is
// interrupted — the runaway-UDF guard. 0 = unlimited.
func WithStepBudget(n int64) Option {
	return func(c *engines.Config) { c.UDFStepBudget = n }
}

// WithPlanCache toggles the plan-decision cache (default on): repeated
// queries skip plan probing, DFG construction, section discovery and
// the rewrite, going straight to execution. Entries are invalidated by
// catalog changes (DDL, DML, UDF re-registration) and by circuit-
// breaker activity on the wrappers they call.
func WithPlanCache(on bool) Option {
	return func(c *engines.Config) {
		if on {
			if c.PlanCacheSize < 0 {
				c.PlanCacheSize = 0
			}
		} else {
			c.PlanCacheSize = -1
		}
	}
}

// WithPlanCacheSize caps the plan-decision cache at n entries (n <= 0
// keeps the default capacity, 256).
func WithPlanCacheSize(n int) Option {
	return func(c *engines.Config) {
		if n > 0 {
			c.PlanCacheSize = n
		}
	}
}

// WithMorselSize overrides the executor's morsel row count (n <= 0
// keeps the engine default, 2048; chunked profiles keep their vector
// size). Smaller morsels lower cancellation latency and scheduling
// granularity, larger ones amortize per-morsel overhead.
func WithMorselSize(n int) Option {
	return func(c *engines.Config) {
		if n > 0 {
			c.MorselSize = n
		}
	}
}

// WithTier pins the execution tier of fused sections: "vm" forces the
// vectorized bytecode VM wherever a section is eligible, "closure"
// forces the closure-compiled trace loop, "inline" forces relational
// inlining of every inlinable UDF call site (opaque UDFs still run the
// fusion ladder), and "auto" (the default) lets the cost model decide.
// Ineligible sections always run the closure tier.
func WithTier(tier string) Option {
	return func(c *engines.Config) { c.Tier = tier }
}

// PlanCacheStats summarizes the plan-decision cache: live size,
// capacity, and cumulative hit/miss/eviction/invalidation counters.
type PlanCacheStats = core.PlanCacheStats

// QueryError is the typed failure every resilient query path returns:
// Stage says where the ladder stopped ("plan", "fused", "native",
// "fallback" or "cancelled") and the cause chain is reachable with
// errors.Is / errors.As.
type QueryError = resilience.QueryError

// QueryRecord is one flight-recorder entry: what a finished query was,
// which path it took, how long it ran, and whether it degraded.
type QueryRecord = obs.QueryRecord

// LedgerSnapshot is one query's resource-accounting ledger: rows,
// morsels, FFI traffic, UDF interpreter steps, allocation deltas per
// phase, and per-operator / per-UDF breakdowns. Carried on
// QueryRecord.Resources and Analysis.Resources.
type LedgerSnapshot = obs.LedgerSnapshot

// RegressionEvent is one detected regression: a query whose latency,
// row count, allocations or FFI call count exceeded its rolling
// baseline by the configured thresholds.
type RegressionEvent = obs.RegressionEvent

// RegressionConfig tunes the baseline-aware regression detector.
type RegressionConfig = obs.RegressionConfig

// UDFProfile is a window of the UDF sampling profiler: per-source-line
// sample counts, hottest first (see StartUDFProfiler).
type UDFProfile = pylite.ProfileSnapshot

// DB is an opened engine instance with QFusor attached.
type DB struct {
	in  *engines.Instance
	dbg *obshttp.Server
	srv *server.Server
}

// Open launches an engine with the given profile.
func Open(profile Profile, opts ...Option) (*DB, error) {
	cfg := engines.Config{Profile: profile, JIT: true}
	for _, o := range opts {
		o(&cfg)
	}
	return &DB{in: engines.Launch(cfg)}, nil
}

// Close releases the engine's resources, draining and stopping the
// query server (if Serve started one) and the diagnostics server (if
// ServeDebug started one) first, so no handler goroutine outlives the
// handle.
func (db *DB) Close() {
	if db.srv != nil {
		db.srv.Close()
		db.srv = nil
	}
	if db.dbg != nil {
		db.dbg.Close()
		db.dbg = nil
	}
	db.in.Close()
}

// ServerConfig tunes DB.Serve: admission-control limits and the
// shutdown drain grace. The zero value serves with the defaults (8
// concurrent queries, per-tenant = global, queue 2x the concurrency,
// 1s queue wait, 5s drain grace).
type ServerConfig struct {
	// MaxConcurrent caps queries executing at once across all tenants.
	MaxConcurrent int
	// TenantConcurrent caps one tenant's concurrent queries (0 = the
	// global cap).
	TenantConcurrent int
	// QueueDepth bounds the admission wait queue; a query arriving with
	// the queue full is rejected immediately (503 queue_full).
	QueueDepth int
	// QueueTimeout bounds how long an admitted-but-waiting query queues
	// before rejection (503 queue_timeout).
	QueueTimeout time.Duration
	// ShedCostNanos sheds queries whose estimated cost (an EWMA of
	// observed wall time for that statement) exceeds this bound while
	// others wait — cheap queries keep flowing under overload (503
	// shed_cost). 0 disables cost shedding.
	ShedCostNanos float64
	// DrainGrace bounds how long Close waits for in-flight queries
	// before cancelling them.
	DrainGrace time.Duration
	// DefaultTimeout bounds queries from sessions with no timeout of
	// their own (0 = unbounded).
	DefaultTimeout time.Duration
	// SessionLimit caps concurrent sessions (default 256).
	SessionLimit int
}

// AdmissionError is the typed rejection the query server returns when
// a query is refused at the door: Reason is one of the Admission*
// reason constants, Code the HTTP status served (429 for throttled
// tenants, 503 for overload and drain).
type AdmissionError = resilience.AdmissionError

// Admission rejection reasons (AdmissionError.Reason).
const (
	AdmissionDraining        = resilience.ReasonDraining
	AdmissionQueueFull       = resilience.ReasonQueueFull
	AdmissionQueueTimeout    = resilience.ReasonQueueTimeout
	AdmissionShedCost        = resilience.ReasonShedCost
	AdmissionTenantThrottled = resilience.ReasonTenantThrottled
)

// Serve starts the multi-session HTTP/JSON query server on addr (":0"
// picks a free port) and returns the bound address. The server layers
// concurrent sessions over this DB's engine:
//
//	POST   /v1/session      open a session (tenant, timeout_ms, tier,
//	                        parallelism, morsel) -> {"session": id}
//	DELETE /v1/session/{id} close it
//	POST   /v1/prepare      store a named statement on a session
//	POST   /v1/query        run sql (or a prepared stmt); mode
//	                        fused|native|analyze
//	POST   /v1/exec         run DDL/DML
//	POST   /v1/define       execute UDF module source
//	GET    /debug/sessions  live sessions + admission-controller census
//
// plus the full diagnostics plane (/metrics, /debug/queries, ...).
// Every query passes the admission controller; rejections carry the
// AdmissionError reason in the JSON body. DB.Close (or closing the
// returned server via another Serve call being refused) drains
// gracefully.
func (db *DB) Serve(addr string, cfg ServerConfig) (string, error) {
	if db.srv != nil {
		return "", fmt.Errorf("qfusor: query server already running on %s", db.srv.Addr())
	}
	db.srv = server.New(db.in, server.Config{
		Admission: resilience.AdmissionConfig{
			MaxConcurrent:    cfg.MaxConcurrent,
			TenantConcurrent: cfg.TenantConcurrent,
			QueueDepth:       cfg.QueueDepth,
			QueueTimeout:     cfg.QueueTimeout,
			ShedCostNanos:    cfg.ShedCostNanos,
		},
		DrainGrace:     cfg.DrainGrace,
		DefaultTimeout: cfg.DefaultTimeout,
		SessionLimit:   cfg.SessionLimit,
	})
	a, err := db.srv.Start(addr)
	if err != nil {
		db.srv = nil
	}
	return a, err
}

// ServeDebug starts the embedded diagnostics HTTP server on addr (e.g.
// "localhost:6060"; ":0" picks a free port) and returns the bound
// address. It is read-only and opt-in, serving:
//
//	/metrics          Prometheus text exposition of the engine registry
//	/debug/queries    recent queries from the flight recorder (JSON;
//	                  ?n=K limits, ?slow=1 filters to the slow-query log)
//	/debug/trace/<id> Chrome trace_event JSON for one recorded query
//	                  (load in chrome://tracing or Perfetto)
//	/debug/profile    UDF sampling-profiler hot lines (text)
//	/debug/plancache  plan-decision cache snapshot (JSON)
//	/debug/resources  per-query resource ledgers for recent queries (JSON)
//	/debug/regressions regression baselines + recent regression events (JSON)
//
// While the server runs, every query records a span trace into the
// flight recorder (trace-all); Close (or DB.Close) turns that off.
func (db *DB) ServeDebug(addr string) (string, error) {
	if db.dbg == nil {
		db.dbg = &obshttp.Server{
			ProfileText: func() string {
				p := pylite.ActiveProfiler()
				if p == nil {
					return ""
				}
				return p.ReportText()
			},
			PlanCache: func() any { return db.in.QF.PlanCache.Snapshot() },
		}
	}
	return db.dbg.Start(addr)
}

// RecentQueries returns the last n completed queries (most recent
// first) from the process flight recorder.
func (db *DB) RecentQueries(n int) []*QueryRecord { return obs.DefaultFlight.Recent(n) }

// SlowQueries returns the last n queries that exceeded the slow-query
// threshold (most recent first).
func (db *DB) SlowQueries(n int) []*QueryRecord { return obs.DefaultFlight.Slow(n) }

// SetSlowQueryThreshold sets the latency above which a query lands in
// the slow-query log (default 100ms).
func (db *DB) SetSlowQueryThreshold(d time.Duration) { obs.DefaultFlight.SetSlowThreshold(d) }

// SetResourceAccounting toggles per-query resource ledgers process-wide
// (default on). With accounting off, queries skip ledger creation
// entirely: QueryRecord.Resources and Analysis.Resources come back nil
// and the alloc/FFI regression dimensions see no data.
func SetResourceAccounting(on bool) { obs.SetAccounting(on) }

// SetQueryLogWriter directs the structured query log at w: one JSON
// line per completed query (timestamp, correlation id, SQL, path,
// latency, resource ledger, regression flags). nil turns the log off.
// The writer is shared process-wide and writes are serialized.
func SetQueryLogWriter(w io.Writer) { obs.DefaultQueryLog.SetWriter(w) }

// RecentRegressions returns the last k regression events (most recent
// first) from the process-wide detector.
func RecentRegressions(k int) []RegressionEvent { return obs.DefaultRegressions.Recent(k) }

// SetRegressionConfig replaces the process-wide detector's thresholds
// (zero fields fall back to the defaults: 5 samples, 3 sigma, 50%).
func SetRegressionConfig(cfg RegressionConfig) { obs.DefaultRegressions.SetConfig(cfg) }

// StartUDFProfiler turns on the PyLite sampling profiler: every
// sampleInterval-th executed UDF statement attributes one sample to its
// source line (sampleInterval <= 0 uses the default, 64; it is rounded
// up to a power of two). The profiler is process-wide; when it is off,
// UDF execution pays a single atomic load per statement. Hot-line
// windows appear on QueryAnalyze results and /debug/profile.
func (db *DB) StartUDFProfiler(sampleInterval int) { pylite.StartProfiler(sampleInterval) }

// StopUDFProfiler turns the sampling profiler off and returns its final
// snapshot (nil-safe: returns an empty profile when none was running).
func (db *DB) StopUDFProfiler() UDFProfile {
	p := pylite.ActiveProfiler()
	snap := p.Snapshot()
	if p != nil {
		p.Stop()
	}
	return snap
}

// UDFProfile returns the running profiler's cumulative snapshot (empty
// when no profiler is active).
func (db *DB) UDFProfile() UDFProfile { return pylite.ActiveProfiler().Snapshot() }

// Define executes UDF module source (PyLite — the Python subset of the
// UDF design specifications) and registers every decorated definition.
func (db *DB) Define(src string) error { return db.in.Define(src) }

// Register adds a UDF with explicit metadata.
func (db *DB) Register(spec UDFSpec) error { return db.in.Register(spec) }

// PutTable installs a prebuilt table.
func (db *DB) PutTable(t *Table) { db.in.Put(t) }

// Exec runs a DDL/DML statement (CREATE TABLE / INSERT / UPDATE /
// DELETE). UPDATE and DELETE predicates may call UDFs.
func (db *DB) Exec(sql string) error { return db.in.Eng.Exec(sql) }

// Query runs a SELECT through the QFusor pipeline (fusion + JIT) with
// graceful degradation: a fused-path failure transparently re-executes
// the query on the engine's native plan.
func (db *DB) Query(sql string) (*Table, error) { return db.in.QueryFused(sql) }

// QueryContext is Query under a context: cancelling ctx (or hitting
// its deadline) stops the query inside the executors' morsel loops and
// the UDF runtime's statement checks, returning a *QueryError with
// Stage "cancelled" whose chain carries ctx's cause.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Table, error) {
	return db.in.QueryFusedCtx(ctx, sql)
}

// QueryNative runs a SELECT with engine-native UDF execution (no
// fusion) for comparison.
func (db *DB) QueryNative(sql string) (*Table, error) { return db.in.Query(sql) }

// QueryNativeContext is QueryNative under a context.
func (db *DB) QueryNativeContext(ctx context.Context, sql string) (*Table, error) {
	return db.in.QueryCtx(ctx, sql)
}

// Explain returns the engine's plan for sql after QFusor's rewrite,
// plus the generated fused-wrapper sources.
func (db *DB) Explain(sql string) (string, error) {
	q, rep, err := db.in.QF.Process(db.in.Eng, sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(q.Explain())
	for i, src := range rep.Sources {
		fmt.Fprintf(&b, "\n-- fused wrapper %d --\n%s", i+1, src)
	}
	return b.String(), nil
}

// RewriteSQL returns the fused query as standard SQL calling the
// generated wrapper UDFs as table functions (the paper's rewrite
// path 1). executable reports whether this engine can re-run it.
func (db *DB) RewriteSQL(sql string) (out string, executable bool, err error) {
	return db.in.QF.RewriteSQL(db.in.Eng, sql)
}

// ExecFused runs a DML statement with QFusor's UDF-pipeline fusion
// applied to its expressions (§4.2.5).
func (db *DB) ExecFused(sql string) error {
	return db.in.QF.ExecDML(db.in.Eng, sql)
}

// ExplainNative returns the engine plan without QFusor's rewrite.
func (db *DB) ExplainNative(sql string) (string, error) {
	q, err := db.in.Eng.Plan(sql)
	if err != nil {
		return "", err
	}
	return q.Explain(), nil
}

// QueryAnalyze runs a SELECT through the full QFusor pipeline with
// tracing enabled — EXPLAIN ANALYZE. The returned Analysis carries the
// result table, the span tree (optimizer phases plus one span per
// executed plan operator with row counts), per-UDF wrapper-vs-body
// time, and the engine-wide metrics delta for the query.
func (db *DB) QueryAnalyze(sql string) (*Analysis, error) {
	return db.in.QueryAnalyze(sql)
}

// QueryAnalyzeContext is QueryAnalyze under a context; a fused-path
// failure degrades to the native plan under a phase:fallback span.
func (db *DB) QueryAnalyzeContext(ctx context.Context, sql string) (*Analysis, error) {
	return db.in.QueryAnalyzeCtx(ctx, sql)
}

// LastReport returns measurements of the most recent Query's fusion
// pipeline (discovery + codegen times, fused section count).
//
// Deprecated: "most recent" is ambiguous when queries run concurrently;
// prefer the per-query Analysis from QueryAnalyze.
func (db *DB) LastReport() Report { return db.in.QF.LastReport() }

// SetOptions adjusts the QFusor technique switches.
func (db *DB) SetOptions(o Options) { db.in.QF.Opts = o }

// PlanCacheStats returns the plan-decision cache's counters (zero when
// the cache is disabled).
func (db *DB) PlanCacheStats() PlanCacheStats { return db.in.QF.PlanCache.Stats() }

// PurgePlanCache empties the plan-decision cache (counted as
// invalidations). Useful before cold-path measurements.
func (db *DB) PurgePlanCache() {
	if db.in.QF.PlanCache != nil {
		db.in.QF.PlanCache.Purge()
	}
}

// DefaultOptions returns the full pipeline's switches.
func DefaultOptions() Options { return core.DefaultOptions() }

// Format renders a result table for display (up to limit rows).
func Format(t *Table, limit int) string {
	var b strings.Builder
	for i, f := range t.Schema {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(f.Name)
	}
	b.WriteByte('\n')
	n := t.NumRows()
	if limit > 0 && n > limit {
		n = limit
	}
	for r := 0; r < n; r++ {
		for i, c := range t.Cols {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(c.Get(r).String())
		}
		b.WriteByte('\n')
	}
	if t.NumRows() > n {
		fmt.Fprintf(&b, "... (%d rows total)\n", t.NumRows())
	}
	return b.String()
}

// ProfileColdUDFs probes statistics for registered UDFs that have none
// yet, sampling rows from the named table (§5.2.2's cold-start
// exploration). Returns how many UDFs were probed.
func (db *DB) ProfileColdUDFs(table string) int {
	return core.NewProfiler().ProfileColdUDFs(db.in.Eng, table)
}

// Tables lists the catalog's table names.
func (db *DB) Tables() []string { return db.in.Eng.Catalog.Tables() }

// UDFList describes the registered UDFs (name, kind, signature).
func (db *DB) UDFList() []string {
	var out []string
	for _, u := range db.in.Eng.Catalog.UDFs() {
		sig := make([]string, len(u.InKinds))
		for i, k := range u.InKinds {
			sig[i] = k.String()
		}
		out = append(out, fmt.Sprintf("%s(%s) -> %s  [%s]",
			u.Name, strings.Join(sig, ", "), u.OutKind(), u.Kind))
	}
	sort.Strings(out)
	return out
}

// DefineWorkload installs one of the paper's UDF libraries by name:
// "udfbench", "zillow", "weld" or "udo".
func (db *DB) DefineWorkload(name string) error {
	switch name {
	case "udfbench":
		return workload.InstallUDFBench(db.in)
	case "zillow":
		return workload.InstallZillow(db.in)
	case "weld":
		return workload.InstallWeld(db.in)
	case "udo":
		return workload.InstallUDO(db.in)
	}
	return fmt.Errorf("qfusor: unknown workload %q", name)
}

// Workload re-exports (used by the examples and benchmarks).
var (
	// GenUDFBench builds the publication-data workload.
	GenUDFBench = workload.GenUDFBench
	// GenZillow builds the listings workload.
	GenZillow = workload.GenZillow
	// InstallUDFBench registers the UDFBench UDF library on a DB.
	InstallUDFBench = func(db *DB) error { return workload.InstallUDFBench(db.in) }
	// InstallZillow registers the Zillow UDF library on a DB.
	InstallZillow = func(db *DB) error { return workload.InstallZillow(db.in) }
)

// Size re-exports workload scales.
type Size = workload.Size

// Workload sizes.
const (
	Tiny   = workload.Tiny
	Small  = workload.Small
	Medium = workload.Medium
	Large  = workload.Large
)
