package qfusor_test

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"qfusor"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// Normalization for EXPLAIN ANALYZE goldens: durations, measured costs
// and calibration factors vary run to run; structure (span tree, phase
// names, section/wrapper listings, row counts, the summary labels) must
// not.
var (
	reDur       = regexp.MustCompile(`\b[0-9]+(?:\.[0-9]+)?(?:ns|µs|ms|s)\b`)
	rePredicted = regexp.MustCompile(`predicted [0-9]+(?:\.[0-9]+)?`)
	reActual    = regexp.MustCompile(`actual [0-9]+(?:\.[0-9]+)?`)
	reDrift     = regexp.MustCompile(`drift [0-9]+(?:\.[0-9]+)?%`)
	reCalib     = regexp.MustCompile(`calibration [0-9]+(?:\.[0-9]+)?`)
	reTier      = regexp.MustCompile(`tier=[a-z-]+`)
	// Which operator spans carry a morsels= attribute (and its value)
	// depends on the worker count, which follows GOMAXPROCS.
	reMorsels = regexp.MustCompile(`  morsels=[0-9]+`)
)

func normalizeAnalyze(s string) string {
	s = rePredicted.ReplaceAllString(s, "predicted N")
	s = reActual.ReplaceAllString(s, "actual N")
	s = reDrift.ReplaceAllString(s, "drift N%")
	s = reCalib.ReplaceAllString(s, "calibration N")
	s = reDur.ReplaceAllString(s, "DUR")
	s = reTier.ReplaceAllString(s, "tier=T")
	s = reMorsels.ReplaceAllString(s, "")
	return s
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test -run TestAnalyzeGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Fatalf("golden %s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestAnalyzeGoldenColdWarm pins the EXPLAIN ANALYZE rendering for a
// fusing query across the plan-cache state change: the cold run shows
// the full optimizer front-end (plan_probe → dfg_build → discover →
// codegen with a wrapper span → rewrite) and `plancache=miss`; the warm
// run shows a single phase:plancache span and `plancache=hit` — with an
// otherwise identical section count, wrapper listing and plan.
func TestAnalyzeGoldenColdWarm(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	const sql = "SELECT id, slug(slug(title)) AS s FROM notes ORDER BY id"
	cold, err := db.QueryAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := db.QueryAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	gotCold := normalizeAnalyze(cold.Render())
	gotWarm := normalizeAnalyze(warm.Render())
	checkGolden(t, "analyze_cold.golden", gotCold)
	checkGolden(t, "analyze_warm.golden", gotWarm)

	// Belt and braces beyond the goldens: the summary line must carry
	// the renamed wrapper-cache label and the plancache outcome.
	if !strings.Contains(gotCold, "plancache=miss") {
		t.Errorf("cold render missing plancache=miss:\n%s", gotCold)
	}
	if !strings.Contains(gotWarm, "plancache=hit") {
		t.Errorf("warm render missing plancache=hit:\n%s", gotWarm)
	}
	for _, g := range []string{gotCold, gotWarm} {
		if !strings.Contains(g, "wrapper_cache_hits=") || strings.Contains(g, " cache_hits=") {
			t.Errorf("summary line label not renamed:\n%s", g)
		}
	}
	// Identical rewritten plan: the cached entry returns the same tree.
	if cold.Plan != warm.Plan {
		t.Errorf("warm plan differs from cold plan\ncold:\n%s\nwarm:\n%s", cold.Plan, warm.Plan)
	}
	if cold.Report.Sections != warm.Report.Sections {
		t.Errorf("section count changed on hit: %d vs %d", cold.Report.Sections, warm.Report.Sections)
	}
}

// TestAnalyzeGoldenInlined pins the EXPLAIN ANALYZE rendering for a
// relationally inlined query (tier=inlined): the cold run shows the
// phase:inline span replacing the whole fusion front-end, the "Inlined
// UDFs" decision table, a rewritten plan with the UDF call replaced by
// its CASE translation, and `plancache=miss`; the warm run replays the
// recorded inlining decision from the plan-cache entry (`plancache=hit`
// with the same decision table and plan).
func TestAnalyzeGoldenInlined(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB, qfusor.WithTier("inline"))
	if err := db.Define(`
@scalarudf
def boost(x: int) -> int:
    if x is None:
        return None
    return x * 2 + 1
`); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT id, boost(id) AS b FROM notes ORDER BY id"
	cold, err := db.QueryAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := db.QueryAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	// The plan rides along under the render so the golden pins the
	// CASE-translated expression tree, not just the span structure.
	gotCold := normalizeAnalyze(cold.Render() + "\n-- plan --\n" + cold.Plan)
	gotWarm := normalizeAnalyze(warm.Render() + "\n-- plan --\n" + warm.Plan)
	checkGolden(t, "analyze_inline_cold.golden", gotCold)
	checkGolden(t, "analyze_inline_warm.golden", gotWarm)

	// Raw (un-normalized) tier and decision markers.
	for name, a := range map[string]*qfusor.Analysis{"cold": cold, "warm": warm} {
		r := a.Render()
		if !strings.Contains(r, "tier=inlined") {
			t.Errorf("%s render missing tier=inlined:\n%s", name, r)
		}
		if !strings.Contains(r, "inlined=1") {
			t.Errorf("%s render missing inlined=1 summary field:\n%s", name, r)
		}
		if strings.Contains(a.Plan, "boost(") {
			t.Errorf("%s plan still calls the UDF:\n%s", name, a.Plan)
		}
		// The NULL guard is dropped: boost's body is NULL-strict in x, so
		// the translation is the bare arithmetic, no CASE wrapper.
		if !strings.Contains(a.Plan, "((id * 2) + 1)") {
			t.Errorf("%s plan lost the inlined arithmetic translation:\n%s", name, a.Plan)
		}
		if strings.Contains(a.Plan, "CASE WHEN") {
			t.Errorf("%s plan kept a redundant NULL guard:\n%s", name, a.Plan)
		}
	}
	if !strings.Contains(normalizeAnalyze(cold.Render()), "plancache=miss") {
		t.Errorf("cold render missing plancache=miss")
	}
	if !strings.Contains(normalizeAnalyze(warm.Render()), "plancache=hit") {
		t.Errorf("warm render missing plancache=hit (inlining decision not replayed)")
	}
	if cold.Plan != warm.Plan {
		t.Errorf("warm plan differs from cold plan\ncold:\n%s\nwarm:\n%s", cold.Plan, warm.Plan)
	}
}

// TestAnalyzeGoldenNonUDF pins the rendering for a query that never
// enters the fusion front-end: plancache=none, no optimizer phases
// beyond the probe.
func TestAnalyzeGoldenNonUDF(t *testing.T) {
	db := openTestDB(t, qfusor.MonetDB)
	a, err := db.QueryAnalyze("SELECT id, title FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeAnalyze(a.Render())
	checkGolden(t, "analyze_nonudf.golden", got)
	if !strings.Contains(got, "plancache=none") {
		t.Errorf("non-UDF render missing plancache=none:\n%s", got)
	}
}
