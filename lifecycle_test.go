package qfusor_test

import (
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"qfusor"
)

// TestCloseReleasesServersAndGoroutines: Close on a DB that is serving
// both the diagnostics plane and the query plane must tear down every
// listener and background goroutine — no socket left bound, no
// goroutine left behind. Guards the DB.Close/Serve/ServeDebug
// lifecycle against leak regressions.
func TestCloseReleasesServersAndGoroutines(t *testing.T) {
	// Warm-up cycle: let lazy process-wide singletons (flight recorder,
	// metrics registry, http internals) allocate their goroutines so the
	// baseline below only measures what the test cycle itself adds.
	warm, err := qfusor.Open(qfusor.MonetDB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.ServeDebug("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Serve("127.0.0.1:0", qfusor.ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	db, err := qfusor.Open(qfusor.MonetDB)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Define("@scalarudf\ndef lc(n: int) -> int:\n    return n + 1\n"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE TABLE ltbl (n int)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("INSERT INTO ltbl VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	dbgAddr, err := db.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvAddr, err := db.Serve("127.0.0.1:0", qfusor.ServerConfig{
		MaxConcurrent: 2, DrainGrace: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Exercise both planes so handler goroutines and conns exist.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	for _, url := range []string{
		"http://" + dbgAddr + "/metrics",
		"http://" + srvAddr + "/metrics",
		"http://" + srvAddr + "/debug/sessions",
	} {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		resp.Body.Close()
	}
	resp, err := client.Post("http://"+srvAddr+"/v1/query", "application/json",
		strings.NewReader(`{"sql": "SELECT lc(lc(n)) FROM ltbl ORDER BY n"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query over HTTP: status %d", resp.StatusCode)
	}

	db.Close()
	client.CloseIdleConnections()

	// Both listeners must be gone.
	for _, addr := range []string{dbgAddr, srvAddr} {
		if c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
			c.Close()
			t.Errorf("listener on %s still accepting after Close", addr)
		}
	}

	// Goroutine count must return to the pre-cycle baseline (small slack
	// for runtime/netpoll churn).
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServeTwiceFails: a DB refuses to start a second query server
// while one is running, and can serve again after Close.
func TestServeTwiceFails(t *testing.T) {
	db, err := qfusor.Open(qfusor.MonetDB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if _, err := db.Serve("127.0.0.1:0", qfusor.ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Serve("127.0.0.1:0", qfusor.ServerConfig{}); err == nil {
		t.Fatal("second Serve on a running DB succeeded")
	}
}
