// Command qfusor-cli is a small SQL shell over the QFusor engine:
// pick an engine profile, optionally preload a paper workload, then
// type SQL (UDF queries run through the QFusor pipeline).
//
// Meta commands (a leading "." works the same as "\"):
//
//	\native <sql>   run without fusion
//	\explain <sql>  show the rewritten plan + fused wrappers
//	\analyze <sql>  EXPLAIN ANALYZE: run with tracing, show the span tree
//	\rewrite <sql>  show the fused query as SQL (rewrite path 1)
//	\trace on|off   trace every following query (prints the span tree)
//	\metrics        dump the engine-wide metrics registry (expvar-style)
//	\plancache      show plan-decision cache counters (size, hits, misses)
//	\resources      show the last query's resource ledger + recent regressions
//	\def            enter UDF definition mode (end with a line: \end)
//	\tables         list tables
//	\udfs           list registered UDFs
//	\quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"qfusor"
	"qfusor/internal/faultinject"
	"qfusor/internal/workload"
)

func main() {
	profile := flag.String("engine", "monetdb", "engine profile: monetdb | postgresql | sqlite | duckdb | pyspark | dbx")
	load := flag.String("load", "", "preload a workload: udfbench | zillow | weld | udo (comma separated)")
	size := flag.String("size", "tiny", "workload size: tiny | small | medium | large")
	parallelism := flag.Int("parallelism", 0, "executor workers: 0 = auto (one per core), 1 = serial")
	morsel := flag.Int("morsel", 0, "morsel row count for the parallel executor (0 = default, 2048)")
	tier := flag.String("tier", "auto", "fused-section execution tier: vm | closure | inline | auto (cost model decides)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none); expired queries return a cancelled QueryError")
	httpAddr := flag.String("http", "", "serve diagnostics on this address (/metrics, /debug/queries, /debug/trace/<id>, /debug/profile); empty = off")
	serveAddr := flag.String("serve", "", "serve the multi-session HTTP/JSON query API on this address instead of the shell (/v1/query, /v1/session, /debug/sessions + diagnostics); empty = shell mode")
	serveMax := flag.Int("serve-max", 0, "admission: max concurrent queries (0 = default, 8)")
	serveTenantMax := flag.Int("serve-tenant-max", 0, "admission: max concurrent queries per tenant (0 = the global cap)")
	serveQueue := flag.Int("serve-queue", 0, "admission: wait-queue depth (0 = default, 2x max)")
	serveQueueTimeout := flag.Duration("serve-queue-timeout", 0, "admission: max time a query waits in the queue (0 = default, 1s)")
	serveShed := flag.Duration("serve-shed", 0, "admission: shed queries whose estimated cost exceeds this while others wait (0 = no cost shedding)")
	serveGrace := flag.Duration("serve-grace", 0, "shutdown: drain grace before in-flight queries are cancelled (0 = default, 5s)")
	profInterval := flag.Int("profile", 0, "enable the UDF sampling profiler with this statement interval (0 = off; rounded up to a power of two)")
	plancache := flag.Bool("plancache", true, "enable the plan-decision cache (repeated queries skip the optimizer front-end)")
	querylog := flag.String("querylog", "", "append the structured query log (one JSON line per query) to this file; empty = off")
	var faults faultFlags
	flag.Var(&faults, "fault", "arm a fault point: name[=error|panic|delay[:dur]|kill] (repeatable; see faultinject)")
	flag.Parse()
	queryTimeout = *timeout

	if *querylog != "" {
		f, err := os.OpenFile(*querylog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "querylog:", err)
			os.Exit(1)
		}
		defer f.Close()
		qfusor.SetQueryLogWriter(f)
	}

	if *tier != "auto" && *tier != "vm" && *tier != "closure" && *tier != "inline" {
		fmt.Fprintf(os.Stderr, "invalid -tier %q (want vm, closure, inline or auto)\n", *tier)
		os.Exit(2)
	}
	db, err := qfusor.Open(qfusor.Profile(*profile), qfusor.WithParallelism(*parallelism),
		qfusor.WithPlanCache(*plancache), qfusor.WithMorselSize(*morsel), qfusor.WithTier(*tier))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	if *profInterval > 0 {
		db.StartUDFProfiler(*profInterval)
	}
	if *httpAddr != "" {
		addr, err := db.ServeDebug(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagnostics server:", err)
			os.Exit(1)
		}
		fmt.Printf("diagnostics: http://%s/metrics  /debug/queries  /debug/trace/<id>  /debug/profile\n", addr)
	}

	for _, w := range strings.Split(*load, ",") {
		if w == "" {
			continue
		}
		if err := preload(db, w, qfusor.Size(*size)); err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded workload %q at size %s\n", w, *size)
	}

	if *serveAddr != "" {
		addr, err := db.Serve(*serveAddr, qfusor.ServerConfig{
			MaxConcurrent:    *serveMax,
			TenantConcurrent: *serveTenantMax,
			QueueDepth:       *serveQueue,
			QueueTimeout:     *serveQueueTimeout,
			ShedCostNanos:    float64(serveShed.Nanoseconds()),
			DrainGrace:       *serveGrace,
			DefaultTimeout:   *timeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "query server:", err)
			os.Exit(1)
		}
		fmt.Printf("serving: http://%s/v1/query  /v1/session  /debug/sessions  /metrics\n", addr)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("draining...")
		return // the deferred db.Close drains and stops the server
	}

	fmt.Printf("qfusor shell — engine=%s (\\quit to exit)\n", *profile)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("qfusor> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		// Dot-prefixed meta commands (SQLite style) are aliases.
		if strings.HasPrefix(trimmed, ".") {
			trimmed = "\\" + trimmed[1:]
		}
		switch {
		case trimmed == "\\quit" || trimmed == "\\q":
			return
		case trimmed == "\\metrics":
			fmt.Print(qfusor.Metrics().Text())
			prompt()
			continue
		case trimmed == "\\plancache":
			st := db.PlanCacheStats()
			fmt.Printf("plan cache: size=%d/%d hits=%d misses=%d evictions=%d invalidations=%d\n",
				st.Size, st.Cap, st.Hits, st.Misses, st.Evictions, st.Invalidations)
			prompt()
			continue
		case trimmed == "\\resources":
			showResources(db)
			prompt()
			continue
		case trimmed == "\\trace on" || trimmed == "\\trace off":
			traceOn = trimmed == "\\trace on"
			fmt.Printf("tracing %s\n", map[bool]string{true: "on", false: "off"}[traceOn])
			prompt()
			continue
		case strings.HasPrefix(trimmed, "\\analyze "):
			analyze(db, strings.TrimSuffix(strings.TrimPrefix(trimmed, "\\analyze "), ";"))
			prompt()
			continue
		case trimmed == "\\tables":
			listTables(db)
			prompt()
			continue
		case trimmed == "\\udfs":
			listUDFs(db)
			prompt()
			continue
		case trimmed == "\\def":
			src := readUntil(sc, "\\end")
			if err := db.Define(src); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
			prompt()
			continue
		case strings.HasPrefix(trimmed, "\\rewrite "):
			out, executable, err := db.RewriteSQL(strings.TrimPrefix(trimmed, "\\rewrite "))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println(out)
				if !executable {
					fmt.Println("-- (display only: not re-submittable in this dialect)")
				}
			}
			prompt()
			continue
		case strings.HasPrefix(trimmed, "\\explain "):
			out, err := db.Explain(strings.TrimPrefix(trimmed, "\\explain "))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println(out)
			}
			prompt()
			continue
		case strings.HasPrefix(trimmed, "\\native "):
			runOne(func(sql string) (*qfusor.Table, error) {
				ctx, cancel := queryCtx()
				defer cancel()
				return db.QueryNativeContext(ctx, sql)
			}, strings.TrimPrefix(trimmed, "\\native "))
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") || trimmed == "" {
			sql := strings.TrimSpace(buf.String())
			buf.Reset()
			if sql != "" {
				execute(db, strings.TrimSuffix(sql, ";"))
			}
			prompt()
		}
	}
}

// traceOn makes every SELECT run through EXPLAIN ANALYZE (\trace on).
var traceOn bool

// queryTimeout is the per-query deadline from -timeout (0 = none).
var queryTimeout time.Duration

// queryCtx returns the context every query runs under.
func queryCtx() (context.Context, context.CancelFunc) {
	if queryTimeout > 0 {
		return context.WithTimeout(context.Background(), queryTimeout)
	}
	return context.Background(), func() {}
}

// faultFlags collects repeated -fault values, arming each as it parses
// so a bad name or kind fails flag parsing with the valid choices.
type faultFlags []string

func (f *faultFlags) String() string { return strings.Join(*f, ",") }

func (f *faultFlags) Set(v string) error {
	if err := faultinject.EnableFlag(v); err != nil {
		return fmt.Errorf("%v (points: %s)", err, strings.Join(faultinject.Names(), ", "))
	}
	*f = append(*f, v)
	return nil
}

func execute(db *qfusor.DB, sql string) {
	up := strings.ToUpper(strings.Fields(sql + " ")[0])
	if up == "CREATE" || up == "INSERT" || up == "UPDATE" || up == "DELETE" {
		if err := db.Exec(sql); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("ok")
		}
		return
	}
	if traceOn {
		analyze(db, sql)
		return
	}
	runOne(func(sql string) (*qfusor.Table, error) {
		ctx, cancel := queryCtx()
		defer cancel()
		return db.QueryContext(ctx, sql)
	}, sql)
	rep := db.LastReport()
	if rep.Fallback {
		fmt.Printf("(degraded to native plan: %s)\n", rep.FallbackReason)
	}
	if rep.Sections > 0 {
		fmt.Printf("(%d fused sections, optimize %v, codegen %v)\n",
			rep.Sections, rep.FusOptim, rep.CodeGen)
	}
}

// analyze runs sql through EXPLAIN ANALYZE and prints the result table
// followed by the annotated span tree.
func analyze(db *qfusor.DB, sql string) {
	ctx, cancel := queryCtx()
	defer cancel()
	a, err := db.QueryAnalyzeContext(ctx, sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(qfusor.Format(a.Result, 25))
	fmt.Printf("(%d rows)\n\n", a.Result.NumRows())
	fmt.Print(a.Render())
}

// showResources prints the most recent query's resource ledger and the
// tail of the process-wide regression log (\resources).
func showResources(db *qfusor.DB) {
	recs := db.RecentQueries(1)
	if len(recs) == 0 {
		fmt.Println("no queries recorded yet")
	} else if r := recs[0].Resources; r == nil {
		fmt.Println("last query carried no resource ledger (accounting off?)")
	} else {
		fmt.Printf("last query: qid=%s sql=%s\n", r.QID, recs[0].SQL)
		fmt.Printf("  rows_out=%d morsels=%d udf_steps=%d retries=%d fallbacks=%d\n",
			r.RowsOut, r.Morsels, r.UDFSteps, r.Retries, r.Fallbacks)
		fmt.Printf("  ffi: calls=%d rows_in=%d rows_out=%d wall=%v wrapper=%v\n",
			r.FFICalls, r.FFIRowsIn, r.FFIRowsOut,
			time.Duration(r.FFIWallNanos), time.Duration(r.FFIWrapNanos))
		fmt.Printf("  alloc: bytes=%d objects=%d\n", r.AllocBytes, r.AllocObjects)
		for _, ph := range r.Phases {
			fmt.Printf("    phase %-10s alloc_bytes=%d alloc_objects=%d\n", ph.Name, ph.AllocBytes, ph.AllocObjects)
		}
		for _, op := range r.Ops {
			fmt.Printf("  op  %-26s calls=%d rows=%d time=%v\n", op.Name, op.Calls, op.Rows, time.Duration(op.Nanos))
		}
		for _, u := range r.UDFs {
			fmt.Printf("  udf %-26s calls=%d rows_in=%d rows_out=%d wall=%v wrapper=%v\n",
				u.Name, u.Calls, u.RowsIn, u.RowsOut, time.Duration(u.WallNanos), time.Duration(u.WrapNanos))
		}
	}
	evs := qfusor.RecentRegressions(5)
	if len(evs) == 0 {
		fmt.Println("regressions: none")
		return
	}
	fmt.Println("recent regressions:")
	for _, ev := range evs {
		fmt.Printf("  [%s] %s: %.0f vs baseline %.0f  (qid=%s) %s\n",
			ev.When.Format("15:04:05"), ev.Kind, ev.Value, ev.Baseline, ev.QID, ev.SQL)
	}
}

func runOne(run func(string) (*qfusor.Table, error), sql string) {
	start := time.Now()
	res, err := run(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(qfusor.Format(res, 25))
	fmt.Printf("(%d rows in %v)\n", res.NumRows(), time.Since(start))
}

func readUntil(sc *bufio.Scanner, end string) string {
	var b strings.Builder
	fmt.Printf("... enter UDF source, finish with %s\n", end)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == end {
			break
		}
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String()
}

func preload(db *qfusor.DB, name string, size qfusor.Size) error {
	switch name {
	case "udfbench":
		if err := qfusor.InstallUDFBench(db); err != nil {
			return err
		}
		ub := qfusor.GenUDFBench(size)
		db.PutTable(ub.Pubs)
		db.PutTable(ub.Artifacts)
	case "zillow":
		if err := qfusor.InstallZillow(db); err != nil {
			return err
		}
		db.PutTable(qfusor.GenZillow(size))
	case "weld", "udo":
		return preloadInternal(db, name, size)
	default:
		return fmt.Errorf("unknown workload %q", name)
	}
	return nil
}

func listTables(db *qfusor.DB) {
	names := db.Tables()
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(" ", n)
	}
}

func listUDFs(db *qfusor.DB) {
	for _, line := range db.UDFList() {
		fmt.Println(" ", line)
	}
}

func preloadInternal(db *qfusor.DB, name string, size qfusor.Size) error {
	switch name {
	case "weld":
		if err := db.DefineWorkload("weld"); err != nil {
			return err
		}
		pop, dirty := workload.GenWeld(size)
		db.PutTable(pop)
		db.PutTable(dirty)
	case "udo":
		if err := db.DefineWorkload("udo"); err != nil {
			return err
		}
		arrays, docs := workload.GenUDO(size)
		db.PutTable(arrays)
		db.PutTable(docs)
	}
	return nil
}
