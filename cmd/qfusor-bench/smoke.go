package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"qfusor"
	"qfusor/internal/bench"
	"qfusor/internal/obs"
	"qfusor/internal/workload"
)

// obsSmoke is the end-to-end check behind `make obs-smoke` and
// scripts/check.sh: it opens a real engine, runs fused queries with the
// diagnostics server and the UDF profiler live, then validates every
// endpoint over actual HTTP — the exposition parses and carries the
// required series, the flight recorder shows the queries, a recorded
// trace round-trips as structurally valid Chrome trace_event JSON, and
// the profiler reports hot lines.
func obsSmoke(w io.Writer) error {
	db, err := qfusor.Open(qfusor.MonetDB)
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.Define("@scalarudf\ndef smokeup(s: str) -> str:\n    t = s\n    for i in range(3):\n        t = t.upper()\n    return t\n"); err != nil {
		return err
	}
	if err := db.Exec("CREATE TABLE smoketbl (name string, n int)"); err != nil {
		return err
	}
	if err := db.Exec("INSERT INTO smoketbl VALUES ('ada', 1), ('grace', 2), ('edsger', 3)"); err != nil {
		return err
	}

	addr, err := db.ServeDebug("127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + addr
	fmt.Fprintf(w, "obs-smoke: diagnostics server at %s\n", base)
	db.StartUDFProfiler(2)
	db.SetSlowQueryThreshold(0) // every query lands in the slow log

	// Repeated runs: the second and later executions exercise the wrapper
	// cache and feed the drift calibration with measured section costs.
	const runs = 4
	for i := 0; i < runs; i++ {
		if _, err := db.Query("SELECT smokeup(name), n FROM smoketbl WHERE n >= 1"); err != nil {
			return fmt.Errorf("query run %d: %w", i, err)
		}
	}

	// /metrics: valid Prometheus 0.0.4 exposition with the series the
	// diagnostics plane promises.
	body, err := httpGet(base + "/metrics")
	if err != nil {
		return err
	}
	samples, err := obs.ParseExposition(string(body))
	if err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}
	required := []string{
		"qfusor_fallbacks",
		`qfusor_fallbacks{reason="breaker_open"}`,
		`qfusor_fallbacks{reason="panic"}`,
		`qfusor_fallbacks{reason="exec_error"}`,
		"qfusor_breaker_open",
		"qfusor_breaker_half_open",
		"qfusor_breaker_tracked",
		"qfusor_breaker_trips",
		"engine_morsels",
		"engine_morsel_rows",
		"ffi_proc_live_workers",
		"qfusor_drift_observations",
		"obs_flight_recorded",
		"pylite_profile_samples",
		`qfusor_regressions{kind="latency"}`,
		`qfusor_regressions{kind="rows"}`,
		`qfusor_regressions{kind="allocs"}`,
		`qfusor_regressions{kind="ffi"}`,
	}
	for _, name := range required {
		if _, ok := samples[name]; !ok {
			return fmt.Errorf("/metrics missing required series %s", name)
		}
	}
	if samples["qfusor_drift_observations"] < 1 {
		return fmt.Errorf("drift loop never observed a section cost")
	}
	driftSeries := 0
	for k := range samples {
		if strings.HasPrefix(k, "qfusor_drift_calibration_milli{section=") {
			driftSeries++
		}
	}
	if driftSeries == 0 {
		return fmt.Errorf("/metrics has no per-section drift calibration gauge")
	}
	fmt.Fprintf(w, "obs-smoke: /metrics ok (%d samples, %d drift sections)\n", len(samples), driftSeries)

	// /debug/queries: the flight recorder saw every run, and at least one
	// record carries a trace.
	body, err = httpGet(base + "/debug/queries?n=16")
	if err != nil {
		return err
	}
	var queries struct {
		SlowThresholdNanos int64                 `json:"slow_threshold_ns"`
		Count              int                   `json:"count"`
		Queries            []*qfusor.QueryRecord `json:"queries"`
	}
	if err := json.Unmarshal(body, &queries); err != nil {
		return fmt.Errorf("/debug/queries: %w", err)
	}
	if queries.Count < runs {
		return fmt.Errorf("/debug/queries count = %d, want >= %d", queries.Count, runs)
	}
	var traceID int64 = -1
	for _, q := range queries.Queries {
		if q.HasTrace {
			traceID = q.ID
			break
		}
	}
	if traceID < 0 {
		return fmt.Errorf("no recorded query carries a trace (trace-all should be on while the server runs)")
	}
	// The slow log (threshold 0) caught them too.
	body, err = httpGet(base + "/debug/queries?slow=1")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, &queries); err != nil {
		return fmt.Errorf("/debug/queries?slow=1: %w", err)
	}
	if queries.Count < runs {
		return fmt.Errorf("slow log count = %d, want >= %d (threshold 0)", queries.Count, runs)
	}
	fmt.Fprintf(w, "obs-smoke: /debug/queries ok (%d records, trace id %d)\n", queries.Count, traceID)

	// /debug/trace/<id>: structurally valid Chrome trace_event JSON.
	body, err = httpGet(fmt.Sprintf("%s/debug/trace/%d", base, traceID))
	if err != nil {
		return err
	}
	tf, err := obs.ParseChromeTrace(body)
	if err != nil {
		return fmt.Errorf("/debug/trace/%d: %w", traceID, err)
	}
	if len(tf.TraceEvents) < 2 {
		return fmt.Errorf("trace %d has %d events, want a span tree", traceID, len(tf.TraceEvents))
	}
	fmt.Fprintf(w, "obs-smoke: /debug/trace/%d ok (%d events)\n", traceID, len(tf.TraceEvents))

	// /debug/resources: every recorded query carries a ledger whose
	// row count matches what the engine actually produced.
	body, err = httpGet(base + "/debug/resources?n=16")
	if err != nil {
		return err
	}
	var resources struct {
		AccountingEnabled bool `json:"accounting_enabled"`
		Count             int  `json:"count"`
		Queries           []struct {
			QID       string                 `json:"qid"`
			SQL       string                 `json:"sql"`
			Resources *qfusor.LedgerSnapshot `json:"resources"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(body, &resources); err != nil {
		return fmt.Errorf("/debug/resources: %w", err)
	}
	if !resources.AccountingEnabled {
		return fmt.Errorf("/debug/resources reports accounting disabled (the default is on)")
	}
	if resources.Count < runs {
		return fmt.Errorf("/debug/resources count = %d, want >= %d", resources.Count, runs)
	}
	for _, q := range resources.Queries {
		if q.QID == "" {
			return fmt.Errorf("/debug/resources: query %q has no correlation id", q.SQL)
		}
		if q.Resources == nil || q.Resources.RowsOut != 3 {
			return fmt.Errorf("/debug/resources: query %q ledger rows_out != 3: %+v", q.SQL, q.Resources)
		}
		if q.Resources.FFICalls < 1 {
			return fmt.Errorf("/debug/resources: query %q ledger saw no FFI calls", q.SQL)
		}
	}
	fmt.Fprintf(w, "obs-smoke: /debug/resources ok (%d ledgers)\n", resources.Count)

	// /debug/regressions: the detector state is well-formed JSON with the
	// configured thresholds and a baseline for the repeated query.
	body, err = httpGet(base + "/debug/regressions")
	if err != nil {
		return err
	}
	var regress struct {
		Config struct {
			MinSamples int     `json:"min_samples"`
			Sigma      float64 `json:"sigma"`
			MinPct     float64 `json:"min_pct"`
		} `json:"config"`
		Baselines []struct {
			Key     string `json:"key"`
			Samples int64  `json:"samples"`
		} `json:"baselines"`
	}
	if err := json.Unmarshal(body, &regress); err != nil {
		return fmt.Errorf("/debug/regressions: %w", err)
	}
	if regress.Config.MinSamples < 1 || regress.Config.Sigma <= 0 {
		return fmt.Errorf("/debug/regressions config not populated: %+v", regress.Config)
	}
	foundBaseline := false
	for _, b := range regress.Baselines {
		if strings.Contains(b.Key, "smokeup") && b.Samples >= int64(runs) {
			foundBaseline = true
			break
		}
	}
	if !foundBaseline {
		return fmt.Errorf("/debug/regressions has no baseline for the repeated smoke query")
	}
	fmt.Fprintf(w, "obs-smoke: /debug/regressions ok (%d baselines)\n", len(regress.Baselines))

	// /debug/profile: the sampling profiler attributed samples to the UDF.
	body, err = httpGet(base + "/debug/profile")
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "smokeup") {
		return fmt.Errorf("/debug/profile does not mention the hot UDF:\n%s", body)
	}
	fmt.Fprintln(w, "obs-smoke: /debug/profile ok")
	return nil
}

// vmSmoke is the check behind `make vm-smoke` and scripts/check.sh: a
// micro-run of E20 (the vectorized VM tier experiment) at tiny size,
// asserting that the VM tier actually engaged (vm_rows > 0 on the
// dispatch-bound sections, nothing silently bailed) and that the
// qfusor.vm.* counters it drives render as valid Prometheus
// exposition with the promised series.
func vmSmoke(w io.Writer) error {
	r := bench.NewRunner(workload.Size("tiny"), io.Discard)
	r.Quick = true
	res, err := r.VMTierBench()
	if err != nil {
		return fmt.Errorf("E20 micro-run: %w", err)
	}
	sections := 0
	for _, row := range res.Rows {
		if !strings.HasPrefix(row.Label, "section/") {
			continue
		}
		sections++
		if row.Metrics["vm_rows"] <= 0 {
			return fmt.Errorf("%s: VM tier never engaged (vm_rows = %v)", row.Label, row.Metrics["vm_rows"])
		}
		if row.Metrics["bail_rows"] > 0 {
			return fmt.Errorf("%s: dispatch-bound section bailed %v rows to the closure tier", row.Label, row.Metrics["bail_rows"])
		}
		if row.Metrics["section_speedup"] <= 1 {
			return fmt.Errorf("%s: VM tier slower than closure (section_speedup = %.2f)", row.Label, row.Metrics["section_speedup"])
		}
	}
	if sections == 0 {
		return fmt.Errorf("E20 produced no dispatch-bound section rows")
	}
	fmt.Fprintf(w, "vm-smoke: E20 micro-run ok (%d rows, %d dispatch-bound sections)\n", len(res.Rows), sections)

	samples, err := obs.ParseExposition(obs.Default.Snapshot().Prometheus())
	if err != nil {
		return fmt.Errorf("metrics exposition invalid: %w", err)
	}
	for _, name := range []string{
		"qfusor_vm_programs", "qfusor_vm_morsels", "qfusor_vm_rows", "qfusor_vm_bail_rows",
	} {
		if _, ok := samples[name]; !ok {
			return fmt.Errorf("metrics exposition missing series %s", name)
		}
	}
	if samples["qfusor_vm_programs"] < 1 || samples["qfusor_vm_rows"] < 1 {
		return fmt.Errorf("qfusor.vm.* counters never moved: programs=%v rows=%v",
			samples["qfusor_vm_programs"], samples["qfusor_vm_rows"])
	}
	fmt.Fprintf(w, "vm-smoke: qfusor.vm.* exposition ok (programs=%v morsels=%v rows=%v bail_rows=%v)\n",
		samples["qfusor_vm_programs"], samples["qfusor_vm_morsels"],
		samples["qfusor_vm_rows"], samples["qfusor_vm_bail_rows"])
	return nil
}

// serveSmoke is the end-to-end check behind `make serve-smoke` and
// scripts/check.sh: it starts the multi-session query server with
// deliberately tight admission limits, drives it over real HTTP —
// sessions, prepared statements, concurrent queries, an overload burst
// — then asserts the admission metrics moved (admitted, shed, queue
// depth) and that shutdown drains within the grace period.
func serveSmoke(w io.Writer) error {
	db, err := qfusor.Open(qfusor.MonetDB)
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.Define("@scalarudf\ndef srvwork(n: int) -> int:\n    acc = 0\n    for i in range(60):\n        acc = acc + (n + i) % 97\n    return acc\n"); err != nil {
		return err
	}
	if err := db.Exec("CREATE TABLE srvtbl (n int)"); err != nil {
		return err
	}
	var vals strings.Builder
	for i := 0; i < 3000; i++ {
		if i > 0 {
			vals.WriteString(", ")
		}
		fmt.Fprintf(&vals, "(%d)", i)
	}
	if err := db.Exec("INSERT INTO srvtbl VALUES " + vals.String()); err != nil {
		return err
	}

	const grace = 3 * time.Second
	addr, err := db.Serve("127.0.0.1:0", qfusor.ServerConfig{
		MaxConcurrent: 2,
		QueueDepth:    2,
		QueueTimeout:  300 * time.Millisecond,
		DrainGrace:    grace,
	})
	if err != nil {
		return err
	}
	base := "http://" + addr
	fmt.Fprintf(w, "serve-smoke: query server at %s\n", base)

	// Session + prepared statement over real HTTP.
	body, status, err := httpPostJSON(base+"/v1/session", map[string]any{"tenant": "smoke", "timeout_ms": 10000})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("open session: status %d err %v: %s", status, err, body)
	}
	var sess struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(body, &sess); err != nil || sess.Session == "" {
		return fmt.Errorf("open session: bad body %s", body)
	}
	body, status, err = httpPostJSON(base+"/v1/prepare", map[string]any{
		"session": sess.Session, "name": "hot", "sql": "SELECT srvwork(n) FROM srvtbl WHERE n < 500",
	})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("prepare: status %d err %v: %s", status, err, body)
	}
	body, status, err = httpPostJSON(base+"/v1/query", map[string]any{"session": sess.Session, "stmt": "hot"})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("prepared query: status %d err %v: %s", status, err, body)
	}
	var qr struct {
		RowCount int `json:"row_count"`
	}
	if err := json.Unmarshal(body, &qr); err != nil || qr.RowCount != 500 {
		return fmt.Errorf("prepared query: row_count != 500: %s", body)
	}
	fmt.Fprintf(w, "serve-smoke: session %s prepared+query ok (%d rows)\n", sess.Session, qr.RowCount)

	// Overload burst: 16 concurrent queries against capacity 2 + queue 2.
	// With a 300ms queue timeout some must be rejected, some admitted.
	const burst = 16
	var (
		mu            sync.Mutex
		okN, shedN    int
		otherStatuses []int
	)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, st, err := httpPostJSON(base+"/v1/query", map[string]any{
				"tenant": "smoke", "sql": "SELECT srvwork(n) FROM srvtbl",
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && st == http.StatusOK:
				okN++
			case st == http.StatusServiceUnavailable || st == http.StatusTooManyRequests:
				shedN++
			default:
				otherStatuses = append(otherStatuses, st)
				fmt.Fprintf(w, "serve-smoke: unexpected burst response %d: %s\n", st, b)
			}
		}()
	}
	wg.Wait()
	if len(otherStatuses) > 0 {
		return fmt.Errorf("burst: unexpected statuses %v", otherStatuses)
	}
	if okN == 0 || shedN == 0 {
		return fmt.Errorf("burst of %d vs capacity 2: want both admitted and rejected, got ok=%d shed=%d", burst, okN, shedN)
	}
	fmt.Fprintf(w, "serve-smoke: overload burst ok (admitted=%d rejected=%d)\n", okN, shedN)

	// /metrics: the admission series exist and moved.
	body, err = httpGet(base + "/metrics")
	if err != nil {
		return err
	}
	samples, err := obs.ParseExposition(string(body))
	if err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}
	for _, name := range []string{"server_admitted", "server_rejected", "server_queue_depth", "server_sessions"} {
		if _, ok := samples[name]; !ok {
			return fmt.Errorf("/metrics missing required series %s", name)
		}
	}
	if samples["server_admitted"] < 1 {
		return fmt.Errorf("server_admitted never moved")
	}
	shedTotal := 0.0
	for k, v := range samples {
		if strings.HasPrefix(k, "server_shed{reason=") {
			shedTotal += v
		}
	}
	if shedTotal < 1 {
		return fmt.Errorf("no server_shed{reason=...} series moved during the burst")
	}
	fmt.Fprintf(w, "serve-smoke: /metrics ok (admitted=%v shed=%v)\n", samples["server_admitted"], shedTotal)

	// /debug/sessions: the session is listed and the census agrees.
	body, err = httpGet(base + "/debug/sessions")
	if err != nil {
		return err
	}
	var sessions struct {
		Count     int `json:"count"`
		Admission struct {
			Admitted  uint64 `json:"admitted"`
			ShedTotal uint64 `json:"shed_total"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(body, &sessions); err != nil {
		return fmt.Errorf("/debug/sessions: %w", err)
	}
	if sessions.Count < 1 || sessions.Admission.Admitted < 1 || sessions.Admission.ShedTotal < 1 {
		return fmt.Errorf("/debug/sessions census wrong: %s", body)
	}
	fmt.Fprintln(w, "serve-smoke: /debug/sessions ok")

	// Drain: Close must complete within the grace period (plus slack for
	// the HTTP teardown) with no queries in flight.
	closeStart := time.Now()
	db.Close()
	if d := time.Since(closeStart); d > grace+2*time.Second {
		return fmt.Errorf("drain took %s, want <= grace %s + slack", d, grace)
	}
	fmt.Fprintf(w, "serve-smoke: drain ok (%s)\n", time.Since(closeStart).Round(time.Millisecond))
	return nil
}

// httpPostJSON posts a JSON body and returns (body, status, transport
// error). Non-2xx statuses are returned, not folded into err — the
// smoke test asserts on rejection statuses.
func httpPostJSON(url string, v any) ([]byte, int, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, 0, err
	}
	cl := &http.Client{Timeout: 30 * time.Second}
	resp, err := cl.Post(url, "application/json", strings.NewReader(string(data)))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

// httpGet fetches a URL with a short deadline and returns its body,
// failing on any non-200 status.
func httpGet(url string) ([]byte, error) {
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}

// inlineSmoke is the check behind `make inline-smoke` and
// scripts/check.sh: it pins a DB to the relational-inlining tier, runs
// a guarded straight-line UDF query (plus an opaque UDF the inliner
// must refuse), and asserts the Froid contract end to end — results
// bit-identical to native, zero FFI crossings for the inlined query,
// the qfusor.inline.* decision counters moving and rendering as valid
// Prometheus exposition, and the vectorized evaluator's CSE engaging
// on the nested call's repeated subtrees.
func inlineSmoke(w io.Writer) error {
	db, err := qfusor.Open(qfusor.MonetDB, qfusor.WithTier("inline"))
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.Define(`
@scalarudf
def iboost(x: int) -> int:
    if x is None:
        return None
    return (x * 37 + 11) * 3 - x

@scalarudf
def iwork(n: int) -> int:
    if n is None:
        return 0
    acc = 0
    for i in range(4):
        acc = acc + n + i
    return acc

@scalarudf
def fgain(x: float) -> float:
    if x is None:
        return None
    return (x * 1.5 + 2.0) * 0.5 - x
`); err != nil {
		return err
	}
	if err := db.Exec("CREATE TABLE itbl (n int, f float)"); err != nil {
		return err
	}
	var vals strings.Builder
	for i := 0; i < 500; i++ {
		if i > 0 {
			vals.WriteString(", ")
		}
		if i%23 == 0 {
			vals.WriteString("(NULL, NULL)")
		} else {
			fmt.Fprintf(&vals, "(%d, %g)", i, float64(i)*0.5)
		}
	}
	if err := db.Exec("INSERT INTO itbl VALUES " + vals.String()); err != nil {
		return err
	}

	const sql = "SELECT n, iboost(iboost(n)) AS v FROM itbl ORDER BY n"
	native, err := db.QueryNative(sql)
	if err != nil {
		return err
	}
	ffi0 := obs.Default.Counter("ffi.udf.calls").Value()
	got, err := db.Query(sql)
	if err != nil {
		return err
	}
	if rk, nk := smokeTableKey(got), smokeTableKey(native); rk != nk {
		return fmt.Errorf("inlined result diverges from native:\ninlined:\n%s\nnative:\n%s", rk, nk)
	}
	if d := obs.Default.Counter("ffi.udf.calls").Value() - ffi0; d != 0 {
		return fmt.Errorf("inlined query crossed the FFI %d times (want 0)", d)
	}
	fmt.Fprintf(w, "inline-smoke: inlined query ok (%d rows, native-identical, 0 FFI crossings)\n", got.NumRows())

	// The loop-bearing UDF must be classified opaque and still run right.
	opq, err := db.Query("SELECT n, iwork(n) AS v FROM itbl ORDER BY n")
	if err != nil {
		return err
	}
	opqNative, err := db.QueryNative("SELECT n, iwork(n) AS v FROM itbl ORDER BY n")
	if err != nil {
		return err
	}
	if smokeTableKey(opq) != smokeTableKey(opqNative) {
		return fmt.Errorf("opaque-UDF query diverges from native")
	}
	fmt.Fprintln(w, "inline-smoke: opaque fallback ok (loop-bearing UDF refused by the inliner, results native-identical)")

	// The float UDF uses its argument twice, so the nested call inlines
	// to a tree with a repeated non-int subtree — the shape the columnar
	// CSE memo exists for. (All-int trees are claimed by the single-pass
	// int-program path and never consult the memo.)
	const fsql = "SELECT n, fgain(fgain(f)) AS v FROM itbl ORDER BY n"
	fgot, err := db.Query(fsql)
	if err != nil {
		return err
	}
	fnative, err := db.QueryNative(fsql)
	if err != nil {
		return err
	}
	if smokeTableKey(fgot) != smokeTableKey(fnative) {
		return fmt.Errorf("inlined float query diverges from native")
	}

	samples, err := obs.ParseExposition(obs.Default.Snapshot().Prometheus())
	if err != nil {
		return fmt.Errorf("metrics exposition invalid: %w", err)
	}
	for _, name := range []string{
		"qfusor_inline_udfs", "qfusor_inline_opaque", "qfusor_inline_sites",
		"qfusor_inline_queries", "qfusor_inline_full", "engine_vec_cse_hits",
	} {
		if _, ok := samples[name]; !ok {
			return fmt.Errorf("metrics exposition missing series %s", name)
		}
	}
	if samples["qfusor_inline_udfs"] < 1 || samples["qfusor_inline_sites"] < 1 || samples["qfusor_inline_full"] < 1 {
		return fmt.Errorf("qfusor.inline.* counters never moved: udfs=%v sites=%v full=%v",
			samples["qfusor_inline_udfs"], samples["qfusor_inline_sites"], samples["qfusor_inline_full"])
	}
	if samples["qfusor_inline_opaque"] < 1 {
		return fmt.Errorf("opaque UDF was not recorded as an inliner refusal (opaque=%v)", samples["qfusor_inline_opaque"])
	}
	if samples["engine_vec_cse_hits"] < 1 {
		return fmt.Errorf("vectorized CSE never engaged on the nested inlined float call (hits=%v)", samples["engine_vec_cse_hits"])
	}
	fmt.Fprintf(w, "inline-smoke: qfusor.inline.* exposition ok (udfs=%v opaque=%v sites=%v queries=%v full=%v cse_hits=%v)\n",
		samples["qfusor_inline_udfs"], samples["qfusor_inline_opaque"], samples["qfusor_inline_sites"],
		samples["qfusor_inline_queries"], samples["qfusor_inline_full"], samples["engine_vec_cse_hits"])
	return nil
}

// smokeTableKey flattens a result table to a comparable string (schema
// header, then every cell, NULL-distinct).
func smokeTableKey(t *qfusor.Table) string {
	var b strings.Builder
	for i, f := range t.Schema {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s:%s", f.Name, f.Kind)
	}
	b.WriteByte('\n')
	for r := 0; r < t.NumRows(); r++ {
		for i, c := range t.Cols {
			if i > 0 {
				b.WriteByte('|')
			}
			if c.IsNull(r) {
				b.WriteString("<null>")
			} else {
				b.WriteString(c.Get(r).String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
