package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"qfusor"
	"qfusor/internal/bench"
	"qfusor/internal/obs"
	"qfusor/internal/workload"
)

// obsSmoke is the end-to-end check behind `make obs-smoke` and
// scripts/check.sh: it opens a real engine, runs fused queries with the
// diagnostics server and the UDF profiler live, then validates every
// endpoint over actual HTTP — the exposition parses and carries the
// required series, the flight recorder shows the queries, a recorded
// trace round-trips as structurally valid Chrome trace_event JSON, and
// the profiler reports hot lines.
func obsSmoke(w io.Writer) error {
	db, err := qfusor.Open(qfusor.MonetDB)
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.Define("@scalarudf\ndef smokeup(s: str) -> str:\n    t = s\n    for i in range(3):\n        t = t.upper()\n    return t\n"); err != nil {
		return err
	}
	if err := db.Exec("CREATE TABLE smoketbl (name string, n int)"); err != nil {
		return err
	}
	if err := db.Exec("INSERT INTO smoketbl VALUES ('ada', 1), ('grace', 2), ('edsger', 3)"); err != nil {
		return err
	}

	addr, err := db.ServeDebug("127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + addr
	fmt.Fprintf(w, "obs-smoke: diagnostics server at %s\n", base)
	db.StartUDFProfiler(2)
	db.SetSlowQueryThreshold(0) // every query lands in the slow log

	// Repeated runs: the second and later executions exercise the wrapper
	// cache and feed the drift calibration with measured section costs.
	const runs = 4
	for i := 0; i < runs; i++ {
		if _, err := db.Query("SELECT smokeup(name), n FROM smoketbl WHERE n >= 1"); err != nil {
			return fmt.Errorf("query run %d: %w", i, err)
		}
	}

	// /metrics: valid Prometheus 0.0.4 exposition with the series the
	// diagnostics plane promises.
	body, err := httpGet(base + "/metrics")
	if err != nil {
		return err
	}
	samples, err := obs.ParseExposition(string(body))
	if err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}
	required := []string{
		"qfusor_fallbacks",
		`qfusor_fallbacks{reason="breaker_open"}`,
		`qfusor_fallbacks{reason="panic"}`,
		`qfusor_fallbacks{reason="exec_error"}`,
		"qfusor_breaker_open",
		"qfusor_breaker_half_open",
		"qfusor_breaker_tracked",
		"qfusor_breaker_trips",
		"engine_morsels",
		"engine_morsel_rows",
		"ffi_proc_live_workers",
		"qfusor_drift_observations",
		"obs_flight_recorded",
		"pylite_profile_samples",
		`qfusor_regressions{kind="latency"}`,
		`qfusor_regressions{kind="rows"}`,
		`qfusor_regressions{kind="allocs"}`,
		`qfusor_regressions{kind="ffi"}`,
	}
	for _, name := range required {
		if _, ok := samples[name]; !ok {
			return fmt.Errorf("/metrics missing required series %s", name)
		}
	}
	if samples["qfusor_drift_observations"] < 1 {
		return fmt.Errorf("drift loop never observed a section cost")
	}
	driftSeries := 0
	for k := range samples {
		if strings.HasPrefix(k, "qfusor_drift_calibration_milli{section=") {
			driftSeries++
		}
	}
	if driftSeries == 0 {
		return fmt.Errorf("/metrics has no per-section drift calibration gauge")
	}
	fmt.Fprintf(w, "obs-smoke: /metrics ok (%d samples, %d drift sections)\n", len(samples), driftSeries)

	// /debug/queries: the flight recorder saw every run, and at least one
	// record carries a trace.
	body, err = httpGet(base + "/debug/queries?n=16")
	if err != nil {
		return err
	}
	var queries struct {
		SlowThresholdNanos int64                 `json:"slow_threshold_ns"`
		Count              int                   `json:"count"`
		Queries            []*qfusor.QueryRecord `json:"queries"`
	}
	if err := json.Unmarshal(body, &queries); err != nil {
		return fmt.Errorf("/debug/queries: %w", err)
	}
	if queries.Count < runs {
		return fmt.Errorf("/debug/queries count = %d, want >= %d", queries.Count, runs)
	}
	var traceID int64 = -1
	for _, q := range queries.Queries {
		if q.HasTrace {
			traceID = q.ID
			break
		}
	}
	if traceID < 0 {
		return fmt.Errorf("no recorded query carries a trace (trace-all should be on while the server runs)")
	}
	// The slow log (threshold 0) caught them too.
	body, err = httpGet(base + "/debug/queries?slow=1")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, &queries); err != nil {
		return fmt.Errorf("/debug/queries?slow=1: %w", err)
	}
	if queries.Count < runs {
		return fmt.Errorf("slow log count = %d, want >= %d (threshold 0)", queries.Count, runs)
	}
	fmt.Fprintf(w, "obs-smoke: /debug/queries ok (%d records, trace id %d)\n", queries.Count, traceID)

	// /debug/trace/<id>: structurally valid Chrome trace_event JSON.
	body, err = httpGet(fmt.Sprintf("%s/debug/trace/%d", base, traceID))
	if err != nil {
		return err
	}
	tf, err := obs.ParseChromeTrace(body)
	if err != nil {
		return fmt.Errorf("/debug/trace/%d: %w", traceID, err)
	}
	if len(tf.TraceEvents) < 2 {
		return fmt.Errorf("trace %d has %d events, want a span tree", traceID, len(tf.TraceEvents))
	}
	fmt.Fprintf(w, "obs-smoke: /debug/trace/%d ok (%d events)\n", traceID, len(tf.TraceEvents))

	// /debug/resources: every recorded query carries a ledger whose
	// row count matches what the engine actually produced.
	body, err = httpGet(base + "/debug/resources?n=16")
	if err != nil {
		return err
	}
	var resources struct {
		AccountingEnabled bool `json:"accounting_enabled"`
		Count             int  `json:"count"`
		Queries           []struct {
			QID       string                 `json:"qid"`
			SQL       string                 `json:"sql"`
			Resources *qfusor.LedgerSnapshot `json:"resources"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(body, &resources); err != nil {
		return fmt.Errorf("/debug/resources: %w", err)
	}
	if !resources.AccountingEnabled {
		return fmt.Errorf("/debug/resources reports accounting disabled (the default is on)")
	}
	if resources.Count < runs {
		return fmt.Errorf("/debug/resources count = %d, want >= %d", resources.Count, runs)
	}
	for _, q := range resources.Queries {
		if q.QID == "" {
			return fmt.Errorf("/debug/resources: query %q has no correlation id", q.SQL)
		}
		if q.Resources == nil || q.Resources.RowsOut != 3 {
			return fmt.Errorf("/debug/resources: query %q ledger rows_out != 3: %+v", q.SQL, q.Resources)
		}
		if q.Resources.FFICalls < 1 {
			return fmt.Errorf("/debug/resources: query %q ledger saw no FFI calls", q.SQL)
		}
	}
	fmt.Fprintf(w, "obs-smoke: /debug/resources ok (%d ledgers)\n", resources.Count)

	// /debug/regressions: the detector state is well-formed JSON with the
	// configured thresholds and a baseline for the repeated query.
	body, err = httpGet(base + "/debug/regressions")
	if err != nil {
		return err
	}
	var regress struct {
		Config struct {
			MinSamples int     `json:"min_samples"`
			Sigma      float64 `json:"sigma"`
			MinPct     float64 `json:"min_pct"`
		} `json:"config"`
		Baselines []struct {
			Key     string `json:"key"`
			Samples int64  `json:"samples"`
		} `json:"baselines"`
	}
	if err := json.Unmarshal(body, &regress); err != nil {
		return fmt.Errorf("/debug/regressions: %w", err)
	}
	if regress.Config.MinSamples < 1 || regress.Config.Sigma <= 0 {
		return fmt.Errorf("/debug/regressions config not populated: %+v", regress.Config)
	}
	foundBaseline := false
	for _, b := range regress.Baselines {
		if strings.Contains(b.Key, "smokeup") && b.Samples >= int64(runs) {
			foundBaseline = true
			break
		}
	}
	if !foundBaseline {
		return fmt.Errorf("/debug/regressions has no baseline for the repeated smoke query")
	}
	fmt.Fprintf(w, "obs-smoke: /debug/regressions ok (%d baselines)\n", len(regress.Baselines))

	// /debug/profile: the sampling profiler attributed samples to the UDF.
	body, err = httpGet(base + "/debug/profile")
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "smokeup") {
		return fmt.Errorf("/debug/profile does not mention the hot UDF:\n%s", body)
	}
	fmt.Fprintln(w, "obs-smoke: /debug/profile ok")
	return nil
}

// vmSmoke is the check behind `make vm-smoke` and scripts/check.sh: a
// micro-run of E20 (the vectorized VM tier experiment) at tiny size,
// asserting that the VM tier actually engaged (vm_rows > 0 on the
// dispatch-bound sections, nothing silently bailed) and that the
// qfusor.vm.* counters it drives render as valid Prometheus
// exposition with the promised series.
func vmSmoke(w io.Writer) error {
	r := bench.NewRunner(workload.Size("tiny"), io.Discard)
	r.Quick = true
	res, err := r.VMTierBench()
	if err != nil {
		return fmt.Errorf("E20 micro-run: %w", err)
	}
	sections := 0
	for _, row := range res.Rows {
		if !strings.HasPrefix(row.Label, "section/") {
			continue
		}
		sections++
		if row.Metrics["vm_rows"] <= 0 {
			return fmt.Errorf("%s: VM tier never engaged (vm_rows = %v)", row.Label, row.Metrics["vm_rows"])
		}
		if row.Metrics["bail_rows"] > 0 {
			return fmt.Errorf("%s: dispatch-bound section bailed %v rows to the closure tier", row.Label, row.Metrics["bail_rows"])
		}
		if row.Metrics["section_speedup"] <= 1 {
			return fmt.Errorf("%s: VM tier slower than closure (section_speedup = %.2f)", row.Label, row.Metrics["section_speedup"])
		}
	}
	if sections == 0 {
		return fmt.Errorf("E20 produced no dispatch-bound section rows")
	}
	fmt.Fprintf(w, "vm-smoke: E20 micro-run ok (%d rows, %d dispatch-bound sections)\n", len(res.Rows), sections)

	samples, err := obs.ParseExposition(obs.Default.Snapshot().Prometheus())
	if err != nil {
		return fmt.Errorf("metrics exposition invalid: %w", err)
	}
	for _, name := range []string{
		"qfusor_vm_programs", "qfusor_vm_morsels", "qfusor_vm_rows", "qfusor_vm_bail_rows",
	} {
		if _, ok := samples[name]; !ok {
			return fmt.Errorf("metrics exposition missing series %s", name)
		}
	}
	if samples["qfusor_vm_programs"] < 1 || samples["qfusor_vm_rows"] < 1 {
		return fmt.Errorf("qfusor.vm.* counters never moved: programs=%v rows=%v",
			samples["qfusor_vm_programs"], samples["qfusor_vm_rows"])
	}
	fmt.Fprintf(w, "vm-smoke: qfusor.vm.* exposition ok (programs=%v morsels=%v rows=%v bail_rows=%v)\n",
		samples["qfusor_vm_programs"], samples["qfusor_vm_morsels"],
		samples["qfusor_vm_rows"], samples["qfusor_vm_bail_rows"])
	return nil
}

// httpGet fetches a URL with a short deadline and returns its body,
// failing on any non-200 status.
func httpGet(url string) ([]byte, error) {
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}
