// Command qfusor-bench runs the paper's evaluation experiments and
// prints each table/figure's rows. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	qfusor-bench                       # run everything at size=small
//	qfusor-bench -size medium          # bigger datasets
//	qfusor-bench -exp fig6b-offload    # one experiment
//	qfusor-bench -quick                # trimmed sweeps
//	qfusor-bench -list                 # list experiment names
//	qfusor-bench -obs BENCH_obs.json   # also write results + metrics JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"qfusor/internal/bench"
	"qfusor/internal/faultinject"
	"qfusor/internal/obs"
	"qfusor/internal/obshttp"
	"qfusor/internal/workload"
)

// hostInfo records the hardware/runtime context a benchmark ran under,
// so BENCH_obs.json numbers are comparable across machines.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Parallelism is the -parallelism flag as given (0 = auto);
	// ParallelismResolved is the worker count "auto" resolved to, so a
	// recorded run is interpretable without knowing the host's cores.
	Parallelism         int `json:"parallelism"`
	ParallelismResolved int `json:"parallelism_resolved"`
}

func hostOf(parallelism int) hostInfo {
	resolved := parallelism
	if resolved <= 0 {
		resolved = runtime.GOMAXPROCS(0)
	}
	return hostInfo{
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		NumCPU:              runtime.NumCPU(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Parallelism:         parallelism,
		ParallelismResolved: resolved,
	}
}

// obsReport is the machine-readable run record -obs writes: the figures
// alongside the engine-wide metrics delta accumulated while producing
// them (FFI crossings, JIT compiles, cache hits, executor row counts)
// and the host context.
type obsReport struct {
	Size    string          `json:"size"`
	Quick   bool            `json:"quick"`
	Host    hostInfo        `json:"host"`
	Results []*bench.Result `json:"results"`
	Metrics obs.Snapshot    `json:"metrics"`
}

func main() {
	size := flag.String("size", "small", "dataset size: tiny | small | medium | large")
	exp := flag.String("exp", "", "run a single experiment (see -list)")
	quick := flag.Bool("quick", false, "trim sweeps and repetitions")
	list := flag.Bool("list", false, "list experiment names and exit")
	obsOut := flag.String("obs", "", "write results + metrics snapshot as JSON to this file (e.g. BENCH_obs.json)")
	parallelism := flag.Int("parallelism", 0, "executor workers for experiments that don't pin their own: 0 = auto (one per core), 1 = serial")
	morsel := flag.Int("morsel", 0, "morsel row count for experiments that don't pin their own (0 = engine default, 2048)")
	tier := flag.String("tier", "", "fused-section execution tier for experiments that don't pin their own: vm | closure | inline | auto/empty (cost model decides)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none); an expired query fails its experiment instead of wedging the run")
	httpAddr := flag.String("http", "", "serve diagnostics while the run is live (/metrics, /debug/queries, /debug/trace/<id>); empty = off")
	plancache := flag.Bool("plancache", true, "enable the plan-decision cache on launched instances (the plancache experiment manages its own arms)")
	smoke := flag.Bool("obs-smoke", false, "run the diagnostics-plane smoke test (endpoints, exposition validity, trace round-trip) and exit")
	vmsmoke := flag.Bool("vm-smoke", false, "run the VM-tier smoke test (E20 micro-run + qfusor.vm.* metrics exposition) and exit")
	servesmoke := flag.Bool("serve-smoke", false, "run the query-server smoke test (sessions + overload burst + admission metrics + drain over real HTTP) and exit")
	inlinesmoke := flag.Bool("inline-smoke", false, "run the inlined-tier smoke test (native-identical results, zero FFI crossings, qfusor.inline.* exposition) and exit")
	querylog := flag.String("querylog", "", "append the structured query log (one JSON line per query) to this file; empty = off")
	var faults faultFlags
	flag.Var(&faults, "fault", "arm a fault point: name[=error|panic|delay[:dur]|kill] (repeatable; exercises the resilience layer)")
	flag.Parse()

	if *querylog != "" {
		f, err := os.OpenFile(*querylog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "querylog: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		obs.DefaultQueryLog.SetWriter(f)
	}

	if *smoke {
		if err := obsSmoke(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "obs-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("obs-smoke: OK")
		return
	}
	if *vmsmoke {
		if err := vmSmoke(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vm-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("vm-smoke: OK")
		return
	}
	if *servesmoke {
		if err := serveSmoke(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "serve-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("serve-smoke: OK")
		return
	}
	if *inlinesmoke {
		if err := inlineSmoke(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "inline-smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("inline-smoke: OK")
		return
	}
	if *httpAddr != "" {
		srv := &obshttp.Server{}
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "diagnostics server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("diagnostics: http://%s/metrics\n", addr)
	}

	r := bench.NewRunner(workload.Size(*size), os.Stdout)
	r.Quick = *quick
	r.Parallelism = *parallelism
	r.QueryTimeout = *timeout
	r.PlanCacheOff = !*plancache
	r.MorselSize = *morsel
	switch *tier {
	case "", "auto", "vm", "closure", "inline":
		r.Tier = *tier
	default:
		fmt.Fprintf(os.Stderr, "invalid -tier %q (want vm, closure, inline or auto)\n", *tier)
		os.Exit(2)
	}

	if *list {
		var names []string
		for name := range r.Experiments() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	base := obs.Default.Snapshot()

	if *exp != "" {
		fn, ok := r.Experiments()[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", *exp, err)
			os.Exit(1)
		}
		r.Print(res)
		writeObs(*obsOut, *size, *quick, *parallelism, []*bench.Result{res}, base)
		return
	}

	results, err := r.All()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments failed: %v\n", err)
		os.Exit(1)
	}
	writeObs(*obsOut, *size, *quick, *parallelism, results, base)
}

// writeObs emits the -obs JSON record (a no-op without -obs).
func writeObs(path, size string, quick bool, parallelism int, results []*bench.Result, base obs.Snapshot) {
	if path == "" {
		return
	}
	rec := obsReport{
		Size:    size,
		Quick:   quick,
		Host:    hostOf(parallelism),
		Results: results,
		Metrics: obs.Default.Snapshot().Diff(base),
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "obs: %v\n", err)
		return
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "obs: %v\n", err)
		return
	}
	fmt.Printf("\nwrote %s\n", path)
}

// faultFlags collects repeated -fault values, arming each as it parses
// so a bad name or kind fails flag parsing with the valid choices.
type faultFlags []string

func (f *faultFlags) String() string { return strings.Join(*f, ",") }

func (f *faultFlags) Set(v string) error {
	if err := faultinject.EnableFlag(v); err != nil {
		return fmt.Errorf("%v (points: %s)", err, strings.Join(faultinject.Names(), ", "))
	}
	*f = append(*f, v)
	return nil
}
