// Command qfusor-bench runs the paper's evaluation experiments and
// prints each table/figure's rows. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	qfusor-bench                       # run everything at size=small
//	qfusor-bench -size medium          # bigger datasets
//	qfusor-bench -exp fig6b-offload    # one experiment
//	qfusor-bench -quick                # trimmed sweeps
//	qfusor-bench -list                 # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"qfusor/internal/bench"
	"qfusor/internal/workload"
)

func main() {
	size := flag.String("size", "small", "dataset size: tiny | small | medium | large")
	exp := flag.String("exp", "", "run a single experiment (see -list)")
	quick := flag.Bool("quick", false, "trim sweeps and repetitions")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	r := bench.NewRunner(workload.Size(*size), os.Stdout)
	r.Quick = *quick

	if *list {
		var names []string
		for name := range r.Experiments() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *exp != "" {
		fn, ok := r.Experiments()[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", *exp, err)
			os.Exit(1)
		}
		r.Print(res)
		return
	}

	if _, err := r.All(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments failed: %v\n", err)
		os.Exit(1)
	}
}
