GO ?= go

.PHONY: check build vet test race chaos bench bench-smoke obs-smoke vm-smoke serve-smoke inline-smoke fuzz-smoke lint

## check: the full pre-commit gate — build, vet, race-enabled tests.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: static gates — go vet plus a gofmt diff check (fails listing
## any file that is not gofmt-clean).
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: the fault-injection sweep — every registered fault point is
## fired in turn and each query must degrade to a bit-identical native
## result or a typed QueryError, under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Breaker|Recover|Backoff|Interrupt|ProcessInvoker' ./...



## fuzz-smoke: a bounded run of the differential fuzzer — native vs
## fused-cold vs fused-warm (plan-cache hit) must stay bit-identical on
## every generated query. 30s is enough for tens of thousands of execs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDiff -fuzztime 30s ./internal/core

## obs-smoke: end-to-end diagnostics-plane check — starts the embedded
## HTTP server against a live engine and validates /metrics exposition,
## the flight recorder, a Chrome-trace round trip and the UDF profiler.
obs-smoke:
	$(GO) run ./cmd/qfusor-bench -obs-smoke

## vm-smoke: a micro-run of E20 (vectorized VM tier) — the VM tier
## must engage on the dispatch-bound sections, beat the closure tier,
## and expose its qfusor.vm.* counters as valid Prometheus series.
vm-smoke:
	$(GO) run ./cmd/qfusor-bench -vm-smoke

## serve-smoke: end-to-end query-server check over real HTTP — session
## open/prepare/execute, an overload burst that must shed with typed
## 429/503s, admission counters in /metrics and /debug/sessions, and a
## drain-bounded shutdown.
serve-smoke:
	$(GO) run ./cmd/qfusor-bench -serve-smoke

## inline-smoke: the relational-inlining tier end to end — an inlined
## query must return native-identical rows with zero FFI crossings, an
## opaque (loop-bearing) UDF must fall back cleanly, and the
## qfusor.inline.* decision counters must render as valid exposition.
inline-smoke:
	$(GO) run ./cmd/qfusor-bench -inline-smoke

## bench: run the paper experiments quickly, with a metrics snapshot.
bench:
	$(GO) run ./cmd/qfusor-bench -quick -obs BENCH_obs.json

## bench-smoke: just the morsel-executor A/B (serial vs parallel, with
## the result-identity check), refreshing BENCH_obs.json.
bench-smoke:
	$(GO) run ./cmd/qfusor-bench -quick -exp morsel-speedup -obs BENCH_obs.json
