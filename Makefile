GO ?= go

.PHONY: check build vet test race bench bench-smoke

## check: the full pre-commit gate — build, vet, race-enabled tests.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: run the paper experiments quickly, with a metrics snapshot.
bench:
	$(GO) run ./cmd/qfusor-bench -quick -obs BENCH_obs.json

## bench-smoke: just the morsel-executor A/B (serial vs parallel, with
## the result-identity check), refreshing BENCH_obs.json.
bench-smoke:
	$(GO) run ./cmd/qfusor-bench -quick -exp morsel-speedup -obs BENCH_obs.json
