GO ?= go

.PHONY: check build vet test race bench

## check: the full pre-commit gate — build, vet, race-enabled tests.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: run the paper experiments quickly, with a metrics snapshot.
bench:
	$(GO) run ./cmd/qfusor-bench -quick -obs BENCH_obs.json
